//! `swiftt` — run a Swift dataflow script on a simulated machine.
//!
//! ```text
//! swiftt [OPTIONS] <script.swift>
//! swiftt --expr 'printf("hi");'
//! swiftt --tenant a:4:a.swift --tenant b:1:b.swift   # N programs, one world
//! swiftt --verify-checkpoint FILE                    # offline checkpoint fsck
//!
//! OPTIONS:
//!   -n, --ranks N        total ranks (default 8)
//!   -s, --servers N      ADLB servers (default 1)
//!   -e, --engines N      engines (default 1)
//!       --tenant SPEC    run SPEC = name:weight[:qN[,lM]]:script as one
//!                        tenant of a shared world (repeatable)
//!       --reinitialize   reinitialize Python/R interpreters per task
//!       --no-steal       disable ADLB work stealing
//!       --replication N  copies of each server's state (default: 2 when
//!                        servers > 1, else 1)
//!       --no-re-replication
//!                        keep R degraded after a failover instead of
//!                        re-replicating to new ring successors
//!       --checkpoint N   durable checkpoint/WAL tier, flushed every N ops
//!       --resume         restore the previous run's shards at startup
//!       --checkpoint-file PATH
//!                        persist the checkpoint store across processes
//!       --verify-checkpoint FILE
//!                        fsck a checkpoint image and exit (1 = corrupt)
//!       --faults SPEC    inject faults (kill:rank=R,sends=N; drop:...)
//!       --max-retries K  requeue a failed task at most K times
//!       --emit-tcl       print the compiled Turbine code and exit
//!       --report         print the run report after program output
//!       --trace FILE     write a Chrome trace-event JSON timeline
//!   -h, --help           this text
//! ```
//!
//! This is the analogue of the real system's `swift-t` launcher: compile
//! with STC, then run the Turbine code on an engines/servers/workers
//! machine (paper Fig. 2).

use std::process::ExitCode;
use std::sync::Arc;

use swiftt::core::{FaultPlan, InterpPolicy, Runtime, SwiftTError, TenantQuota};
use swiftt::pfs::{Pfs, PfsConfig};

struct Options {
    ranks: usize,
    servers: usize,
    engines: usize,
    policy: InterpPolicy,
    steal: bool,
    replication: Option<usize>,
    re_replication: bool,
    checkpoint: Option<usize>,
    resume: bool,
    checkpoint_file: Option<String>,
    verify_checkpoint: Option<String>,
    faults: FaultPlan,
    max_retries: Option<u32>,
    emit_tcl: bool,
    report: bool,
    trace: Option<String>,
    args: Vec<(String, String)>,
    tenants: Vec<TenantArg>,
    source: Option<SourceSpec>,
}

/// One `--tenant name:weight[:qN[,lM]]:script` argument.
struct TenantArg {
    name: String,
    weight: u32,
    quota: Option<TenantQuota>,
    script: String,
}

/// Parse the optional quota field of a tenant spec: `qN` caps queued
/// tasks, `lM` caps in-flight leases, `qN,lM` both.
fn parse_quota(field: &str) -> Option<TenantQuota> {
    let mut q = TenantQuota::default();
    for part in field.split(',') {
        let (kind, n) = part.split_at(1);
        let n: usize = n.parse().ok()?;
        match kind {
            "q" => q.max_queued = Some(n),
            "l" => q.max_leases = Some(n),
            _ => return None,
        }
    }
    Some(q)
}

fn parse_tenant(spec: &str) -> Result<TenantArg, String> {
    let bad = || format!("--tenant wants name:weight[:qN[,lM]]:script, got {spec}");
    let (name, rest) = spec.split_once(':').ok_or_else(bad)?;
    let (weight, rest) = rest.split_once(':').ok_or_else(bad)?;
    let weight: u32 = weight.parse().map_err(|_| bad())?;
    // The next field is a quota iff it parses as one; otherwise the rest
    // is the script path (which may itself contain colons).
    let (quota, script) = match rest.split_once(':') {
        Some((maybe_quota, path)) => match parse_quota(maybe_quota) {
            Some(q) => (Some(q), path.to_string()),
            None => (None, rest.to_string()),
        },
        None => (None, rest.to_string()),
    };
    if name.is_empty() || script.is_empty() {
        return Err(bad());
    }
    Ok(TenantArg {
        name: name.to_string(),
        weight,
        quota,
        script,
    })
}

enum SourceSpec {
    File(String),
    Expr(String),
}

const USAGE: &str = "\
usage: swiftt [OPTIONS] <script.swift>
       swiftt [OPTIONS] --expr '<swift code>'
       swiftt [OPTIONS] --tenant name:weight:script [--tenant ...]
       swiftt --verify-checkpoint FILE

options:
  -n, --ranks N        total ranks (default 8)
  -s, --servers N      ADLB servers (default 1)
  -e, --engines N      engines (default 1)
      --tenant SPEC    run SPEC as one tenant of a shared world
                       (repeatable; one engine rank per tenant). SPEC is
                       name:weight[:qN[,lM]]:script — weight is the
                       fair-share weight, qN caps queued tasks, lM caps
                       in-flight leases (admission backpressure). With
                       --report, prints per-tenant accounting rows.
      --reinitialize   reinitialize Python/R interpreters per task
      --no-steal       disable ADLB work stealing
      --replication N  copies of each ADLB server's state; N >= 2 lets a
                       run survive server deaths (default: 2 when
                       servers > 1, else 1)
      --no-re-replication
                       after a failover, keep running with a degraded
                       replication factor instead of streaming replica
                       state to the recomputed ring successors
      --checkpoint N   enable the durable checkpoint/WAL tier: servers
                       append shard mutations to a write-ahead log on the
                       simulated parallel filesystem, flushed every N
                       logged ops and compacted into segments. A shard
                       that loses every in-memory holder is then restored
                       from the filesystem instead of aborting the run.
                       (SWIFTT_CHECKPOINT=off|on|N chooses when the flag
                       is absent)
      --resume         restore every server's shard from the checkpoint
                       store before serving — with --checkpoint-file this
                       restarts a previous process's run with exactly-once
                       effects (implies --checkpoint at the default
                       interval when not given)
      --checkpoint-file PATH
                       load the checkpoint store image from PATH at start
                       (if it exists) and write it back at exit, so
                       checkpoints survive the process
      --verify-checkpoint FILE
                       offline fsck: walk every shard of the checkpoint
                       image in FILE, verify segment/WAL checksums and
                       LSN continuity, print a per-shard summary, and
                       exit (0 = clean, 1 = corruption found)
      --faults SPEC    inject faults; SPEC is ';'-separated clauses:
                         kill:rank=R,sends=N   kill R after its Nth send
                         kill:rank=R,recvs=N   kill R at its (N+1)th recv
                         drop:from=A,to=B,nth=N       drop Nth A->B message
                         delay:from=A,to=B,nth=N,ms=M delay it by M ms
      --max-retries K  requeue a failed task at most K times (default 3)
      --arg K=V        program argument, readable as argv(\"K\")
      --emit-tcl       print the compiled Turbine code and exit
      --report         print the run report after program output
                       (with task-latency and queue-wait percentiles)
      --trace FILE     record task-lifecycle spans on every rank and
                       write the merged timeline as Chrome trace-event
                       JSON (chrome://tracing, ui.perfetto.dev)
  -h, --help           this text";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ranks: 8,
        servers: 1,
        engines: 1,
        policy: InterpPolicy::Retain,
        steal: true,
        replication: None,
        re_replication: true,
        checkpoint: None,
        resume: false,
        checkpoint_file: None,
        verify_checkpoint: None,
        faults: FaultPlan::new(),
        max_retries: None,
        emit_tcl: false,
        report: false,
        trace: None,
        args: Vec::new(),
        tenants: Vec::new(),
        source: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match a.as_str() {
            "-n" | "--ranks" => opts.ranks = num("--ranks")?,
            "-s" | "--servers" => opts.servers = num("--servers")?,
            "-e" | "--engines" => opts.engines = num("--engines")?,
            "--reinitialize" => opts.policy = InterpPolicy::Reinitialize,
            "--no-steal" => opts.steal = false,
            "--replication" => opts.replication = Some(num("--replication")?),
            "--no-re-replication" => opts.re_replication = false,
            "--checkpoint" => opts.checkpoint = Some(num("--checkpoint")?),
            "--resume" => opts.resume = true,
            "--checkpoint-file" => {
                opts.checkpoint_file = Some(args.next().ok_or("--checkpoint-file needs a path")?);
            }
            "--verify-checkpoint" => {
                opts.verify_checkpoint =
                    Some(args.next().ok_or("--verify-checkpoint needs a path")?);
            }
            "--tenant" => {
                let spec = args.next().ok_or("--tenant needs a spec")?;
                opts.tenants.push(parse_tenant(&spec)?);
            }
            "--faults" => {
                let spec = args.next().ok_or("--faults needs a spec")?;
                opts.faults = FaultPlan::parse(&spec).map_err(|e| format!("--faults: {e}"))?;
            }
            "--max-retries" => {
                opts.max_retries = Some(
                    args.next()
                        .ok_or("--max-retries needs a value")?
                        .parse()
                        .map_err(|_| "--max-retries needs an integer".to_string())?,
                );
            }
            "--emit-tcl" => opts.emit_tcl = true,
            "--report" => opts.report = true,
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a file path")?),
            "--arg" => {
                let kv = args.next().ok_or("--arg needs K=V")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--arg needs K=V, got {kv}"))?;
                opts.args.push((k.to_string(), v.to_string()));
            }
            "--expr" => {
                let code = args.next().ok_or("--expr needs swift code")?;
                opts.source = Some(SourceSpec::Expr(code));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if opts.source.is_some() {
                    return Err("multiple scripts given".into());
                }
                opts.source = Some(SourceSpec::File(other.to_string()));
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swiftt: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.verify_checkpoint {
        return verify_checkpoint_image(path);
    }
    if !opts.tenants.is_empty() && opts.source.is_some() {
        eprintln!("swiftt: give either --tenant specs or a single script, not both");
        return ExitCode::from(2);
    }
    let source = if opts.tenants.is_empty() {
        match &opts.source {
            Some(SourceSpec::Expr(code)) => code.clone(),
            Some(SourceSpec::File(path)) => match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("swiftt: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            None => {
                eprintln!("swiftt: no script given\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    } else {
        String::new()
    };

    if opts.emit_tcl {
        if !opts.tenants.is_empty() {
            eprintln!("swiftt: --emit-tcl takes a single script, not --tenant specs");
            return ExitCode::from(2);
        }
        return match stc::compile(&source) {
            Ok(p) => {
                println!("{}", p.listing());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    // Shape and policy validation lives in the Runtime builder
    // (SwiftTError::Config, mapped to exit code 2 below); only the
    // constructor's hard minimum is pre-checked to avoid a panic.
    if opts.ranks < 3 {
        eprintln!("swiftt: need at least 3 ranks (engine, worker, server)");
        return ExitCode::from(2);
    }
    // --resume without an explicit interval still needs the tier on.
    let checkpoint = match (opts.checkpoint, opts.resume) {
        (Some(n), _) => Some(n),
        (None, true) => Some(swiftt::adlb::CHECKPOINT_DEFAULT_INTERVAL),
        (None, false) => None,
    };
    // A shared store lets checkpoints outlive the simulated world; with
    // --checkpoint-file it also outlives this process.
    let mut store: Option<Arc<Pfs>> = None;
    if checkpoint.is_some() || opts.checkpoint_file.is_some() {
        let fs = match opts.checkpoint_file.as_deref().map(std::fs::read) {
            Some(Ok(image)) => match Pfs::restore(PfsConfig::default(), &image) {
                Ok(fs) => fs,
                Err(e) => {
                    let path = opts.checkpoint_file.as_deref().unwrap_or_default();
                    eprintln!("swiftt: bad checkpoint image {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            // Missing or unreadable file: start fresh, write it at exit.
            _ => Pfs::new(PfsConfig::default()),
        };
        store = Some(Arc::new(fs));
    }
    let mut rt = Runtime::new(opts.ranks)
        .servers(opts.servers)
        .engines(opts.engines)
        .policy(opts.policy)
        .work_stealing(opts.steal)
        // --report wants latency percentiles, which come from the trace.
        .tracing(opts.trace.is_some() || opts.report)
        .faults(opts.faults.clone());
    if !opts.re_replication {
        rt = rt.re_replication(false);
    }
    if let Some(r) = opts.replication {
        rt = rt.replication(r);
    }
    if let Some(n) = checkpoint {
        rt = rt.checkpoint(n);
    }
    if opts.resume {
        rt = rt.resume(true);
    }
    if let Some(fs) = &store {
        rt = rt.checkpoint_store(fs.clone());
    }
    if let Some(k) = opts.max_retries {
        rt = rt.max_retries(k);
    }
    for (k, v) in &opts.args {
        rt = rt.arg(k, v);
    }
    let run = if opts.tenants.is_empty() {
        rt.run(&source)
    } else {
        let mut ok = true;
        for t in &opts.tenants {
            match std::fs::read_to_string(&t.script) {
                Ok(src) => rt = rt.submit(&t.name, t.weight, t.quota, src),
                Err(e) => {
                    eprintln!("swiftt: cannot read {}: {e}", t.script);
                    ok = false;
                }
            }
        }
        if !ok {
            return ExitCode::from(2);
        }
        rt.run_tenants()
    };
    // Persist the checkpoint store whatever happened to the run — a world
    // that crashed mid-program is exactly what --resume restarts from.
    if let (Some(path), Some(fs)) = (&opts.checkpoint_file, &store) {
        if let Err(e) = std::fs::write(path, fs.dump()) {
            eprintln!("swiftt: cannot write checkpoint image {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match run {
        Ok(result) => {
            print!("{}", result.stdout);
            // A broken tenant never fails the run (containment); it is
            // reported here and in its --report row.
            for t in &result.tenants {
                if let Some(e) = &t.error {
                    eprintln!("swiftt: tenant {} failed (contained): {e}", t.name);
                }
            }
            if let Some(path) = &opts.trace {
                if let Err(e) = result.write_trace(std::path::Path::new(path)) {
                    eprintln!("swiftt: cannot write trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("swiftt: trace written to {path}");
            }
            if opts.report {
                let servers = result.server_totals();
                eprintln!("--- swiftt report ---------------------------");
                eprintln!("ranks              : {}", opts.ranks);
                eprintln!("leaf tasks         : {}", result.total_tasks());
                eprintln!("rules fired        : {}", result.total_rules_fired());
                eprintln!("busy workers       : {}", result.busy_workers());
                eprintln!(
                    "messages / bytes   : {} / {}",
                    result.messages, result.bytes
                );
                eprintln!("wall time          : {:?}", result.elapsed);
                if let Some(lat) = &result.latency {
                    let line = |name: &str, s: &Option<swiftt::core::LatencyStats>| {
                        if let Some(s) = s {
                            eprintln!(
                                "{name}: p50 {}µs  p95 {}µs  p99 {}µs  max {}µs  (n={})",
                                s.p50_us, s.p95_us, s.p99_us, s.max_us, s.count
                            );
                        }
                    };
                    line("task latency       ", &lat.task_latency);
                    line("queue wait         ", &lat.queue_wait);
                    line("eval time          ", &lat.eval_time);
                    line("failover recovery  ", &lat.failover_recovery);
                    line("checkpoint flush   ", &lat.checkpoint_flush);
                    line("pfs restore        ", &lat.pfs_restore);
                }
                if !result.tenants.is_empty() {
                    eprintln!("--- tenants ---------------------------------");
                    for t in &result.tenants {
                        let share = t
                            .share_of_delivered
                            .map(|s| format!("{:.1}%", s * 100.0))
                            .unwrap_or_else(|| "-".to_string());
                        eprintln!(
                            "{} (weight {}): delivered {} (contended share {}), \
                             admitted {}, rejected {}, queue peak {}",
                            t.name,
                            t.weight,
                            t.stats.delivered,
                            share,
                            t.stats.admitted,
                            t.stats.rejected,
                            t.stats.queue_peak
                        );
                        if let Some(l) = &t.latency {
                            eprintln!(
                                "    task latency: p50 {}µs  p95 {}µs  max {}µs  (n={})",
                                l.p50_us, l.p95_us, l.max_us, l.count
                            );
                        }
                        if let Some(e) = &t.error {
                            eprintln!("    error (contained): {e}");
                        }
                    }
                }
                if servers.repl_ops > 0 {
                    eprintln!("replication ops    : {}", servers.repl_ops);
                }
                if servers.repl_syncs > 0 {
                    eprintln!(
                        "re-replicated bytes: {} ({} syncs)",
                        servers.repl_sync_bytes, servers.repl_syncs
                    );
                }
                if servers.r_restore_micros > 0 {
                    eprintln!(
                        "time-to-R-restored : {:?}",
                        std::time::Duration::from_micros(servers.r_restore_micros)
                    );
                }
                if servers.ckpt_records > 0 || servers.pfs_restores > 0 {
                    eprintln!(
                        "checkpoint flushes : {} ({} ops, {} segments, {} bytes)",
                        servers.ckpt_records,
                        servers.ckpt_ops,
                        servers.ckpt_segments,
                        servers.ckpt_bytes
                    );
                    eprintln!("pfs restores       : {}", servers.pfs_restores);
                    if servers.ckpt_restore_micros > 0 {
                        eprintln!(
                            "restore window     : {:?}",
                            std::time::Duration::from_micros(servers.ckpt_restore_micros)
                        );
                    }
                }
                if !result.killed_ranks.is_empty()
                    || result.total_tasks_failed() > 0
                    || servers.protocol_errors > 0
                    || servers.failovers > 0
                {
                    eprintln!("killed ranks       : {:?}", result.killed_ranks);
                    eprintln!("ranks failed (srv) : {}", servers.ranks_failed);
                    eprintln!("server failovers   : {}", servers.failovers);
                    eprintln!("tasks failed       : {}", result.total_tasks_failed());
                    eprintln!(
                        "requeued / retried : {} / {}",
                        servers.tasks_requeued, servers.tasks_retried
                    );
                    eprintln!("quarantined        : {}", servers.tasks_quarantined);
                    eprintln!("protocol errors    : {}", servers.protocol_errors);
                    if !result.truncated_streams.is_empty() {
                        eprintln!(
                            "truncated streams  : {:?} (output from these ranks is a prefix)",
                            result.truncated_streams
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(SwiftTError::Config(m)) => {
            eprintln!("swiftt: configuration error: {m}");
            ExitCode::from(2)
        }
        Err(SwiftTError::Compile(e)) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
        Err(SwiftTError::Runtime(m)) => {
            eprintln!("swiftt: runtime error: {m}");
            ExitCode::FAILURE
        }
    }
}

/// `--verify-checkpoint FILE`: offline fsck of a durable checkpoint
/// image (as written by `--checkpoint-file`). Read-only; exits 0 when
/// clean, 1 on corruption, 2 when the image itself cannot be loaded.
fn verify_checkpoint_image(path: &str) -> ExitCode {
    let image = match std::fs::read(path) {
        Ok(image) => image,
        Err(e) => {
            eprintln!("swiftt: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let fs = match Pfs::restore(PfsConfig::default(), &image) {
        Ok(fs) => Arc::new(fs),
        Err(e) => {
            eprintln!("swiftt: bad checkpoint image {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = swiftt::adlb::verify_checkpoint(&fs);
    if report.shards.is_empty() {
        println!("{path}: no checkpoint shards found");
        return ExitCode::SUCCESS;
    }
    for s in &report.shards {
        if let Some(to) = s.redirect_to {
            println!("shard {}: redirected to rank {to}", s.home);
        } else {
            println!(
                "shard {}: segment {} ({} bytes, covers LSN {}), wal {} record(s) \
                 / {} op(s) ({} bytes), durable LSN {}",
                s.home,
                s.seg_no,
                s.segment_bytes,
                s.segment_lsn,
                s.wal_records,
                s.wal_ops,
                s.wal_bytes,
                s.last_lsn
            );
        }
        for e in &s.errors {
            println!("shard {}: CORRUPT: {e}", s.home);
        }
    }
    if report.is_clean() {
        println!("{path}: clean ({} shard(s))", report.shards.len());
        ExitCode::SUCCESS
    } else {
        println!("{path}: corruption detected");
        ExitCode::FAILURE
    }
}
