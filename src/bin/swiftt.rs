//! `swiftt` — run a Swift dataflow script on a simulated machine.
//!
//! ```text
//! swiftt [OPTIONS] <script.swift>
//! swiftt --expr 'printf("hi");'
//!
//! OPTIONS:
//!   -n, --ranks N        total ranks (default 8)
//!   -s, --servers N      ADLB servers (default 1)
//!   -e, --engines N      engines (default 1)
//!       --reinitialize   reinitialize Python/R interpreters per task
//!       --no-steal       disable ADLB work stealing
//!       --replication N  copies of each server's state (default: 2 when
//!                        servers > 1, else 1)
//!       --no-re-replication
//!                        keep R degraded after a failover instead of
//!                        re-replicating to new ring successors
//!       --checkpoint N   durable checkpoint/WAL tier, flushed every N ops
//!       --resume         restore the previous run's shards at startup
//!       --checkpoint-file PATH
//!                        persist the checkpoint store across processes
//!       --faults SPEC    inject faults (kill:rank=R,sends=N; drop:...)
//!       --max-retries K  requeue a failed task at most K times
//!       --emit-tcl       print the compiled Turbine code and exit
//!       --report         print the run report after program output
//!       --trace FILE     write a Chrome trace-event JSON timeline
//!   -h, --help           this text
//! ```
//!
//! This is the analogue of the real system's `swift-t` launcher: compile
//! with STC, then run the Turbine code on an engines/servers/workers
//! machine (paper Fig. 2).

use std::process::ExitCode;
use std::sync::Arc;

use swiftt::core::{FaultPlan, InterpPolicy, Runtime, SwiftTError};
use swiftt::pfs::{Pfs, PfsConfig};

struct Options {
    ranks: usize,
    servers: usize,
    engines: usize,
    policy: InterpPolicy,
    steal: bool,
    replication: Option<usize>,
    re_replication: bool,
    checkpoint: Option<usize>,
    resume: bool,
    checkpoint_file: Option<String>,
    faults: FaultPlan,
    max_retries: Option<u32>,
    emit_tcl: bool,
    report: bool,
    trace: Option<String>,
    args: Vec<(String, String)>,
    source: Option<SourceSpec>,
}

enum SourceSpec {
    File(String),
    Expr(String),
}

const USAGE: &str = "\
usage: swiftt [OPTIONS] <script.swift>
       swiftt [OPTIONS] --expr '<swift code>'

options:
  -n, --ranks N        total ranks (default 8)
  -s, --servers N      ADLB servers (default 1)
  -e, --engines N      engines (default 1)
      --reinitialize   reinitialize Python/R interpreters per task
      --no-steal       disable ADLB work stealing
      --replication N  copies of each ADLB server's state; N >= 2 lets a
                       run survive server deaths (default: 2 when
                       servers > 1, else 1)
      --no-re-replication
                       after a failover, keep running with a degraded
                       replication factor instead of streaming replica
                       state to the recomputed ring successors
      --checkpoint N   enable the durable checkpoint/WAL tier: servers
                       append shard mutations to a write-ahead log on the
                       simulated parallel filesystem, flushed every N
                       logged ops and compacted into segments. A shard
                       that loses every in-memory holder is then restored
                       from the filesystem instead of aborting the run.
                       (SWIFTT_CHECKPOINT=off|on|N chooses when the flag
                       is absent)
      --resume         restore every server's shard from the checkpoint
                       store before serving — with --checkpoint-file this
                       restarts a previous process's run with exactly-once
                       effects (implies --checkpoint at the default
                       interval when not given)
      --checkpoint-file PATH
                       load the checkpoint store image from PATH at start
                       (if it exists) and write it back at exit, so
                       checkpoints survive the process
      --faults SPEC    inject faults; SPEC is ';'-separated clauses:
                         kill:rank=R,sends=N   kill R after its Nth send
                         kill:rank=R,recvs=N   kill R at its (N+1)th recv
                         drop:from=A,to=B,nth=N       drop Nth A->B message
                         delay:from=A,to=B,nth=N,ms=M delay it by M ms
      --max-retries K  requeue a failed task at most K times (default 3)
      --arg K=V        program argument, readable as argv(\"K\")
      --emit-tcl       print the compiled Turbine code and exit
      --report         print the run report after program output
                       (with task-latency and queue-wait percentiles)
      --trace FILE     record task-lifecycle spans on every rank and
                       write the merged timeline as Chrome trace-event
                       JSON (chrome://tracing, ui.perfetto.dev)
  -h, --help           this text";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ranks: 8,
        servers: 1,
        engines: 1,
        policy: InterpPolicy::Retain,
        steal: true,
        replication: None,
        re_replication: true,
        checkpoint: None,
        resume: false,
        checkpoint_file: None,
        faults: FaultPlan::new(),
        max_retries: None,
        emit_tcl: false,
        report: false,
        trace: None,
        args: Vec::new(),
        source: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|_| format!("{name} needs an integer"))
        };
        match a.as_str() {
            "-n" | "--ranks" => opts.ranks = num("--ranks")?,
            "-s" | "--servers" => opts.servers = num("--servers")?,
            "-e" | "--engines" => opts.engines = num("--engines")?,
            "--reinitialize" => opts.policy = InterpPolicy::Reinitialize,
            "--no-steal" => opts.steal = false,
            "--replication" => opts.replication = Some(num("--replication")?),
            "--no-re-replication" => opts.re_replication = false,
            "--checkpoint" => opts.checkpoint = Some(num("--checkpoint")?),
            "--resume" => opts.resume = true,
            "--checkpoint-file" => {
                opts.checkpoint_file = Some(args.next().ok_or("--checkpoint-file needs a path")?);
            }
            "--faults" => {
                let spec = args.next().ok_or("--faults needs a spec")?;
                opts.faults = FaultPlan::parse(&spec).map_err(|e| format!("--faults: {e}"))?;
            }
            "--max-retries" => {
                opts.max_retries = Some(
                    args.next()
                        .ok_or("--max-retries needs a value")?
                        .parse()
                        .map_err(|_| "--max-retries needs an integer".to_string())?,
                );
            }
            "--emit-tcl" => opts.emit_tcl = true,
            "--report" => opts.report = true,
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs a file path")?),
            "--arg" => {
                let kv = args.next().ok_or("--arg needs K=V")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--arg needs K=V, got {kv}"))?;
                opts.args.push((k.to_string(), v.to_string()));
            }
            "--expr" => {
                let code = args.next().ok_or("--expr needs swift code")?;
                opts.source = Some(SourceSpec::Expr(code));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => {
                if opts.source.is_some() {
                    return Err("multiple scripts given".into());
                }
                opts.source = Some(SourceSpec::File(other.to_string()));
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("swiftt: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match &opts.source {
        Some(SourceSpec::Expr(code)) => code.clone(),
        Some(SourceSpec::File(path)) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("swiftt: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("swiftt: no script given\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.emit_tcl {
        return match stc::compile(&source) {
            Ok(p) => {
                println!("{}", p.listing());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    if opts.ranks < opts.servers + opts.engines + 1 || opts.ranks < 3 {
        eprintln!(
            "swiftt: need at least servers + engines + 1 worker ranks (got {})",
            opts.ranks
        );
        return ExitCode::from(2);
    }
    if let Some(r) = opts.replication {
        if r < 1 || r > opts.servers {
            eprintln!(
                "swiftt: --replication must be between 1 and the server count ({})",
                opts.servers
            );
            return ExitCode::from(2);
        }
    }
    // --resume without an explicit interval still needs the tier on.
    let checkpoint = match (opts.checkpoint, opts.resume) {
        (Some(n), _) => Some(n),
        (None, true) => Some(swiftt::adlb::CHECKPOINT_DEFAULT_INTERVAL),
        (None, false) => None,
    };
    // A shared store lets checkpoints outlive the simulated world; with
    // --checkpoint-file it also outlives this process.
    let mut store: Option<Arc<Pfs>> = None;
    if checkpoint.is_some() || opts.checkpoint_file.is_some() {
        let fs = match opts.checkpoint_file.as_deref().map(std::fs::read) {
            Some(Ok(image)) => match Pfs::restore(PfsConfig::default(), &image) {
                Ok(fs) => fs,
                Err(e) => {
                    let path = opts.checkpoint_file.as_deref().unwrap_or_default();
                    eprintln!("swiftt: bad checkpoint image {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            // Missing or unreadable file: start fresh, write it at exit.
            _ => Pfs::new(PfsConfig::default()),
        };
        store = Some(Arc::new(fs));
    }
    let mut rt = Runtime::new(opts.ranks)
        .servers(opts.servers)
        .engines(opts.engines)
        .policy(opts.policy)
        .work_stealing(opts.steal)
        // --report wants latency percentiles, which come from the trace.
        .tracing(opts.trace.is_some() || opts.report)
        .faults(opts.faults.clone());
    if !opts.re_replication {
        rt = rt.re_replication(false);
    }
    if let Some(r) = opts.replication {
        rt = rt.replication(r);
    }
    if let Some(n) = checkpoint {
        rt = rt.checkpoint(n);
    }
    if opts.resume {
        rt = rt.resume(true);
    }
    if let Some(fs) = &store {
        rt = rt.checkpoint_store(fs.clone());
    }
    if let Some(k) = opts.max_retries {
        rt = rt.max_retries(k);
    }
    for (k, v) in &opts.args {
        rt = rt.arg(k, v);
    }
    let run = rt.run(&source);
    // Persist the checkpoint store whatever happened to the run — a world
    // that crashed mid-program is exactly what --resume restarts from.
    if let (Some(path), Some(fs)) = (&opts.checkpoint_file, &store) {
        if let Err(e) = std::fs::write(path, fs.dump()) {
            eprintln!("swiftt: cannot write checkpoint image {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match run {
        Ok(result) => {
            print!("{}", result.stdout);
            if let Some(path) = &opts.trace {
                if let Err(e) = result.write_trace(std::path::Path::new(path)) {
                    eprintln!("swiftt: cannot write trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("swiftt: trace written to {path}");
            }
            if opts.report {
                let servers = result.server_totals();
                eprintln!("--- swiftt report ---------------------------");
                eprintln!("ranks              : {}", opts.ranks);
                eprintln!("leaf tasks         : {}", result.total_tasks());
                eprintln!("rules fired        : {}", result.total_rules_fired());
                eprintln!("busy workers       : {}", result.busy_workers());
                eprintln!(
                    "messages / bytes   : {} / {}",
                    result.messages, result.bytes
                );
                eprintln!("wall time          : {:?}", result.elapsed);
                if let Some(lat) = &result.latency {
                    let line = |name: &str, s: &Option<swiftt::core::LatencyStats>| {
                        if let Some(s) = s {
                            eprintln!(
                                "{name}: p50 {}µs  p95 {}µs  p99 {}µs  max {}µs  (n={})",
                                s.p50_us, s.p95_us, s.p99_us, s.max_us, s.count
                            );
                        }
                    };
                    line("task latency       ", &lat.task_latency);
                    line("queue wait         ", &lat.queue_wait);
                    line("eval time          ", &lat.eval_time);
                    line("failover recovery  ", &lat.failover_recovery);
                    line("checkpoint flush   ", &lat.checkpoint_flush);
                    line("pfs restore        ", &lat.pfs_restore);
                }
                if servers.repl_ops > 0 {
                    eprintln!("replication ops    : {}", servers.repl_ops);
                }
                if servers.repl_syncs > 0 {
                    eprintln!(
                        "re-replicated bytes: {} ({} syncs)",
                        servers.repl_sync_bytes, servers.repl_syncs
                    );
                }
                if servers.r_restore_micros > 0 {
                    eprintln!(
                        "time-to-R-restored : {:?}",
                        std::time::Duration::from_micros(servers.r_restore_micros)
                    );
                }
                if servers.ckpt_records > 0 || servers.pfs_restores > 0 {
                    eprintln!(
                        "checkpoint flushes : {} ({} ops, {} segments, {} bytes)",
                        servers.ckpt_records,
                        servers.ckpt_ops,
                        servers.ckpt_segments,
                        servers.ckpt_bytes
                    );
                    eprintln!("pfs restores       : {}", servers.pfs_restores);
                    if servers.ckpt_restore_micros > 0 {
                        eprintln!(
                            "restore window     : {:?}",
                            std::time::Duration::from_micros(servers.ckpt_restore_micros)
                        );
                    }
                }
                if !result.killed_ranks.is_empty()
                    || result.total_tasks_failed() > 0
                    || servers.protocol_errors > 0
                    || servers.failovers > 0
                {
                    eprintln!("killed ranks       : {:?}", result.killed_ranks);
                    eprintln!("ranks failed (srv) : {}", servers.ranks_failed);
                    eprintln!("server failovers   : {}", servers.failovers);
                    eprintln!("tasks failed       : {}", result.total_tasks_failed());
                    eprintln!(
                        "requeued / retried : {} / {}",
                        servers.tasks_requeued, servers.tasks_retried
                    );
                    eprintln!("quarantined        : {}", servers.tasks_quarantined);
                    eprintln!("protocol errors    : {}", servers.protocol_errors);
                    if !result.truncated_streams.is_empty() {
                        eprintln!(
                            "truncated streams  : {:?} (output from these ranks is a prefix)",
                            result.truncated_streams
                        );
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(SwiftTError::Compile(e)) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
        Err(SwiftTError::Runtime(m)) => {
            eprintln!("swiftt: runtime error: {m}");
            ExitCode::FAILURE
        }
    }
}
