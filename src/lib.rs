//! # swiftt — interlanguage parallel scripting for distributed memory
//!
//! Umbrella crate of the workspace reproducing Wozniak et al., *"Toward
//! Interlanguage Parallel Scripting for Distributed-Memory Scientific
//! Computing"* (CLUSTER 2015). It re-exports the public API of every layer
//! so examples and downstream users need a single dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use adlb;
pub use blobutils;
pub use mpisim;
pub use pfs;
pub use pythonish;
pub use rish;
pub use stc;
pub use swiftt_core as core;
pub use tclish;
pub use turbine;
