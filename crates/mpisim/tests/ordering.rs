//! Ordering and stress properties of the simulated MPI substrate.

use mpisim::{Src, TagSel, World};

/// MPI's non-overtaking guarantee: messages from one source with one tag
/// arrive in send order, under heavy concurrent traffic from many ranks.
#[test]
fn per_source_fifo_under_contention() {
    let senders = 6usize;
    let per_sender = 200u32;
    let out = World::run(senders + 1, move |comm| {
        let rank = comm.rank();
        if rank < senders {
            for i in 0..per_sender {
                let mut payload = (rank as u32).to_le_bytes().to_vec();
                payload.extend_from_slice(&i.to_le_bytes());
                comm.send(senders, 5, payload);
            }
            return true;
        }
        let mut next = vec![0u32; senders];
        for _ in 0..senders as u32 * per_sender {
            let m = comm.recv(Src::Any, TagSel::Of(5));
            let s = u32::from_le_bytes(m.data[..4].try_into().unwrap()) as usize;
            let i = u32::from_le_bytes(m.data[4..8].try_into().unwrap());
            assert_eq!(i, next[s], "overtaking from sender {s}");
            next[s] += 1;
        }
        true
    });
    assert!(out.iter().all(|&b| b));
}

/// Wildcard receives interleaved with selective receives must not lose
/// or duplicate messages.
#[test]
fn selective_and_wildcard_mix() {
    let out = World::run(3, |comm| {
        match comm.rank() {
            0 => {
                for i in 0..50u8 {
                    comm.send(2, (i % 3) as u32, vec![0, i]);
                }
                0
            }
            1 => {
                for i in 0..50u8 {
                    comm.send(2, (i % 3) as u32, vec![1, i]);
                }
                0
            }
            _ => {
                let mut got = 0;
                // Drain tag 1 selectively first (17 per sender: i%3==1
                // for i in 0..50), then the rest with wildcards.
                for _ in 0..34 {
                    let m = comm.recv(Src::Any, TagSel::Of(1));
                    assert_eq!(m.tag, 1);
                    got += 1;
                }
                while got < 100 {
                    let m = comm.recv(Src::Any, TagSel::Any);
                    assert_ne!(m.tag, 1, "tag-1 messages were already drained");
                    got += 1;
                }
                got
            }
        }
    });
    assert_eq!(out[2], 100);
}

/// Collectives compose under repetition with p2p traffic in between.
#[test]
fn collectives_interleaved_with_p2p() {
    let n = 5;
    World::run(n, move |comm| {
        for round in 0..20u64 {
            let total = comm.allreduce_sum_u64(comm.rank() as u64 + round);
            let expect = (0..n as u64).sum::<u64>() + round * n as u64;
            assert_eq!(total, expect);
            // P2p chatter between collectives.
            let right = (comm.rank() + 1) % comm.size();
            comm.send(right, 9, vec![round as u8]);
            let m = comm.recv(Src::Any, TagSel::Of(9));
            assert_eq!(m.data[0], round as u8);
            comm.barrier();
        }
    });
}

/// try_recv never blocks and never fabricates messages.
#[test]
fn try_recv_semantics() {
    World::run(2, |comm| {
        if comm.rank() == 0 {
            assert!(comm.try_recv(Src::Any, TagSel::Any).is_none());
            comm.send(1, 1, vec![7]);
            comm.barrier();
        } else {
            comm.barrier();
            // After the barrier the message must be present.
            let m = comm.try_recv(Src::Of(0), TagSel::Of(1)).expect("queued");
            assert_eq!(m.data[0], 7);
            assert!(comm.try_recv(Src::Any, TagSel::Any).is_none());
        }
    });
}

/// Large payloads survive intact (no truncation / corruption).
#[test]
fn large_payload_integrity() {
    let out = World::run(2, |comm| {
        if comm.rank() == 0 {
            let data: Vec<u8> = (0..1_000_000u32)
                .map(|i| (i.wrapping_mul(2654435761)) as u8)
                .collect();
            comm.send(1, 3, data.clone());
            data
        } else {
            comm.recv(Src::Of(0), TagSel::Of(3)).data.to_vec()
        }
    });
    assert_eq!(out[0], out[1]);
}
