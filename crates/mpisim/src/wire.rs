//! Explicit wire-format helpers.
//!
//! ADLB and Turbine ship small, hand-laid-out binary messages (real ADLB
//! does the same with packed C structs). These helpers keep every field
//! explicit so the protocol is inspectable, rather than hiding layout
//! behind a serialization framework.

use bytes::{BufMut, Bytes, BytesMut};

/// Error produced when decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the reader was trying to decode.
    pub context: &'static str,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire decode error: {} at byte offset {}",
            self.context, self.offset
        )
    }
}

impl std::error::Error for WireError {}

/// Append-only message builder.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Append a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Finish and take the assembled message.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential message decoder over a byte slice.
///
/// When constructed with [`WireReader::shared`] the reader also holds a
/// handle on the arrival buffer, and [`WireReader::get_bytes_shared`]
/// returns zero-copy [`Bytes`] views into it instead of copies — the
/// payload fast path for large task bodies.
pub struct WireReader<'a> {
    buf: &'a [u8],
    /// The arrival buffer `buf` borrows from, when known; enables
    /// zero-copy slicing in [`WireReader::get_bytes_shared`].
    shared: Option<&'a Bytes>,
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start decoding at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader {
            buf,
            shared: None,
            pos: 0,
        }
    }

    /// Start decoding an arrival buffer; length-prefixed byte fields read
    /// via [`WireReader::get_bytes_shared`] alias `buf`'s allocation
    /// instead of copying out of it.
    pub fn shared(buf: &'a Bytes) -> Self {
        WireReader {
            buf,
            shared: Some(buf),
            pos: 0,
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError {
                context,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Decode a single byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    // The fixed-width decoders convert exactly-sized slices
    // (`take(N, ..)` returns N bytes or errors): the `try_into` can never
    // fail, so the unwrap is not a reachable panic path.

    /// Decode a little-endian `u32`.
    #[allow(clippy::unwrap_used)] // take(4) is exactly 4 bytes
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Decode a little-endian `u64`.
    #[allow(clippy::unwrap_used)] // take(8) is exactly 8 bytes
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Decode a little-endian `i64`.
    #[allow(clippy::unwrap_used)] // take(8) is exactly 8 bytes
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    /// Decode a little-endian `f64`.
    #[allow(clippy::unwrap_used)] // take(8) is exactly 8 bytes
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8, "f64")?.try_into().unwrap()))
    }

    /// Decode a length-prefixed byte slice (borrowed from the input).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len, "bytes body")
    }

    /// Decode a length-prefixed byte field as owned [`Bytes`]. With a
    /// [`WireReader::shared`] reader this is zero-copy (a view of the
    /// arrival buffer); otherwise it copies.
    pub fn get_bytes_shared(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_u32()? as usize;
        let start = self.pos;
        self.take(len, "bytes body")?;
        match self.shared {
            Some(owner) => Ok(owner.slice(start..start + len)),
            None => Ok(Bytes::copy_from_slice(&self.buf[start..start + len])),
        }
    }

    /// Decode a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        let b = self.get_bytes()?;
        std::str::from_utf8(b).map_err(|_| WireError {
            context: "utf8 string",
            offset: self.pos,
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the message was fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError {
                context: "trailing bytes",
                offset: self.pos,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = WireWriter::new();
        w.put_u8(7)
            .put_u32(0xDEAD_BEEF)
            .put_u64(u64::MAX - 1)
            .put_i64(-42)
            .put_f64(std::f64::consts::PI)
            .put_str("héllo")
            .put_bytes(&[1, 2, 3]);
        let msg = w.finish();

        let mut r = WireReader::new(&msg);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors_with_offset() {
        let mut w = WireWriter::new();
        w.put_u64(5);
        let msg = w.finish();
        let mut r = WireReader::new(&msg[..4]);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.offset, 0);
        assert_eq!(err.context, "u64");
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn shared_reader_aliases_arrival_buffer() {
        let mut w = WireWriter::new();
        w.put_u32(7).put_bytes(b"payload").put_u8(9);
        let msg = w.finish();
        let mut r = WireReader::shared(&msg);
        assert_eq!(r.get_u32().unwrap(), 7);
        let body = r.get_bytes_shared().unwrap();
        assert_eq!(&body[..], b"payload");
        // Zero-copy: the view points into the message allocation.
        assert_eq!(body.as_ptr() as usize, msg.as_ptr() as usize + 8);
        assert_eq!(r.get_u8().unwrap(), 9);
        r.expect_end().unwrap();

        // Unshared readers still produce (copied) owned bytes.
        let mut r2 = WireReader::new(&msg);
        r2.get_u32().unwrap();
        let copied = r2.get_bytes_shared().unwrap();
        assert_eq!(&copied[..], b"payload");
        assert_ne!(copied.as_ptr() as usize, msg.as_ptr() as usize + 8);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.put_u8(1).put_u8(2);
        let msg = w.finish();
        let mut r = WireReader::new(&msg);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
