//! The per-rank communicator handle: point-to-point sends/receives and
//! collectives built on top of them.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::mailbox::Envelope;
use crate::world::Shared;
use crate::{Rank, Tag, RESERVED_TAG_BASE};

/// Source selector for receives: a specific rank or the MPI `ANY_SOURCE`
/// wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match messages from any source rank.
    Any,
    /// Match only messages from this rank.
    Of(Rank),
}

impl From<Rank> for Src {
    fn from(r: Rank) -> Self {
        Src::Of(r)
    }
}

/// Tag selector for receives: a specific tag or the MPI `ANY_TAG` wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match messages with any tag.
    Any,
    /// Match only messages with this tag.
    Of(Tag),
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Of(t)
    }
}

/// A received message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Rank that sent the message.
    pub source: Rank,
    /// Tag the message was sent with.
    pub tag: Tag,
    /// Payload bytes.
    pub data: Bytes,
}

// Reserved tags for collectives (all >= RESERVED_TAG_BASE).
const TAG_BARRIER_UP: Tag = RESERVED_TAG_BASE;
const TAG_BARRIER_DOWN: Tag = RESERVED_TAG_BASE + 1;
const TAG_BCAST: Tag = RESERVED_TAG_BASE + 2;
const TAG_GATHER: Tag = RESERVED_TAG_BASE + 3;
const TAG_REDUCE: Tag = RESERVED_TAG_BASE + 4;
const TAG_ALLREDUCE_DOWN: Tag = RESERVED_TAG_BASE + 5;
const TAG_SCATTER: Tag = RESERVED_TAG_BASE + 6;

/// A rank's handle onto the simulated communicator (the analogue of
/// `MPI_COMM_WORLD` plus the owning process's rank).
///
/// `Comm` is cheap to clone; clones share the same mailbox, so cloning is
/// only useful for passing the handle into helper structs on the same rank.
#[derive(Clone)]
pub struct Comm {
    rank: Rank,
    shared: Arc<Shared>,
}

impl Comm {
    pub(crate) fn new(rank: Rank, shared: Arc<Shared>) -> Self {
        Comm { rank, shared }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.mailboxes.len()
    }

    /// Whether `rank` is still alive (always true without a fault plan).
    pub fn is_alive(&self, rank: Rank) -> bool {
        self.shared.faults.is_alive(rank)
    }

    /// Send `data` to `dest` with `tag`. Never blocks (buffered send).
    ///
    /// Under a fault plan the send may be dropped, delayed, or be this
    /// rank's scripted last act: a `KillAfterSends` fault fires *after*
    /// the triggering message is delivered. Sends to dead ranks vanish
    /// silently, as with a real failed process.
    ///
    /// # Panics
    /// Panics if `dest` is out of range.
    pub fn send(&self, dest: Rank, tag: Tag, data: impl Into<Bytes>) {
        let data = data.into();
        let verdict = self.shared.faults.before_send(self.rank, dest);
        if let Some(ms) = verdict.delay_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
        if verdict.deliver && self.shared.faults.is_alive(dest) {
            self.shared.msg_count.fetch_add(1, Ordering::Relaxed);
            self.shared
                .byte_count
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            self.shared.mailboxes[dest].push(Envelope {
                source: self.rank,
                tag,
                data,
            });
        }
        if verdict.kill_after {
            self.shared.faults.kill(self.rank);
        }
    }

    /// Blocking selective receive.
    pub fn recv(&self, src: impl Into<Src>, tag: impl Into<TagSel>) -> Message {
        self.shared.faults.check_recv_entry(self.rank);
        let m = self.shared.mailboxes[self.rank].recv(src.into(), tag.into());
        self.shared.faults.note_recv_done(self.rank);
        m
    }

    /// Non-blocking selective receive.
    pub fn try_recv(&self, src: impl Into<Src>, tag: impl Into<TagSel>) -> Option<Message> {
        self.shared.faults.check_recv_entry(self.rank);
        let m = self.shared.mailboxes[self.rank].try_recv(src.into(), tag.into());
        if m.is_some() {
            self.shared.faults.note_recv_done(self.rank);
        }
        m
    }

    /// Blocking receive with timeout; `None` if nothing matched in time.
    pub fn recv_timeout(
        &self,
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
        timeout: Duration,
    ) -> Option<Message> {
        self.shared.faults.check_recv_entry(self.rank);
        let m = self.shared.mailboxes[self.rank].recv_timeout(src.into(), tag.into(), timeout);
        if m.is_some() {
            self.shared.faults.note_recv_done(self.rank);
        }
        m
    }

    /// Probe for a matching message without consuming it; returns
    /// `(source, tag, payload_len)`.
    pub fn iprobe(
        &self,
        src: impl Into<Src>,
        tag: impl Into<TagSel>,
    ) -> Option<(Rank, Tag, usize)> {
        self.shared.mailboxes[self.rank].iprobe(src.into(), tag.into())
    }

    /// Number of messages currently queued at this rank (diagnostics).
    pub fn pending(&self) -> usize {
        self.shared.mailboxes[self.rank].len()
    }

    // ---- Collectives --------------------------------------------------
    //
    // Implemented with a simple fan-in to rank 0 / fan-out from rank 0.
    // All traffic uses reserved tags, and because delivery is
    // non-overtaking per (src, dst, tag), back-to-back collectives of the
    // same kind cannot interfere.

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        let n = self.size();
        if n == 1 {
            return;
        }
        if self.rank == 0 {
            for _ in 1..n {
                self.recv(Src::Any, TAG_BARRIER_UP);
            }
            for r in 1..n {
                self.send(r, TAG_BARRIER_DOWN, Bytes::new());
            }
        } else {
            self.send(0, TAG_BARRIER_UP, Bytes::new());
            self.recv(Src::Of(0), TAG_BARRIER_DOWN);
        }
    }

    /// Broadcast `data` from `root` to every rank; returns the payload on
    /// all ranks (including the root).
    ///
    /// # Panics
    /// Panics when called on the root without `data` (API contract, like
    /// MPI's requirement that the root supply a buffer).
    #[allow(clippy::expect_used)] // documented caller contract
    pub fn bcast(&self, root: Rank, data: Option<Bytes>) -> Bytes {
        if self.size() == 1 {
            return data.expect("bcast root must supply data");
        }
        if self.rank == root {
            let data = data.expect("bcast root must supply data");
            for r in 0..self.size() {
                if r != root {
                    self.send(r, TAG_BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(Src::Of(root), TAG_BCAST).data
        }
    }

    /// Gather each rank's payload at `root`; the root receives payloads
    /// indexed by rank, other ranks receive `None`.
    #[allow(clippy::unwrap_used)] // every slot filled: one recv per non-root rank
    pub fn gather(&self, root: Rank, data: Bytes) -> Option<Vec<Bytes>> {
        if self.rank == root {
            let mut out: Vec<Option<Bytes>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(data);
            for _ in 0..self.size() - 1 {
                let m = self.recv(Src::Any, TAG_GATHER);
                out[m.source] = Some(m.data);
            }
            Some(out.into_iter().map(|o| o.unwrap()).collect())
        } else {
            self.send(root, TAG_GATHER, data);
            None
        }
    }

    /// Scatter per-rank payloads from `root`; every rank gets its slice.
    ///
    /// # Panics
    /// Panics when called on the root without `data` (API contract).
    #[allow(clippy::expect_used)] // documented caller contract
    pub fn scatter(&self, root: Rank, data: Option<Vec<Bytes>>) -> Bytes {
        if self.rank == root {
            let data = data.expect("scatter root must supply data");
            assert_eq!(
                data.len(),
                self.size(),
                "scatter needs one payload per rank"
            );
            let mut mine = Bytes::new();
            for (r, d) in data.into_iter().enumerate() {
                if r == root {
                    mine = d;
                } else {
                    self.send(r, TAG_SCATTER, d);
                }
            }
            mine
        } else {
            self.recv(Src::Of(root), TAG_SCATTER).data
        }
    }

    /// Sum-reduce a `u64` contribution at rank 0; rank 0 gets the total.
    #[allow(clippy::unwrap_used)] // contributions are exactly 8 bytes by construction
    pub fn reduce_sum_u64(&self, value: u64) -> Option<u64> {
        if self.rank == 0 {
            let mut total = value;
            for _ in 0..self.size() - 1 {
                let m = self.recv(Src::Any, TAG_REDUCE);
                let arr: [u8; 8] = m.data[..8].try_into().unwrap();
                total += u64::from_le_bytes(arr);
            }
            Some(total)
        } else {
            self.send(0, TAG_REDUCE, value.to_le_bytes().to_vec());
            None
        }
    }

    /// Sum-allreduce a `u64` contribution; every rank gets the total.
    #[allow(clippy::unwrap_used)] // the total from rank 0 is exactly 8 bytes
    pub fn allreduce_sum_u64(&self, value: u64) -> u64 {
        match self.reduce_sum_u64(value) {
            Some(total) => {
                for r in 1..self.size() {
                    self.send(r, TAG_ALLREDUCE_DOWN, total.to_le_bytes().to_vec());
                }
                total
            }
            None => {
                let m = self.recv(Src::Of(0), TAG_ALLREDUCE_DOWN);
                let arr: [u8; 8] = m.data[..8].try_into().unwrap();
                u64::from_le_bytes(arr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn bcast_reaches_all_ranks() {
        let out = World::run(5, |comm| {
            let data = if comm.rank() == 2 {
                Some(Bytes::from_static(b"hello"))
            } else {
                None
            };
            comm.bcast(2, data).to_vec()
        });
        for v in out {
            assert_eq!(v, b"hello");
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let out = World::run(4, |comm| {
            let mine = Bytes::from(vec![comm.rank() as u8]);
            comm.gather(0, mine)
        });
        let gathered = out[0].as_ref().unwrap();
        for (r, b) in gathered.iter().enumerate() {
            assert_eq!(b[0] as usize, r);
        }
        assert!(out[1].is_none());
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let out = World::run(4, |comm| {
            let data = if comm.rank() == 0 {
                Some((0..4).map(|r| Bytes::from(vec![r as u8 * 2])).collect())
            } else {
                None
            };
            comm.scatter(0, data)[0]
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let out = World::run(6, |comm| comm.allreduce_sum_u64(comm.rank() as u64 + 1));
        for v in out {
            assert_eq!(v, 21);
        }
    }

    #[test]
    fn repeated_barriers_do_not_interfere() {
        World::run(8, |comm| {
            for _ in 0..50 {
                comm.barrier();
            }
        });
    }

    #[test]
    fn reduce_then_bcast_sequence() {
        let out = World::run(3, |comm| {
            let total = comm.allreduce_sum_u64(1);
            comm.barrier();
            let b = comm.bcast(
                0,
                (comm.rank() == 0).then(|| Bytes::from(vec![total as u8])),
            );
            b[0]
        });
        assert_eq!(out, vec![3, 3, 3]);
    }
}
