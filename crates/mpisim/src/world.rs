//! World launch: run `n` ranks as scoped OS threads sharing mailboxes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::Comm;
use crate::fault::{FaultPlan, FaultState, RankKilled};
use crate::mailbox::Mailbox;
use crate::trace::{self, RankTrace, Recorder};
use crate::Rank;

/// Aggregate traffic counters for a finished world, used by the benchmark
/// harness to report message volumes alongside wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Total point-to-point messages sent (collective traffic included).
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

pub(crate) struct Shared {
    pub mailboxes: Vec<Mailbox>,
    pub msg_count: AtomicU64,
    pub byte_count: AtomicU64,
    pub poisoned: AtomicBool,
    pub faults: FaultState,
}

impl Shared {
    fn new(size: usize, plan: &FaultPlan) -> Self {
        Shared {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            msg_count: AtomicU64::new(0),
            byte_count: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            faults: FaultState::new(size, plan),
        }
    }

    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.poison();
        }
    }
}

/// Result of a world run that may have had ranks killed by fault
/// injection.
#[derive(Debug)]
pub struct FaultyOutcome<T> {
    /// Per-rank results; `None` for ranks killed by the fault plan.
    pub outputs: Vec<Option<T>>,
    /// Traffic counters (dropped messages are not counted).
    pub stats: WorldStats,
    /// Ranks that were killed, in rank order.
    pub killed: Vec<Rank>,
    /// Per-rank lifecycle traces, indexed by rank. Empty unless the run
    /// was launched with [`World::run_faulty_traced`] and tracing on.
    /// Killed ranks' partial traces are included: the world holds the
    /// recorders, so events survive the rank's unwind.
    pub traces: Vec<RankTrace>,
}

/// Entry point for launching a simulated MPI job.
pub struct World;

impl World {
    /// Run `size` ranks, each executing `body` on its own OS thread, and
    /// return the per-rank results indexed by rank.
    ///
    /// If any rank panics, the world is poisoned (waking blocked receivers)
    /// and the panic is propagated to the caller with the rank attached.
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        Self::run_with_stats(size, body).0
    }

    /// Like [`World::run`] but also returns traffic counters.
    ///
    /// # Panics
    /// Panics if a rank produced no result — impossible without a
    /// [`FaultPlan`], and this fault-free entry point runs without one.
    #[allow(clippy::expect_used)] // fault-free runs kill no ranks
    pub fn run_with_stats<T, F>(size: usize, body: F) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        let outcome = Self::run_faulty(size, &FaultPlan::new(), body);
        (
            outcome
                .outputs
                .into_iter()
                .map(|s| s.expect("rank produced no result"))
                .collect(),
            outcome.stats,
        )
    }

    /// Run `size` ranks under a [`FaultPlan`]. Ranks killed by the plan
    /// unwind quietly at their scripted kill point: the world is *not*
    /// poisoned, surviving ranks keep running, and the killed rank's slot
    /// in `outputs` is `None`.
    ///
    /// A real (non-injected) panic on any rank still poisons the world
    /// and propagates, exactly as in [`World::run`].
    pub fn run_faulty<T, F>(size: usize, plan: &FaultPlan, body: F) -> FaultyOutcome<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        Self::run_faulty_traced(size, plan, false, body)
    }

    /// Like [`World::run_faulty`], with optional lifecycle tracing. When
    /// `tracing` is true, each rank thread gets a [`Recorder`] with its own
    /// clock epoch (captured on that thread — the per-rank monotonic clock)
    /// plus the offset from the world launch instant; the world keeps a
    /// handle to every recorder, so killed ranks' partial traces survive
    /// their unwind and land in [`FaultyOutcome::traces`] too.
    pub fn run_faulty_traced<T, F>(
        size: usize,
        plan: &FaultPlan,
        tracing: bool,
        body: F,
    ) -> FaultyOutcome<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(size > 0, "world size must be at least 1");
        silence_injected_kills();
        let shared = Arc::new(Shared::new(size, plan));
        let body = &body;
        let world_epoch = std::time::Instant::now();
        let recorders: Vec<std::sync::Mutex<Option<Arc<Recorder>>>> =
            (0..size).map(|_| std::sync::Mutex::new(None)).collect();
        let recorders = &recorders;

        let (outputs, killed) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        if tracing {
                            let offset = world_epoch.elapsed().as_micros() as u64;
                            let rec = Arc::new(Recorder::new(offset));
                            if let Ok(mut slot) = recorders[rank].lock() {
                                *slot = Some(Arc::clone(&rec));
                            }
                            trace::install(rec);
                        }
                        let comm = Comm::new(rank as Rank, shared.clone());
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm)));
                        trace::uninstall();
                        // An injected kill is an orderly fail-stop: the
                        // rest of the world keeps running. Anything else
                        // is a real failure that must tear the world down.
                        if let Err(p) = &out {
                            if !p.is::<RankKilled>() {
                                shared.poison();
                            }
                        }
                        (rank, out)
                    })
                })
                .collect();

            let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
            let mut killed: Vec<Rank> = Vec::new();
            // Prefer reporting the root-cause panic over the secondary
            // "recv on poisoned world" panics it induces in other ranks.
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                p.downcast_ref::<String>()
                    .map(|s| s.contains("poisoned world"))
                    .or_else(|| {
                        p.downcast_ref::<&str>()
                            .map(|s| s.contains("poisoned world"))
                    })
                    .unwrap_or(false)
            };
            for h in handles {
                match h.join() {
                    Ok((rank, Ok(v))) => slots[rank] = Some(v),
                    Ok((rank, Err(p))) if p.is::<RankKilled>() => killed.push(rank),
                    Ok((rank, Err(p))) => {
                        let secondary = is_secondary(&p);
                        match &first_panic {
                            None => first_panic = Some((rank, p)),
                            Some((_, prev)) if is_secondary(prev) && !secondary => {
                                first_panic = Some((rank, p));
                            }
                            _ => {}
                        }
                    }
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some((usize::MAX, p));
                        }
                    }
                }
            }
            if let Some((rank, p)) = first_panic {
                eprintln!("mpisim: rank {rank} panicked; propagating");
                std::panic::resume_unwind(p);
            }
            killed.sort_unstable();
            (slots, killed)
        });

        let stats = WorldStats {
            messages: shared.msg_count.load(Ordering::Relaxed),
            bytes: shared.byte_count.load(Ordering::Relaxed),
        };
        let traces = if tracing {
            recorders
                .iter()
                .enumerate()
                .map(|(rank, slot)| {
                    slot.lock()
                        .ok()
                        .and_then(|mut s| s.take())
                        .map(|rec| rec.drain(rank))
                        .unwrap_or(RankTrace {
                            rank,
                            offset_us: 0,
                            events: Vec::new(),
                        })
                })
                .collect()
        } else {
            Vec::new()
        };
        FaultyOutcome {
            outputs,
            stats,
            killed,
            traces,
        }
    }
}

/// Keep scripted [`RankKilled`] unwinds out of stderr: they are orderly
/// fail-stops, not bugs, and the default panic hook's backtrace for them
/// drowns the output of fault-injection runs. Installed once, process
/// wide; every other panic still reaches the previous hook.
fn silence_injected_kills() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<RankKilled>() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Src, TagSel};

    #[test]
    fn results_are_indexed_by_rank() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (_, stats) = World::run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![0u8; 100]);
            } else {
                comm.recv(Src::Of(0), TagSel::Of(3));
            }
        });
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 100);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        World::run(3, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block forever; poisoning must wake them so the
            // world tears down instead of hanging.
            let _ = comm.recv(Src::Any, TagSel::Any);
        });
    }

    #[test]
    fn killed_rank_does_not_poison_survivors() {
        // Rank 1 is killed after its first send; ranks 0 and 2 still
        // complete their own exchange.
        let plan = FaultPlan::new().kill_after_sends(1, 1);
        let outcome = World::run_faulty(3, &plan, |comm| {
            match comm.rank() {
                0 => {
                    // Expect rank 1's single (pre-kill) message plus 2's.
                    let a = comm.recv(Src::Of(1), TagSel::Of(9));
                    let b = comm.recv(Src::Of(2), TagSel::Of(9));
                    (a.data.len() + b.data.len()) as u64
                }
                1 => {
                    comm.send(0, 9, vec![1u8; 3]);
                    // Never reached: the kill fires inside the send above.
                    comm.send(0, 9, vec![1u8; 100]);
                    0
                }
                _ => {
                    comm.send(0, 9, vec![2u8; 5]);
                    comm.rank() as u64
                }
            }
        });
        assert_eq!(outcome.killed, vec![1]);
        assert!(outcome.outputs[1].is_none());
        assert_eq!(outcome.outputs[0], Some(8));
        assert_eq!(outcome.outputs[2], Some(2));
    }

    #[test]
    fn kill_after_recvs_fires_on_recv_entry() {
        // Rank 1 may complete exactly 2 receives; its third receive call
        // kills it without consuming anything.
        let plan = FaultPlan::new().kill_after_recvs(1, 2);
        let outcome = World::run_faulty(2, &plan, |comm| {
            if comm.rank() == 0 {
                for _ in 0..3 {
                    comm.send(1, 4, vec![0u8; 1]);
                }
                0u64
            } else {
                loop {
                    comm.recv(Src::Of(0), TagSel::Of(4));
                }
            }
        });
        assert_eq!(outcome.killed, vec![1]);
        assert!(outcome.outputs[1].is_none());
    }

    #[test]
    fn dropped_message_never_arrives() {
        let plan = FaultPlan::new().drop_nth(0, 1, 2);
        let outcome = World::run_faulty(2, &plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1u8]);
                comm.send(1, 5, vec![2u8]); // dropped
                comm.send(1, 5, vec![3u8]);
                0
            } else {
                let a = comm.recv(Src::Of(0), TagSel::Of(5)).data[0];
                let b = comm.recv(Src::Of(0), TagSel::Of(5)).data[0];
                (a as i32) * 10 + b as i32
            }
        });
        assert!(outcome.killed.is_empty());
        assert_eq!(outcome.outputs[1], Some(13));
        // The dropped message is not counted in traffic stats.
        assert_eq!(outcome.stats.messages, 2);
    }

    #[test]
    fn sends_to_dead_ranks_are_dropped() {
        // Rank 1 dies before receiving anything; rank 0's sends to it must
        // not block or panic, and the world must still terminate.
        let plan = FaultPlan::new().kill_after_recvs(1, 0);
        let outcome = World::run_faulty(2, &plan, |comm| {
            if comm.rank() == 0 {
                // Give rank 1 a moment to die so at least one send hits a
                // dead destination (either way the run must terminate).
                std::thread::sleep(std::time::Duration::from_millis(20));
                comm.send(1, 6, vec![0u8; 8]);
                assert!(!comm.is_alive(1));
                7
            } else {
                comm.recv(Src::Any, TagSel::Any);
                0
            }
        });
        assert_eq!(outcome.killed, vec![1]);
        assert_eq!(outcome.outputs[0], Some(7));
    }

    #[test]
    fn empty_plan_behaves_like_run() {
        let outcome = World::run_faulty(4, &FaultPlan::new(), |comm| comm.rank());
        assert!(outcome.killed.is_empty());
        assert_eq!(outcome.outputs, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert!(outcome.traces.is_empty());
    }

    #[test]
    fn traced_run_keeps_killed_rank_events() {
        use crate::trace::{self, KIND_TASK_EVAL};
        // Rank 1 records a span, then dies inside its first send. The
        // world holds the recorder, so the pre-kill span must survive.
        let plan = FaultPlan::new().kill_after_sends(1, 1);
        let outcome = World::run_faulty_traced(2, &plan, true, |comm| {
            if comm.rank() == 1 {
                let t0 = trace::now_us();
                trace::record_since(KIND_TASK_EVAL, 7, t0);
                comm.send(0, 9, vec![0u8; 1]);
                comm.send(0, 9, vec![0u8; 1]); // never reached
            } else {
                comm.recv(Src::Of(1), TagSel::Of(9));
            }
            comm.rank()
        });
        assert_eq!(outcome.killed, vec![1]);
        assert_eq!(outcome.traces.len(), 2);
        let dead = &outcome.traces[1];
        assert_eq!(dead.rank, 1);
        assert_eq!(dead.events.len(), 1);
        assert_eq!(dead.events[0].kind, KIND_TASK_EVAL);
        assert_eq!(dead.events[0].id, 7);
        // Aligned timestamps are monotone on the shared timeline.
        assert!(dead.events[0].end_us >= dead.events[0].start_us);
    }
}
