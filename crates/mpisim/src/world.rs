//! World launch: run `n` ranks as scoped OS threads sharing mailboxes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::Comm;
use crate::mailbox::Mailbox;
use crate::Rank;

/// Aggregate traffic counters for a finished world, used by the benchmark
/// harness to report message volumes alongside wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Total point-to-point messages sent (collective traffic included).
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
}

pub(crate) struct Shared {
    pub mailboxes: Vec<Mailbox>,
    pub msg_count: AtomicU64,
    pub byte_count: AtomicU64,
    pub poisoned: AtomicBool,
}

impl Shared {
    fn new(size: usize) -> Self {
        Shared {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            msg_count: AtomicU64::new(0),
            byte_count: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.poison();
        }
    }
}

/// Entry point for launching a simulated MPI job.
pub struct World;

impl World {
    /// Run `size` ranks, each executing `body` on its own OS thread, and
    /// return the per-rank results indexed by rank.
    ///
    /// If any rank panics, the world is poisoned (waking blocked receivers)
    /// and the panic is propagated to the caller with the rank attached.
    pub fn run<T, F>(size: usize, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        Self::run_with_stats(size, body).0
    }

    /// Like [`World::run`] but also returns traffic counters.
    pub fn run_with_stats<T, F>(size: usize, body: F) -> (Vec<T>, WorldStats)
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(size > 0, "world size must be at least 1");
        let shared = Arc::new(Shared::new(size));
        let body = &body;

        let results: Vec<Option<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let comm = Comm::new(rank as Rank, shared.clone());
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || body(comm),
                        ));
                        if out.is_err() {
                            shared.poison();
                        }
                        (rank, out)
                    })
                })
                .collect();

            let mut slots: Vec<Option<T>> = (0..size).map(|_| None).collect();
            // Prefer reporting the root-cause panic over the secondary
            // "recv on poisoned world" panics it induces in other ranks.
            let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
            let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                p.downcast_ref::<String>()
                    .map(|s| s.contains("poisoned world"))
                    .or_else(|| {
                        p.downcast_ref::<&str>().map(|s| s.contains("poisoned world"))
                    })
                    .unwrap_or(false)
            };
            for h in handles {
                match h.join() {
                    Ok((rank, Ok(v))) => slots[rank] = Some(v),
                    Ok((rank, Err(p))) => {
                        let secondary = is_secondary(&p);
                        match &first_panic {
                            None => first_panic = Some((rank, p)),
                            Some((_, prev)) if is_secondary(prev) && !secondary => {
                                first_panic = Some((rank, p));
                            }
                            _ => {}
                        }
                    }
                    Err(p) => {
                        if first_panic.is_none() {
                            first_panic = Some((usize::MAX, p));
                        }
                    }
                }
            }
            if let Some((rank, p)) = first_panic {
                eprintln!("mpisim: rank {rank} panicked; propagating");
                std::panic::resume_unwind(p);
            }
            slots
        });

        let stats = WorldStats {
            messages: shared.msg_count.load(Ordering::Relaxed),
            bytes: shared.byte_count.load(Ordering::Relaxed),
        };
        (
            results
                .into_iter()
                .map(|s| s.expect("rank produced no result"))
                .collect(),
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Src, TagSel};

    #[test]
    fn results_are_indexed_by_rank() {
        let out = World::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (_, stats) = World::run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, vec![0u8; 100]);
            } else {
                comm.recv(Src::Of(0), TagSel::Of(3));
            }
        });
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 100);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        World::run(3, |comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block forever; poisoning must wake them so the
            // world tears down instead of hanging.
            let _ = comm.recv(Src::Any, TagSel::Any);
        });
    }
}
