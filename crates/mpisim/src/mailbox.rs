//! Per-rank mailbox with MPI-style `(source, tag)` selective receive.
//!
//! Each rank owns exactly one mailbox. Senders push envelopes at the back;
//! receivers scan front-to-back for the first envelope matching their
//! `(source, tag)` selector. Because a given sender's envelopes appear in
//! send order and the scan is front-to-back, delivery is non-overtaking per
//! `(source, destination, tag)` triple — the MPI guarantee ADLB relies on.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::{Message, Src, TagSel};
use crate::{Rank, Tag};

/// One in-flight message.
#[derive(Debug, Clone)]
pub(crate) struct Envelope {
    pub source: Rank,
    pub tag: Tag,
    pub data: Bytes,
}

impl Envelope {
    fn matches(&self, src: Src, tag: TagSel) -> bool {
        let src_ok = match src {
            Src::Any => true,
            Src::Of(r) => self.source == r,
        };
        let tag_ok = match tag {
            TagSel::Any => true,
            TagSel::Of(t) => self.tag == t,
        };
        src_ok && tag_ok
    }
}

#[derive(Default)]
struct Inner {
    queue: VecDeque<Envelope>,
    /// Set when the owning world is tearing down after a rank panicked, so
    /// blocked receivers wake up instead of deadlocking the test harness.
    poisoned: bool,
}

/// A single rank's incoming-message queue.
pub(crate) struct Mailbox {
    inner: Mutex<Inner>,
    avail: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(Inner::default()),
            avail: Condvar::new(),
        }
    }

    /// Append an envelope and wake any blocked receiver.
    pub fn push(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(env);
        // Wake everyone: a receiver with a narrow selector may not match the
        // new envelope even though another blocked receiver would.
        drop(inner);
        self.avail.notify_all();
    }

    /// Mark the mailbox poisoned (world teardown) and wake all receivers.
    pub fn poison(&self) {
        self.inner.lock().poisoned = true;
        self.avail.notify_all();
    }

    fn take_matching(inner: &mut Inner, src: Src, tag: TagSel) -> Option<Envelope> {
        let pos = inner.queue.iter().position(|e| e.matches(src, tag))?;
        inner.queue.remove(pos)
    }

    /// Blocking selective receive.
    ///
    /// # Panics
    /// Panics if the world was poisoned by another rank's panic; this
    /// converts a would-be deadlock into a visible failure.
    pub fn recv(&self, src: Src, tag: TagSel) -> Message {
        let mut inner = self.inner.lock();
        loop {
            if let Some(env) = Self::take_matching(&mut inner, src, tag) {
                return Message {
                    source: env.source,
                    tag: env.tag,
                    data: env.data,
                };
            }
            if inner.poisoned {
                panic!("mpisim: recv on poisoned world (another rank panicked)");
            }
            self.avail.wait(&mut inner);
        }
    }

    /// Non-blocking selective receive.
    pub fn try_recv(&self, src: Src, tag: TagSel) -> Option<Message> {
        let mut inner = self.inner.lock();
        Self::take_matching(&mut inner, src, tag).map(|env| Message {
            source: env.source,
            tag: env.tag,
            data: env.data,
        })
    }

    /// Blocking receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, src: Src, tag: TagSel, timeout: Duration) -> Option<Message> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(env) = Self::take_matching(&mut inner, src, tag) {
                return Some(Message {
                    source: env.source,
                    tag: env.tag,
                    data: env.data,
                });
            }
            if inner.poisoned {
                panic!("mpisim: recv on poisoned world (another rank panicked)");
            }
            if self.avail.wait_until(&mut inner, deadline).timed_out() {
                return Self::take_matching(&mut inner, src, tag).map(|env| Message {
                    source: env.source,
                    tag: env.tag,
                    data: env.data,
                });
            }
        }
    }

    /// Probe without removing: returns `(source, tag, len)` of the first
    /// matching envelope.
    pub fn iprobe(&self, src: Src, tag: TagSel) -> Option<(Rank, Tag, usize)> {
        let inner = self.inner.lock();
        inner
            .queue
            .iter()
            .find(|e| e.matches(src, tag))
            .map(|e| (e.source, e.tag, e.data.len()))
    }

    /// Number of queued envelopes (diagnostics only).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(source: Rank, tag: Tag, byte: u8) -> Envelope {
        Envelope {
            source,
            tag,
            data: Bytes::from(vec![byte]),
        }
    }

    #[test]
    fn fifo_per_source_tag() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, b'a'));
        mb.push(env(0, 1, b'b'));
        let m1 = mb.try_recv(Src::Of(0), TagSel::Of(1)).unwrap();
        let m2 = mb.try_recv(Src::Of(0), TagSel::Of(1)).unwrap();
        assert_eq!(m1.data[0], b'a');
        assert_eq!(m2.data[0], b'b');
    }

    #[test]
    fn selective_receive_skips_non_matching() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, b'x'));
        mb.push(env(1, 2, b'y'));
        let m = mb.try_recv(Src::Of(1), TagSel::Of(2)).unwrap();
        assert_eq!(m.data[0], b'y');
        // The earlier envelope is still there.
        assert_eq!(mb.len(), 1);
        let m = mb.try_recv(Src::Any, TagSel::Any).unwrap();
        assert_eq!(m.data[0], b'x');
    }

    #[test]
    fn wildcard_matches_first_arrival() {
        let mb = Mailbox::new();
        mb.push(env(3, 9, b'p'));
        mb.push(env(2, 8, b'q'));
        let m = mb.try_recv(Src::Any, TagSel::Any).unwrap();
        assert_eq!((m.source, m.tag), (3, 9));
    }

    #[test]
    fn iprobe_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(5, 4, b'z'));
        assert_eq!(mb.iprobe(Src::Any, TagSel::Of(4)), Some((5, 4, 1)));
        assert_eq!(mb.len(), 1);
        assert!(mb.try_recv(Src::Of(5), TagSel::Of(4)).is_some());
        assert_eq!(mb.iprobe(Src::Any, TagSel::Any), None);
    }

    #[test]
    fn recv_timeout_times_out_empty() {
        let mb = Mailbox::new();
        let got = mb.recv_timeout(Src::Any, TagSel::Any, Duration::from_millis(10));
        assert!(got.is_none());
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poison_wakes_blocked_receiver() {
        let mb = std::sync::Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let t = std::thread::spawn(move || {
            mb2.recv(Src::Any, TagSel::Any);
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.poison();
        let err = t.join().unwrap_err();
        std::panic::resume_unwind(err);
    }
}
