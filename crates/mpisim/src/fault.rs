//! Deterministic fault injection for the simulated MPI substrate.
//!
//! A [`FaultPlan`] scripts failures against a world before it launches:
//! kill rank R after its Nth send or receive, silently drop the Nth
//! message on a (from, to) pair, or delay it. Plans are plain data, so
//! every failure scenario is reproducible — the same plan against the
//! same program kills the same rank at the same protocol step every run.
//!
//! The kill points are chosen to model *fail-stop* process death at
//! message boundaries, the granularity at which the upper layers (ADLB
//! task leases, Turbine containment) can reason about exactly-once
//! execution: a kill-after-send fires after the Nth send is delivered,
//! and a kill-after-recvs fires on entry to the following receive,
//! consuming nothing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::Rank;

/// One scripted failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill `rank` immediately after its `sends`-th send is delivered.
    KillAfterSends {
        /// Victim rank.
        rank: Rank,
        /// 1-based send count that triggers the kill.
        sends: u64,
    },
    /// Kill `rank` when it enters a receive after completing `recvs`
    /// receives (nothing is consumed by the fatal call).
    KillAfterRecvs {
        /// Victim rank.
        rank: Rank,
        /// Number of completed receives before the kill fires.
        recvs: u64,
    },
    /// Silently drop the `nth` (1-based) message sent from `from` to `to`.
    DropNth {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// 1-based message index on the (from, to) pair.
        nth: u64,
    },
    /// Delay delivery of the `nth` (1-based) message from `from` to `to`.
    DelayNth {
        /// Sending rank.
        from: Rank,
        /// Receiving rank.
        to: Rank,
        /// 1-based message index on the (from, to) pair.
        nth: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
}

/// A scripted, deterministic set of failures for one world run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The scripted actions.
    pub fn actions(&self) -> &[FaultAction] {
        &self.actions
    }

    /// Add an action.
    pub fn with(mut self, action: FaultAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Kill `rank` right after its `sends`-th delivered send.
    pub fn kill_after_sends(self, rank: Rank, sends: u64) -> Self {
        self.with(FaultAction::KillAfterSends { rank, sends })
    }

    /// Kill `rank` at entry to the receive following its `recvs`-th
    /// completed receive.
    pub fn kill_after_recvs(self, rank: Rank, recvs: u64) -> Self {
        self.with(FaultAction::KillAfterRecvs { rank, recvs })
    }

    /// Drop the `nth` message from `from` to `to`.
    pub fn drop_nth(self, from: Rank, to: Rank, nth: u64) -> Self {
        self.with(FaultAction::DropNth { from, to, nth })
    }

    /// Delay the `nth` message from `from` to `to` by `millis`.
    pub fn delay_nth(self, from: Rank, to: Rank, nth: u64, millis: u64) -> Self {
        self.with(FaultAction::DelayNth {
            from,
            to,
            nth,
            millis,
        })
    }

    /// Parse a CLI fault spec: `;`-separated actions of the form
    ///
    /// * `kill:rank=R,sends=N` — kill R after its Nth send
    /// * `kill:rank=R,recvs=N` — kill R after N completed receives
    /// * `drop:from=A,to=B,nth=N` — drop the Nth A→B message
    /// * `delay:from=A,to=B,nth=N,ms=M` — delay the Nth A→B message
    ///
    /// Example: `--faults "kill:rank=2,recvs=6;drop:from=0,to=1,nth=3"`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, fields) = part
                .split_once(':')
                .ok_or_else(|| format!("fault action `{part}` is missing `kind:`"))?;
            let mut kv: HashMap<&str, u64> = HashMap::new();
            for field in fields.split(',') {
                let (k, v) = field
                    .trim()
                    .split_once('=')
                    .ok_or_else(|| format!("fault field `{field}` is not `key=value`"))?;
                let v: u64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("fault field `{field}` has a non-numeric value"))?;
                kv.insert(k.trim(), v);
            }
            let get = |k: &str| -> Result<u64, String> {
                kv.get(k)
                    .copied()
                    .ok_or_else(|| format!("fault action `{part}` is missing `{k}=`"))
            };
            match kind.trim() {
                "kill" => {
                    let rank = get("rank")? as Rank;
                    match (kv.get("sends"), kv.get("recvs")) {
                        (Some(&n), None) => plan = plan.kill_after_sends(rank, n),
                        (None, Some(&n)) => plan = plan.kill_after_recvs(rank, n),
                        _ => {
                            return Err(format!(
                                "kill action `{part}` needs exactly one of `sends=` or `recvs=`"
                            ))
                        }
                    }
                }
                "drop" => {
                    plan = plan.drop_nth(get("from")? as Rank, get("to")? as Rank, get("nth")?);
                }
                "delay" => {
                    plan = plan.delay_nth(
                        get("from")? as Rank,
                        get("to")? as Rank,
                        get("nth")?,
                        get("ms")?,
                    );
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// Panic payload used to unwind a killed rank's thread. Distinct from a
/// real panic: the world does **not** poison when a rank dies this way,
/// so surviving ranks keep running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKilled {
    /// The rank that was killed.
    pub rank: Rank,
}

/// Per-world runtime state compiled from a [`FaultPlan`].
pub(crate) struct FaultState {
    enabled: bool,
    kill_sends: Vec<Option<u64>>,
    kill_recvs: Vec<Option<u64>>,
    /// (from, to) → sorted list of 1-based indices to drop.
    drops: HashMap<(Rank, Rank), Vec<u64>>,
    /// (from, to) → (1-based index, delay ms).
    delays: HashMap<(Rank, Rank), Vec<(u64, u64)>>,
    sends_done: Vec<AtomicU64>,
    recvs_done: Vec<AtomicU64>,
    /// Per-(from, to) send counters; only maintained when drops or delays
    /// are scripted.
    pair_sends: Mutex<HashMap<(Rank, Rank), u64>>,
    alive: Vec<AtomicBool>,
}

/// What `before_send` told the sender to do.
pub(crate) struct SendVerdict {
    pub deliver: bool,
    pub delay_ms: Option<u64>,
    pub kill_after: bool,
}

impl FaultState {
    pub(crate) fn new(size: usize, plan: &FaultPlan) -> Self {
        let mut kill_sends = vec![None; size];
        let mut kill_recvs = vec![None; size];
        let mut drops: HashMap<(Rank, Rank), Vec<u64>> = HashMap::new();
        let mut delays: HashMap<(Rank, Rank), Vec<(u64, u64)>> = HashMap::new();
        for action in plan.actions() {
            match *action {
                FaultAction::KillAfterSends { rank, sends } if rank < size => {
                    let slot: &mut Option<u64> = &mut kill_sends[rank];
                    *slot = Some(slot.map_or(sends, |prev: u64| prev.min(sends)));
                }
                FaultAction::KillAfterRecvs { rank, recvs } if rank < size => {
                    let slot: &mut Option<u64> = &mut kill_recvs[rank];
                    *slot = Some(slot.map_or(recvs, |prev: u64| prev.min(recvs)));
                }
                FaultAction::DropNth { from, to, nth } => {
                    drops.entry((from, to)).or_default().push(nth);
                }
                FaultAction::DelayNth {
                    from,
                    to,
                    nth,
                    millis,
                } => {
                    delays.entry((from, to)).or_default().push((nth, millis));
                }
                // Kills aimed at out-of-range ranks are inert.
                FaultAction::KillAfterSends { .. } | FaultAction::KillAfterRecvs { .. } => {}
            }
        }
        FaultState {
            enabled: !plan.is_empty(),
            kill_sends,
            kill_recvs,
            drops,
            delays,
            sends_done: (0..size).map(|_| AtomicU64::new(0)).collect(),
            recvs_done: (0..size).map(|_| AtomicU64::new(0)).collect(),
            pair_sends: Mutex::new(HashMap::new()),
            alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// Whether `rank` has not been killed.
    pub(crate) fn is_alive(&self, rank: Rank) -> bool {
        !self.enabled || self.alive[rank].load(Ordering::SeqCst)
    }

    /// Record a send from `from` to `to` and decide its fate.
    pub(crate) fn before_send(&self, from: Rank, to: Rank) -> SendVerdict {
        if !self.enabled {
            return SendVerdict {
                deliver: true,
                delay_ms: None,
                kill_after: false,
            };
        }
        let n = self.sends_done[from].fetch_add(1, Ordering::SeqCst) + 1;
        let kill_after = self.kill_sends[from].is_some_and(|t| n >= t);

        let mut deliver = true;
        let mut delay_ms = None;
        let pair = (from, to);
        if self.drops.contains_key(&pair) || self.delays.contains_key(&pair) {
            let mut counts = self.pair_sends.lock();
            let c = counts.entry(pair).or_insert(0);
            *c += 1;
            let nth = *c;
            if self.drops.get(&pair).is_some_and(|v| v.contains(&nth)) {
                deliver = false;
            }
            if let Some(d) = self
                .delays
                .get(&pair)
                .and_then(|v| v.iter().find(|(i, _)| *i == nth))
            {
                delay_ms = Some(d.1);
            }
        }
        SendVerdict {
            deliver,
            delay_ms,
            kill_after,
        }
    }

    /// Kill check at entry to a message-consuming receive.
    pub(crate) fn check_recv_entry(&self, rank: Rank) {
        if !self.enabled {
            return;
        }
        let done = self.recvs_done[rank].load(Ordering::SeqCst);
        if self.kill_recvs[rank].is_some_and(|t| done >= t) {
            self.kill(rank);
        }
    }

    /// Record one completed (message-consuming) receive.
    pub(crate) fn note_recv_done(&self, rank: Rank) {
        if self.enabled {
            self.recvs_done[rank].fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Mark `rank` dead and unwind its thread with [`RankKilled`].
    pub(crate) fn kill(&self, rank: Rank) -> ! {
        self.alive[rank].store(false, Ordering::SeqCst);
        std::panic::panic_any(RankKilled { rank });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_each_kind() {
        let plan =
            FaultPlan::parse("kill:rank=2,sends=5; kill:rank=3,recvs=7;drop:from=0,to=1,nth=2; delay:from=1,to=0,nth=3,ms=10")
                .unwrap();
        assert_eq!(
            plan.actions(),
            &[
                FaultAction::KillAfterSends { rank: 2, sends: 5 },
                FaultAction::KillAfterRecvs { rank: 3, recvs: 7 },
                FaultAction::DropNth {
                    from: 0,
                    to: 1,
                    nth: 2
                },
                FaultAction::DelayNth {
                    from: 1,
                    to: 0,
                    nth: 3,
                    millis: 10
                },
            ]
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("kill").is_err());
        assert!(FaultPlan::parse("kill:rank=1").is_err());
        assert!(FaultPlan::parse("kill:rank=1,sends=2,recvs=3").is_err());
        assert!(FaultPlan::parse("drop:from=0,to=1").is_err());
        assert!(FaultPlan::parse("explode:rank=1").is_err());
        assert!(FaultPlan::parse("kill:rank=x,sends=1").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn kill_thresholds_take_the_minimum() {
        let plan = FaultPlan::new()
            .kill_after_sends(0, 9)
            .kill_after_sends(0, 4);
        let state = FaultState::new(2, &plan);
        assert_eq!(state.kill_sends[0], Some(4));
    }

    #[test]
    fn out_of_range_kills_are_inert() {
        let plan = FaultPlan::new().kill_after_sends(99, 1);
        let state = FaultState::new(2, &plan);
        assert!(state.is_alive(0));
        assert!(state.is_alive(1));
    }
}
