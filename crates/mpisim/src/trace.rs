//! Per-rank task-lifecycle tracing.
//!
//! The paper's Turbine/ADLB stack was tuned with MPE-style event logs; this
//! module is the reproduction's equivalent. Each rank owns a [`Recorder`]
//! with its **own monotonic clock** (an `Instant` captured on the rank's
//! thread at spawn — simulating per-node clocks that need not agree) plus a
//! recorded offset to the world launch instant. Merging applies the offset,
//! so merged traces are aligned exactly and span durations — both endpoints
//! stamped by the same rank clock — can never come out negative or inverted.
//!
//! Recording is allocation-light: events are fixed-size `Copy` structs
//! pushed onto a pre-grown vector. When no recorder is installed on the
//! current thread, [`now_us`] and [`record`] are no-ops (one thread-local
//! read), so disabled runs pay nothing measurable. Installation is
//! **thread-local**, not global, because many simulated worlds run
//! concurrently in one test process and tracing must not leak between them.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::Rank;

/// Client put (the `exchange` round-trip carrying a Put/PutBatch).
pub const KIND_TASK_PUT: u8 = 0;
/// Server-side queue wait: task accepted → handed to a worker.
pub const KIND_TASK_QUEUE: u8 = 1;
/// Server-side task latency: task accepted → done/ack released the lease.
pub const KIND_TASK_LATENCY: u8 = 2;
/// Worker leaf-task evaluation. One span per successfully executed task.
pub const KIND_TASK_EVAL: u8 = 3;
/// Engine rule firing. One span per `rules_fired`.
pub const KIND_RULE_FIRE: u8 = 4;
/// Client data-store operation round-trip.
pub const KIND_DATA_OP: u8 = 5;
/// Server steal round-trip: request sent → response absorbed.
pub const KIND_STEAL: u8 = 6;
/// Re-replication sync stream: first chunk sent → final ack retired it.
pub const KIND_REPL_SYNC: u8 = 7;
/// Failover promotion (instant). One per `failovers`.
pub const KIND_FAILOVER: u8 = 8;
/// Failover recovery window: death confirmed → replication factor restored.
pub const KIND_FAILOVER_RECOVERY: u8 = 9;
/// Checkpoint WAL flush / segment write to the parallel file system.
pub const KIND_CKPT_FLUSH: u8 = 10;
/// Shard restore from a durable checkpoint (failover or `--resume`).
pub const KIND_CKPT_RESTORE: u8 = 11;

/// Human-readable name for a span kind (Chrome trace event name).
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_TASK_PUT => "task_put",
        KIND_TASK_QUEUE => "task_queue",
        KIND_TASK_LATENCY => "task_latency",
        KIND_TASK_EVAL => "task_eval",
        KIND_RULE_FIRE => "rule_fire",
        KIND_DATA_OP => "data_op",
        KIND_STEAL => "steal",
        KIND_REPL_SYNC => "repl_sync",
        KIND_FAILOVER => "failover",
        KIND_FAILOVER_RECOVERY => "failover_recovery",
        KIND_CKPT_FLUSH => "ckpt_flush",
        KIND_CKPT_RESTORE => "ckpt_restore",
        _ => "unknown",
    }
}

/// One recorded span, timestamps in microseconds on the recording rank's
/// own clock. Fixed-size and `Copy` so recording never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// Correlation id (task seq, rule id, victim rank, ... — kind-specific).
    pub id: u64,
    /// Span start, µs since the recording rank's epoch.
    pub start_us: u64,
    /// Span end, µs since the recording rank's epoch (== start for instants).
    pub end_us: u64,
}

/// Per-rank event recorder with its own monotonic clock.
pub struct Recorder {
    /// This rank's clock epoch, captured on the rank's thread at spawn.
    epoch: Instant,
    /// µs between the world's launch instant and this rank's epoch;
    /// added back at merge time to align ranks on one timeline.
    offset_us: u64,
    /// Recorded events. One writer (the rank thread) in practice; the
    /// mutex only matters at drain time, so it is uncontended.
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// Create a recorder whose epoch is *now* on the calling thread, with
    /// the given offset from the world launch instant.
    pub fn new(offset_us: u64) -> Self {
        Recorder {
            epoch: Instant::now(),
            offset_us,
            events: Mutex::new(Vec::with_capacity(1024)),
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn record(&self, ev: TraceEvent) {
        if let Ok(mut v) = self.events.lock() {
            v.push(ev);
        }
    }

    /// Drain all recorded events into a [`RankTrace`].
    pub fn drain(&self, rank: Rank) -> RankTrace {
        let events = self
            .events
            .lock()
            .map(|mut v| std::mem::take(&mut *v))
            .unwrap_or_default();
        RankTrace {
            rank,
            offset_us: self.offset_us,
            events,
        }
    }
}

/// All events one rank recorded, plus the clock offset that aligns them to
/// the world timeline (`world_ts = event_ts + offset_us`).
#[derive(Debug, Clone)]
pub struct RankTrace {
    /// The recording rank.
    pub rank: Rank,
    /// µs from world launch to this rank's clock epoch.
    pub offset_us: u64,
    /// Events, in record order, on the rank's own clock.
    pub events: Vec<TraceEvent>,
}

thread_local! {
    static RECORDER: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
}

/// Install `rec` as the current thread's recorder. Called by the world
/// launcher on each rank thread when tracing is enabled.
pub fn install(rec: Arc<Recorder>) {
    RECORDER.with(|r| *r.borrow_mut() = Some(rec));
}

/// Remove the current thread's recorder (rank teardown).
pub fn uninstall() {
    RECORDER.with(|r| *r.borrow_mut() = None);
}

/// Whether the current thread is recording.
pub fn enabled() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Current time in µs on this rank's clock, or 0 when tracing is disabled.
/// Use the returned stamp only to build spans fed back to [`record`].
pub fn now_us() -> u64 {
    RECORDER.with(|r| r.borrow().as_ref().map_or(0, |rec| rec.now_us()))
}

/// Record a span `[start_us, end_us]` of `kind`. No-op when disabled.
pub fn record(kind: u8, id: u64, start_us: u64, end_us: u64) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_ref() {
            rec.record(TraceEvent {
                kind,
                id,
                start_us,
                end_us,
            });
        }
    });
}

/// Record an instantaneous event of `kind` at the current time.
pub fn record_instant(kind: u8, id: u64) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_ref() {
            let t = rec.now_us();
            rec.record(TraceEvent {
                kind,
                id,
                start_us: t,
                end_us: t,
            });
        }
    });
}

/// Record a span of `kind` that started at `start_us` and ends now.
/// No-op when disabled (callers stamp `start_us` with [`now_us`], which
/// returns 0 when disabled, so a recorder appearing mid-span is harmless:
/// recording is gated on *this* call, made by the same thread).
pub fn record_since(kind: u8, id: u64, start_us: u64) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow().as_ref() {
            let t = rec.now_us();
            rec.record(TraceEvent {
                kind,
                id,
                start_us: start_us.min(t),
                end_us: t,
            });
        }
    });
}

/// Count events of `kind` across merged traces (test-oracle helper).
pub fn count_kind(traces: &[RankTrace], kind: u8) -> u64 {
    traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == kind)
        .count() as u64
}

/// Durations (µs) of every span of `kind` across merged traces.
pub fn durations_of(traces: &[RankTrace], kind: u8) -> Vec<u64> {
    traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == kind)
        .map(|e| e.end_us - e.start_us)
        .collect()
}

/// Exact latency percentiles over a set of span durations, computed by the
/// nearest-rank method on the full sorted sample (the merged trace holds
/// every duration, so there is no need for lossy histogram buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of spans.
    pub count: u64,
    /// Median duration, µs.
    pub p50_us: u64,
    /// 95th-percentile duration, µs.
    pub p95_us: u64,
    /// 99th-percentile duration, µs.
    pub p99_us: u64,
    /// Maximum duration, µs.
    pub max_us: u64,
}

impl LatencyStats {
    /// Compute stats from a sample of durations; `None` when empty.
    pub fn from_durations(mut durations: Vec<u64>) -> Option<LatencyStats> {
        if durations.is_empty() {
            return None;
        }
        durations.sort_unstable();
        let n = durations.len();
        let pick = |p: usize| durations[((p * n).div_ceil(100)).clamp(1, n) - 1];
        Some(LatencyStats {
            count: n as u64,
            p50_us: pick(50),
            p95_us: pick(95),
            p99_us: pick(99),
            max_us: durations[n - 1],
        })
    }
}

/// Write merged traces as Chrome trace-event JSON (load with
/// `chrome://tracing` or <https://ui.perfetto.dev>). `role_names[rank]`
/// labels each rank's timeline; pass fewer names than ranks and the rest
/// fall back to `rank N`.
pub fn write_chrome_trace(
    path: &std::path::Path,
    traces: &[RankTrace],
    role_names: &[String],
) -> io::Result<()> {
    let f = File::create(path)?;
    let mut w = BufWriter::new(f);
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let mut sep = |w: &mut BufWriter<File>| -> io::Result<()> {
        if first {
            first = false;
        } else {
            write!(w, ",")?;
        }
        Ok(())
    };
    for t in traces {
        let name = role_names
            .get(t.rank)
            .cloned()
            .unwrap_or_else(|| format!("rank {}", t.rank));
        sep(&mut w)?;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            t.rank,
            escape(&name)
        )?;
    }
    for t in traces {
        for e in &t.events {
            let ts = e.start_us + t.offset_us;
            sep(&mut w)?;
            if e.start_us == e.end_us {
                write!(
                    w,
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\
                     \"ts\":{},\"s\":\"t\",\"args\":{{\"id\":{}}}}}",
                    t.rank,
                    kind_name(e.kind),
                    ts,
                    e.id
                )?;
            } else {
                write!(
                    w,
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\
                     \"cat\":\"swiftt\",\"ts\":{},\"dur\":{},\"args\":{{\"id\":{}}}}}",
                    t.rank,
                    kind_name(e.kind),
                    ts,
                    e.end_us - e.start_us,
                    e.id
                )?;
            }
        }
    }
    writeln!(w, "]}}")?;
    w.flush()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_a_no_op() {
        uninstall();
        assert!(!enabled());
        assert_eq!(now_us(), 0);
        record(KIND_TASK_EVAL, 1, 0, 5); // must not panic
    }

    #[test]
    fn install_record_drain() {
        let rec = Arc::new(Recorder::new(7));
        install(rec.clone());
        assert!(enabled());
        let t0 = now_us();
        record_since(KIND_TASK_EVAL, 42, t0);
        record_instant(KIND_FAILOVER, 3);
        uninstall();
        let trace = rec.drain(5);
        assert_eq!(trace.rank, 5);
        assert_eq!(trace.offset_us, 7);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].kind, KIND_TASK_EVAL);
        assert_eq!(trace.events[0].id, 42);
        assert!(trace.events[0].end_us >= trace.events[0].start_us);
        assert_eq!(trace.events[1].start_us, trace.events[1].end_us);
    }

    #[test]
    fn recorder_does_not_leak_across_threads() {
        let rec = Arc::new(Recorder::new(0));
        install(rec.clone());
        std::thread::spawn(|| {
            assert!(!enabled());
            record(KIND_TASK_EVAL, 1, 0, 1);
        })
        .join()
        .unwrap();
        uninstall();
        assert!(rec.drain(0).events.is_empty());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = LatencyStats::from_durations((1..=100).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        let one = LatencyStats::from_durations(vec![7]).unwrap();
        assert_eq!(
            (one.p50_us, one.p95_us, one.p99_us, one.max_us),
            (7, 7, 7, 7)
        );
        assert!(LatencyStats::from_durations(vec![]).is_none());
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let traces = vec![RankTrace {
            rank: 0,
            offset_us: 10,
            events: vec![
                TraceEvent {
                    kind: KIND_TASK_EVAL,
                    id: 1,
                    start_us: 5,
                    end_us: 9,
                },
                TraceEvent {
                    kind: KIND_FAILOVER,
                    id: 2,
                    start_us: 11,
                    end_us: 11,
                },
            ],
        }];
        let dir = std::env::temp_dir().join(format!("mpisim-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        write_chrome_trace(&path, &traces, &[String::from("rank 0 (worker)")]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"ts\":15")); // 5 + offset 10
        assert!(body.contains("\"dur\":4"));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("rank 0 (worker)"));
        assert!(body.trim_end().ends_with("]}"));
        // Balanced braces ⇒ structurally sound JSON for this writer.
        let opens = body.matches('{').count();
        let closes = body.matches('}').count();
        assert_eq!(opens, closes);
    }
}
