//! # mpisim — a simulated MPI substrate
//!
//! The Swift/T runtime reproduced by this workspace is, at run time, an MPI
//! program: every rank is an *engine*, an *ADLB server*, or a *worker*
//! (Wozniak et al., CLUSTER 2015, Fig. 2). This crate provides the
//! message-passing substrate those ranks communicate over.
//!
//! Instead of binding a real MPI implementation (the paper ran on Blue
//! Gene/Q and Cray XE6; no such machine backs this reproduction), ranks are
//! plain OS threads inside one process and messages travel through in-memory
//! mailboxes. The API mirrors the MPI point-to-point subset that ADLB
//! actually uses:
//!
//! * [`Comm::send`] / [`Comm::recv`] with integer **tags**,
//! * wildcard receives ([`Src::Any`], [`TagSel::Any`]),
//! * non-blocking probes ([`Comm::iprobe`], [`Comm::try_recv`]),
//! * collectives ([`Comm::barrier`], [`Comm::bcast`], [`Comm::gather`],
//!   [`Comm::reduce_sum_u64`], ...).
//!
//! The crucial MPI semantic preserved here is **non-overtaking delivery**:
//! two messages sent from the same source to the same destination with the
//! same tag are received in the order they were sent. ADLB's request/response
//! protocol depends on this.
//!
//! ```
//! use mpisim::{World, Src, TagSel};
//!
//! let results = World::run(4, |comm| {
//!     let right = (comm.rank() + 1) % comm.size();
//!     comm.send(right, 7, format!("hi from {}", comm.rank()).into_bytes());
//!     let msg = comm.recv(Src::Any, TagSel::Of(7));
//!     String::from_utf8(msg.data.to_vec()).unwrap()
//! });
//! assert_eq!(results.len(), 4);
//! ```

mod comm;
mod fault;
mod mailbox;
pub mod trace;
mod wire;
mod world;

pub use comm::{Comm, Message, Src, TagSel};
pub use fault::{FaultAction, FaultPlan, RankKilled};
pub use trace::{LatencyStats, RankTrace, TraceEvent};
pub use wire::{WireError, WireReader, WireWriter};
pub use world::{FaultyOutcome, World, WorldStats};

/// A rank identifier: `0..size`.
pub type Rank = usize;

/// A message tag. Tags at or above [`RESERVED_TAG_BASE`] are reserved for
/// the collective implementations in this crate.
pub type Tag = u32;

/// First tag reserved for internal collective traffic. User protocols must
/// stay below this value.
pub const RESERVED_TAG_BASE: Tag = u32::MAX - 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rank_ping_pong() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"ping".to_vec());
                let m = comm.recv(Src::Of(1), TagSel::Of(2));
                m.data.to_vec()
            } else {
                let m = comm.recv(Src::Of(0), TagSel::Of(1));
                assert_eq!(&m.data[..], b"ping");
                comm.send(0, 2, b"pong".to_vec());
                m.data.to_vec()
            }
        });
        assert_eq!(out[0], b"pong");
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.rank()
        });
        assert_eq!(out, vec![0]);
    }
}
