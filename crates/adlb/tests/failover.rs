//! Server-tier failover tests at the ADLB layer: with `replication = 2`,
//! killing one server mid-run must not lose or duplicate any task, and
//! the run must terminate cleanly with the survivor serving both shards.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use adlb::{serve_ext, AdlbClient, Layout, ServerConfig, WORK_TYPE_WORK};
use mpisim::{FaultPlan, World};

fn replicated_config() -> ServerConfig {
    ServerConfig {
        replication: 2,
        ..ServerConfig::default()
    }
}

/// 2 servers, 4 clients; kill one server after `kill_sends` of its sends.
/// Returns (tid → execution count, survivor failover count, whether the
/// kill actually fired — a late schedule point can land past the victim's
/// final `Bye`, in which case it exits normally and nothing fails over).
fn run_server_death(
    victim_server: usize,
    kill_sends: u64,
    total: u64,
) -> (HashMap<u64, u64>, u64, bool) {
    let layout = Layout::new(6, 2);
    let plan = FaultPlan::new().kill_after_sends(victim_server, kill_sends);
    let executed: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let outcome = World::run_faulty(6, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            return Some(serve_ext(comm, layout, replicated_config()).stats.failovers);
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            for tid in 0..total {
                // Mix of untargeted and targeted-at-a-consumer tasks so
                // both queues and the forward path are exercised.
                let target = if tid % 5 == 0 {
                    Some(1 + (tid as usize) % 3)
                } else {
                    None
                };
                client.put(
                    WORK_TYPE_WORK,
                    (tid % 3) as i32,
                    target,
                    tid.to_le_bytes().to_vec(),
                );
            }
            client.finish();
            return None;
        }
        while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
            let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
            *executed.lock().unwrap().entry(tid).or_insert(0) += 1;
            // Think-time so the kill lands while work is still in flight.
            std::thread::sleep(Duration::from_micros(300));
        }
        None
    });
    let fired = !outcome.killed.is_empty();
    if fired {
        assert_eq!(outcome.killed, vec![victim_server]);
    }
    let failovers: u64 = outcome.outputs.into_iter().flatten().flatten().sum();
    (executed.into_inner().unwrap(), failovers, fired)
}

#[test]
fn killing_the_second_server_loses_nothing_at_replication_2() {
    // Rank 5 is the non-master server; kill it mid-run at several points
    // in its send stream (early: barely past startup snapshots; later:
    // mid-delivery with leases and forwards in flight).
    for kill_sends in [4, 20, 60] {
        let (executed, failovers, fired) = run_server_death(5, kill_sends, 40);
        for tid in 0..40 {
            let n = executed.get(&tid).copied().unwrap_or(0);
            assert_eq!(
                n, 1,
                "kill_sends={kill_sends}: task {tid} executed {n} times"
            );
        }
        // At the late kill point the victim can die on or after its final
        // `Bye` — or finish before its 60th send so the kill never fires —
        // in which case nothing was stranded and no promotion is needed.
        if !fired {
            assert_eq!(
                failovers, 0,
                "kill_sends={kill_sends}: no kill, no promotion"
            );
        } else if kill_sends < 60 {
            assert_eq!(failovers, 1, "kill_sends={kill_sends}: survivor promoted");
        } else {
            assert!(
                failovers <= 1,
                "kill_sends={kill_sends}: at most one promotion"
            );
        }
    }
}

#[test]
fn killing_the_master_server_loses_nothing_at_replication_2() {
    // Rank 4 is the master (termination detection owner): its successor
    // must take over both the shard and the termination protocol.
    for kill_sends in [4, 20, 60] {
        let (executed, failovers, fired) = run_server_death(4, kill_sends, 40);
        for tid in 0..40 {
            let n = executed.get(&tid).copied().unwrap_or(0);
            assert_eq!(
                n, 1,
                "kill_sends={kill_sends}: task {tid} executed {n} times"
            );
        }
        if !fired {
            assert_eq!(
                failovers, 0,
                "kill_sends={kill_sends}: no kill, no promotion"
            );
        } else if kill_sends < 60 {
            assert_eq!(failovers, 1, "kill_sends={kill_sends}: survivor promoted");
        } else {
            assert!(
                failovers <= 1,
                "kill_sends={kill_sends}: at most one promotion"
            );
        }
    }
}

#[test]
fn data_store_shard_survives_its_servers_death() {
    // A datum created and stored on the victim's shard must be readable
    // after failover, and a subscription parked on it must still fire.
    let layout = Layout::new(4, 2);
    // Servers are ranks 2 and 3. Kill rank 3 after its traffic includes
    // the replicated create/store.
    let plan = FaultPlan::new().kill_after_sends(3, 12);
    let outcome = World::run_faulty(4, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve_ext(comm, layout, replicated_config());
            return None;
        }
        let mut c = AdlbClient::new(comm, layout);
        // Pick an id owned by server 3 (the victim).
        let id = (0..64u64)
            .find(|i| layout.data_owner(*i) == 3)
            .expect("an id owned by rank 3");
        if rank == 0 {
            c.create(id, 0).unwrap();
            c.store(id, b"replicated-value".to_vec()).unwrap();
            c.finish();
            return None;
        }
        // Rank 1: poll until the datum is closed (possibly across the
        // failover), then read it back.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !c.exists(id).unwrap_or(false) {
            assert!(std::time::Instant::now() < deadline, "datum never closed");
            std::thread::sleep(Duration::from_millis(1));
        }
        let v = c.retrieve(id).unwrap().expect("closed datum has a value");
        c.finish();
        Some(String::from_utf8(v.to_vec()).unwrap())
    });
    assert_eq!(outcome.killed, vec![3]);
    assert_eq!(
        outcome.outputs[1],
        Some(Some("replicated-value".to_string()))
    );
}

#[test]
fn replication_1_server_death_fails_cleanly_not_hangs() {
    // Same scenario as the failover tests but with replication disabled:
    // the run must still terminate (no hang), clients must get a NoMore
    // with a diagnosis, and nobody may panic.
    let layout = Layout::new(6, 2);
    // Kill early (6 sends: barely past the first deliveries) so the death
    // lands while work is still in flight, not during shutdown.
    let plan = FaultPlan::new().kill_after_sends(5, 6);
    let outcome = World::run_faulty(6, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve_ext(comm, layout, ServerConfig::default());
            return Vec::new();
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            for tid in 0..80u64 {
                client.put(WORK_TYPE_WORK, 0, None, tid.to_le_bytes().to_vec());
            }
            client.finish();
            return client.quarantine_reports().to_vec();
        }
        while let Some(_t) = client.get(&[WORK_TYPE_WORK]) {
            std::thread::sleep(Duration::from_micros(300));
        }
        client.quarantine_reports().to_vec()
    });
    assert_eq!(outcome.killed, vec![5]);
    // At least one surviving client must have been told why the run was
    // cut short.
    let all_reports: Vec<String> = outcome.outputs.into_iter().flatten().flatten().collect();
    assert!(
        all_reports.iter().any(|r| r.contains("unrecoverable")),
        "no client saw the shard-loss diagnosis: {all_reports:?}"
    );
}

#[test]
fn output_streams_survive_a_server_death() {
    // Clients stream output through the victim server; after failover the
    // survivor must hold the replicated streams.
    let layout = Layout::new(4, 2);
    let plan = FaultPlan::new().kill_after_sends(3, 14);
    let outcome = World::run_faulty(4, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            let o = serve_ext(comm, layout, replicated_config());
            return o
                .streams
                .into_iter()
                .map(|(r, _t, s)| format!("{r}:{s}"))
                .collect::<Vec<_>>();
        }
        let mut c = AdlbClient::new(comm, layout);
        // Rank 1 is a client of server 3 (the victim): its stream must
        // survive on the successor.
        c.send_output(&format!("out-{rank};"));
        std::thread::sleep(Duration::from_millis(30));
        c.send_output(&format!("more-{rank};"));
        c.finish();
        Vec::new()
    });
    assert_eq!(outcome.killed, vec![3]);
    let survivor_streams: Vec<String> = outcome.outputs.into_iter().flatten().flatten().collect();
    assert!(
        survivor_streams.iter().any(|s| s.contains("out-1;")),
        "rank 1's early output lost: {survivor_streams:?}"
    );
}

mod re_replication {
    //! Post-failover re-replication: after a survivor promotes a dead
    //! server's shard, the recomputed ring successors receive streamed
    //! replica state in bounded chunks, restoring the replication factor
    //! mid-run — so a *second* server death (after the sync completes) is
    //! also survivable at `replication = 2`.

    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Duration;

    use adlb::{serve_ext, AdlbClient, Layout, ServerConfig, ServerStats, WORK_TYPE_WORK};
    use mpisim::{FaultPlan, World};

    /// 3 servers (ranks 6..=8), 1 submitter, 5 workers. Kill `kills` as
    /// (victim rank, kill_after_sends). Returns (tid → execution count,
    /// summed survivor stats, every client's quarantine reports, killed).
    #[allow(clippy::type_complexity)]
    fn run_kills(
        kills: &[(usize, u64)],
        total: u64,
        think: Duration,
        config: ServerConfig,
    ) -> (HashMap<u64, u64>, ServerStats, Vec<String>, Vec<usize>) {
        let layout = Layout::new(9, 3);
        let mut plan = FaultPlan::new();
        for &(victim, sends) in kills {
            plan = plan.kill_after_sends(victim, sends);
        }
        let executed: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
        let outcome = World::run_faulty(9, &plan, |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                let o = serve_ext(comm, layout, config.clone());
                return (Some(o.stats), Vec::new());
            }
            let mut client = AdlbClient::new(comm, layout);
            if rank == 0 {
                for tid in 0..total {
                    let target = if tid % 7 == 0 {
                        Some(1 + (tid as usize) % 5)
                    } else {
                        None
                    };
                    client.put(
                        WORK_TYPE_WORK,
                        (tid % 3) as i32,
                        target,
                        tid.to_le_bytes().to_vec(),
                    );
                }
                client.finish();
                return (None, client.quarantine_reports().to_vec());
            }
            while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                *executed.lock().unwrap().entry(tid).or_insert(0) += 1;
                std::thread::sleep(think);
            }
            (None, client.quarantine_reports().to_vec())
        });
        let mut stats = ServerStats::default();
        let mut reports = Vec::new();
        for o in outcome.outputs.into_iter().flatten() {
            if let Some(s) = o.0 {
                stats.failovers += s.failovers;
                stats.repl_syncs += s.repl_syncs;
                stats.repl_sync_bytes += s.repl_sync_bytes;
                stats.r_restore_micros += s.r_restore_micros;
                stats.tasks_requeued += s.tasks_requeued;
            }
            reports.extend(o.1);
        }
        (
            executed.into_inner().unwrap(),
            stats,
            reports,
            outcome.killed,
        )
    }

    #[test]
    fn second_server_death_survives_once_r_is_restored() {
        // Kill rank 7 almost immediately; rank 8 much later, past the
        // point where 8 promoted 7's shard and the post-promotion sync to
        // the recomputed successors completed. With R restored, the run
        // must survive BOTH deaths: every task exactly once and a
        // measured time-to-R-restored. (The first promotion's failover
        // counter dies with rank 8, so the surviving tier reports the
        // second promotion only.)
        let (executed, stats, reports, killed) = run_kills(
            &[(7, 4), (8, 200)],
            300,
            Duration::from_micros(800),
            ServerConfig {
                replication: 2,
                ..ServerConfig::default()
            },
        );
        assert_eq!(killed, vec![7, 8], "both kill points must fire");
        assert!(
            reports.is_empty(),
            "no shard may be lost with re-replication on: {reports:?}"
        );
        for tid in 0..300 {
            let n = executed.get(&tid).copied().unwrap_or(0);
            assert_eq!(n, 1, "task {tid} executed {n} times");
        }
        assert!(
            stats.failovers >= 1,
            "the survivor promoted the twice-failed-over shard"
        );
        assert!(stats.repl_syncs > 0, "chunked syncs completed");
        assert!(stats.repl_sync_bytes > 0);
        assert!(
            stats.r_restore_micros > 0,
            "time-to-R-restored was measured"
        );
    }

    #[test]
    fn tiny_chunks_stream_the_whole_replica() {
        // sync_chunk = 64 bytes forces every post-promotion sync through
        // many ReplSync/SyncAck round trips interleaved with live traffic;
        // fat payloads make the ledgers span several chunks. Correctness
        // must not depend on the chunk size.
        let payload = vec![0xabu8; 256];
        let layout = Layout::new(9, 3);
        let plan = FaultPlan::new().kill_after_sends(7, 10);
        let executed: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
        let config = ServerConfig {
            replication: 2,
            sync_chunk: 64,
            ..ServerConfig::default()
        };
        let outcome = World::run_faulty(9, &plan, |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                return Some(serve_ext(comm, layout, config.clone()).stats);
            }
            let mut client = AdlbClient::new(comm, layout);
            if rank == 0 {
                for tid in 0..120u64 {
                    let mut body = tid.to_le_bytes().to_vec();
                    body.extend_from_slice(&payload);
                    client.put(WORK_TYPE_WORK, 0, None, body);
                }
                client.finish();
                return None;
            }
            while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                *executed.lock().unwrap().entry(tid).or_insert(0) += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            None
        });
        assert_eq!(outcome.killed, vec![7]);
        for tid in 0..120 {
            let n = executed.lock().unwrap().get(&tid).copied().unwrap_or(0);
            assert_eq!(n, 1, "task {tid} executed {n} times");
        }
        let mut syncs = 0;
        let mut bytes = 0;
        let mut restore = 0;
        for s in outcome.outputs.into_iter().flatten().flatten() {
            syncs += s.repl_syncs;
            bytes += s.repl_sync_bytes;
            restore += s.r_restore_micros;
        }
        assert!(syncs > 0, "syncs completed");
        assert!(
            bytes > 3 * 64,
            "a fat ledger must cross several 64-byte chunks (got {bytes})"
        );
        assert!(restore > 0, "death-triggered sync was timed");
    }

    #[test]
    fn without_re_replication_a_second_death_aborts_cleanly() {
        // The ablation: same double-kill schedule, re-replication off. R
        // stays degraded after the first failover, so the second death
        // may lose a shard — the run must then terminate with a
        // diagnosis, not hang, and must never duplicate work on
        // survivors.
        let (executed, stats, reports, killed) = run_kills(
            &[(7, 4), (8, 200)],
            300,
            Duration::from_micros(800),
            ServerConfig {
                replication: 2,
                re_replicate: false,
                ..ServerConfig::default()
            },
        );
        assert_eq!(killed, vec![7, 8], "both kill points must fire");
        assert_eq!(stats.repl_syncs, 0, "no chunked syncs when disabled");
        for (tid, n) in &executed {
            assert!(*n <= 1, "task {tid} executed {n} times");
        }
        // Either the legacy write-through path happened to keep a full
        // copy alive (completion) or the shard was declared lost — both
        // are clean endings; silence (a hang) is the only failure.
        if !reports.is_empty() {
            assert!(
                reports.iter().any(|r| r.contains("unrecoverable")),
                "abort must carry the shard-loss diagnosis: {reports:?}"
            );
        } else {
            for tid in 0..300 {
                let n = executed.get(&tid).copied().unwrap_or(0);
                assert_eq!(n, 1, "completed run lost task {tid}");
            }
        }
    }
}

mod lease_races {
    //! Regression for the lease-expiry / dead-client race: a client that
    //! dies holding a lease just as the lease-timeout sweep revokes it
    //! used to trip `expect("expired lease")` — the dead-client sweep had
    //! already removed the rank's lease table. The server must survive
    //! the interleaving in either order.

    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Duration;

    use adlb::{serve, AdlbClient, Layout, RetryPolicy, ServerConfig, WORK_TYPE_WORK};
    use mpisim::{FaultPlan, World};

    #[test]
    fn lease_expiry_racing_dead_client_sweep_does_not_panic() {
        // Rank 1 dies right after receiving its first task, holding the
        // lease. A 1 ms lease timeout expires it around the same moment
        // the liveness sweep notices the death (~10 ms) — sweep order is
        // timing-dependent, so run several kill points. A panic on any
        // server rank fails the World::run_faulty unwind; beyond that,
        // every task must still run exactly once on the survivor.
        for kill_recvs in [1u64, 2, 3] {
            let layout = Layout::new(4, 1);
            let plan = FaultPlan::new().kill_after_recvs(1, kill_recvs);
            let executed: Mutex<HashMap<u64, Vec<usize>>> = Mutex::new(HashMap::new());
            let config = ServerConfig {
                retry: RetryPolicy {
                    lease_timeout: Some(Duration::from_millis(1)),
                    max_retries: 8,
                    ..RetryPolicy::default()
                },
                ..ServerConfig::default()
            };
            let outcome = World::run_faulty(4, &plan, |comm| {
                let rank = comm.rank();
                if layout.is_server(rank) {
                    return Some(serve(comm, layout, config.clone()));
                }
                let mut client = AdlbClient::new(comm, layout);
                if rank == 0 {
                    for tid in 0..12u64 {
                        client.put(WORK_TYPE_WORK, 0, None, tid.to_le_bytes().to_vec());
                    }
                    client.finish();
                    return None;
                }
                // The survivor starts late so the victim's Get is served
                // first and the victim dies with the lease outstanding.
                if rank == 2 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                    let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                    executed.lock().unwrap().entry(tid).or_default().push(rank);
                }
                None
            });
            assert_eq!(outcome.killed, vec![1], "kill_recvs={kill_recvs}");
            let executed = executed.into_inner().unwrap();
            for tid in 0..12u64 {
                let execs = executed.get(&tid).cloned().unwrap_or_default();
                // Never lost — and strict exactly-once on the survivor
                // (the victim may have run a task and acked it before
                // dying, or run it unacked so it legitimately reruns).
                assert!(
                    !execs.is_empty(),
                    "kill_recvs={kill_recvs}: task {tid} was lost"
                );
                let by_survivor = execs.iter().filter(|&&r| r == 2).count();
                assert!(
                    by_survivor <= 1,
                    "kill_recvs={kill_recvs}: task {tid} ran {execs:?}"
                );
            }
            let stats = outcome
                .outputs
                .into_iter()
                .flatten()
                .flatten()
                .next()
                .expect("server stats");
            assert_eq!(stats.ranks_failed, 1);
        }
    }
}
