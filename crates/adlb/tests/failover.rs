//! Server-tier failover tests at the ADLB layer: with `replication = 2`,
//! killing one server mid-run must not lose or duplicate any task, and
//! the run must terminate cleanly with the survivor serving both shards.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use adlb::{serve_ext, AdlbClient, Layout, ServerConfig, WORK_TYPE_WORK};
use mpisim::{FaultPlan, World};

fn replicated_config() -> ServerConfig {
    ServerConfig {
        replication: 2,
        ..ServerConfig::default()
    }
}

/// 2 servers, 4 clients; kill one server after `kill_sends` of its sends.
/// Returns (tid → execution count, survivor failover count, whether the
/// kill actually fired — a late schedule point can land past the victim's
/// final `Bye`, in which case it exits normally and nothing fails over).
fn run_server_death(
    victim_server: usize,
    kill_sends: u64,
    total: u64,
) -> (HashMap<u64, u64>, u64, bool) {
    let layout = Layout::new(6, 2);
    let plan = FaultPlan::new().kill_after_sends(victim_server, kill_sends);
    let executed: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let outcome = World::run_faulty(6, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            return Some(serve_ext(comm, layout, replicated_config()).stats.failovers);
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            for tid in 0..total {
                // Mix of untargeted and targeted-at-a-consumer tasks so
                // both queues and the forward path are exercised.
                let target = if tid % 5 == 0 {
                    Some(1 + (tid as usize) % 3)
                } else {
                    None
                };
                client.put(WORK_TYPE_WORK, (tid % 3) as i32, target, tid.to_le_bytes().to_vec());
            }
            client.finish();
            return None;
        }
        while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
            let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
            *executed.lock().unwrap().entry(tid).or_insert(0) += 1;
            // Think-time so the kill lands while work is still in flight.
            std::thread::sleep(Duration::from_micros(300));
        }
        None
    });
    let fired = !outcome.killed.is_empty();
    if fired {
        assert_eq!(outcome.killed, vec![victim_server]);
    }
    let failovers: u64 = outcome.outputs.into_iter().flatten().flatten().sum();
    (executed.into_inner().unwrap(), failovers, fired)
}

#[test]
fn killing_the_second_server_loses_nothing_at_replication_2() {
    // Rank 5 is the non-master server; kill it mid-run at several points
    // in its send stream (early: barely past startup snapshots; later:
    // mid-delivery with leases and forwards in flight).
    for kill_sends in [4, 20, 60] {
        let (executed, failovers, fired) = run_server_death(5, kill_sends, 40);
        for tid in 0..40 {
            let n = executed.get(&tid).copied().unwrap_or(0);
            assert_eq!(
                n, 1,
                "kill_sends={kill_sends}: task {tid} executed {n} times"
            );
        }
        // At the late kill point the victim can die on or after its final
        // `Bye` — or finish before its 60th send so the kill never fires —
        // in which case nothing was stranded and no promotion is needed.
        if !fired {
            assert_eq!(failovers, 0, "kill_sends={kill_sends}: no kill, no promotion");
        } else if kill_sends < 60 {
            assert_eq!(failovers, 1, "kill_sends={kill_sends}: survivor promoted");
        } else {
            assert!(failovers <= 1, "kill_sends={kill_sends}: at most one promotion");
        }
    }
}

#[test]
fn killing_the_master_server_loses_nothing_at_replication_2() {
    // Rank 4 is the master (termination detection owner): its successor
    // must take over both the shard and the termination protocol.
    for kill_sends in [4, 20, 60] {
        let (executed, failovers, fired) = run_server_death(4, kill_sends, 40);
        for tid in 0..40 {
            let n = executed.get(&tid).copied().unwrap_or(0);
            assert_eq!(
                n, 1,
                "kill_sends={kill_sends}: task {tid} executed {n} times"
            );
        }
        if !fired {
            assert_eq!(failovers, 0, "kill_sends={kill_sends}: no kill, no promotion");
        } else if kill_sends < 60 {
            assert_eq!(failovers, 1, "kill_sends={kill_sends}: survivor promoted");
        } else {
            assert!(failovers <= 1, "kill_sends={kill_sends}: at most one promotion");
        }
    }
}

#[test]
fn data_store_shard_survives_its_servers_death() {
    // A datum created and stored on the victim's shard must be readable
    // after failover, and a subscription parked on it must still fire.
    let layout = Layout::new(4, 2);
    // Servers are ranks 2 and 3. Kill rank 3 after its traffic includes
    // the replicated create/store.
    let plan = FaultPlan::new().kill_after_sends(3, 12);
    let outcome = World::run_faulty(4, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve_ext(comm, layout, replicated_config());
            return None;
        }
        let mut c = AdlbClient::new(comm, layout);
        // Pick an id owned by server 3 (the victim).
        let id = (0..64u64)
            .find(|i| layout.data_owner(*i) == 3)
            .expect("an id owned by rank 3");
        if rank == 0 {
            c.create(id, 0).unwrap();
            c.store(id, b"replicated-value".to_vec()).unwrap();
            c.finish();
            return None;
        }
        // Rank 1: poll until the datum is closed (possibly across the
        // failover), then read it back.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !c.exists(id).unwrap_or(false) {
            assert!(std::time::Instant::now() < deadline, "datum never closed");
            std::thread::sleep(Duration::from_millis(1));
        }
        let v = c.retrieve(id).unwrap().expect("closed datum has a value");
        c.finish();
        Some(String::from_utf8(v.to_vec()).unwrap())
    });
    assert_eq!(outcome.killed, vec![3]);
    assert_eq!(
        outcome.outputs[1],
        Some(Some("replicated-value".to_string()))
    );
}

#[test]
fn replication_1_server_death_fails_cleanly_not_hangs() {
    // Same scenario as the failover tests but with replication disabled:
    // the run must still terminate (no hang), clients must get a NoMore
    // with a diagnosis, and nobody may panic.
    let layout = Layout::new(6, 2);
    // Kill early (6 sends: barely past the first deliveries) so the death
    // lands while work is still in flight, not during shutdown.
    let plan = FaultPlan::new().kill_after_sends(5, 6);
    let outcome = World::run_faulty(6, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve_ext(comm, layout, ServerConfig::default());
            return Vec::new();
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            for tid in 0..80u64 {
                client.put(WORK_TYPE_WORK, 0, None, tid.to_le_bytes().to_vec());
            }
            client.finish();
            return client.quarantine_reports().to_vec();
        }
        while let Some(_t) = client.get(&[WORK_TYPE_WORK]) {
            std::thread::sleep(Duration::from_micros(300));
        }
        client.quarantine_reports().to_vec()
    });
    assert_eq!(outcome.killed, vec![5]);
    // At least one surviving client must have been told why the run was
    // cut short.
    let all_reports: Vec<String> = outcome.outputs.into_iter().flatten().flatten().collect();
    assert!(
        all_reports.iter().any(|r| r.contains("unrecoverable")),
        "no client saw the shard-loss diagnosis: {all_reports:?}"
    );
}

#[test]
fn output_streams_survive_a_server_death() {
    // Clients stream output through the victim server; after failover the
    // survivor must hold the replicated streams.
    let layout = Layout::new(4, 2);
    let plan = FaultPlan::new().kill_after_sends(3, 14);
    let outcome = World::run_faulty(4, &plan, |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            let o = serve_ext(comm, layout, replicated_config());
            return o
                .streams
                .into_iter()
                .map(|(r, s)| format!("{r}:{s}"))
                .collect::<Vec<_>>();
        }
        let mut c = AdlbClient::new(comm, layout);
        // Rank 1 is a client of server 3 (the victim): its stream must
        // survive on the successor.
        c.send_output(&format!("out-{rank};"));
        std::thread::sleep(Duration::from_millis(30));
        c.send_output(&format!("more-{rank};"));
        c.finish();
        Vec::new()
    });
    assert_eq!(outcome.killed, vec![3]);
    let survivor_streams: Vec<String> = outcome.outputs.into_iter().flatten().flatten().collect();
    assert!(
        survivor_streams.iter().any(|s| s.contains("out-1;")),
        "rank 1's early output lost: {survivor_streams:?}"
    );
}
