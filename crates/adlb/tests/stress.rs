//! Stress/invariant tests for ADLB: across random machine shapes, task
//! mixes, priorities, and targets, every task is delivered exactly once
//! and targeted tasks land only on their targets.

use std::collections::HashSet;

use adlb::{serve, AdlbClient, Layout, ServerConfig, WORK_TYPE_CONTROL, WORK_TYPE_WORK};
use mpisim::World;

/// Simple deterministic PRNG (so failures are reproducible from the seed).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One randomized scenario: `submitters` clients put a random task mix;
/// the other clients consume until shutdown. Returns (delivered ids per
/// consumer rank, targeted assignments).
fn run_scenario(seed: u64) {
    let mut rng = Rng(seed | 1);
    let servers = 1 + rng.below(3) as usize;
    let consumers = 2 + rng.below(5) as usize;
    let submitters = 1 + rng.below(2) as usize;
    let clients = consumers + submitters;
    let size = clients + servers;
    let layout = Layout::new(size, servers);
    let tasks_per_submitter = 30 + rng.below(40) as usize;

    // Pre-generate the task plan so every rank agrees on expectations.
    let mut plan: Vec<(usize, u32, i32, Option<usize>, u64)> = Vec::new(); // (submitter, wt, prio, target, id)
    let mut id = 0u64;
    for s in 0..submitters {
        for _ in 0..tasks_per_submitter {
            let wt = if rng.below(4) == 0 {
                WORK_TYPE_CONTROL
            } else {
                WORK_TYPE_WORK
            };
            let prio = rng.below(10) as i32 - 5;
            // ~25% targeted at a random consumer.
            let target = if rng.below(4) == 0 {
                Some(submitters + rng.below(consumers as u64) as usize)
            } else {
                None
            };
            plan.push((s, wt, prio, target, id));
            id += 1;
        }
    }
    let total = plan.len();
    let plan_ref = &plan;

    let out = World::run(size, move |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve(comm, layout, ServerConfig::default());
            return Vec::new();
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank < submitters {
            for (s, wt, prio, target, tid) in plan_ref.iter() {
                if *s == rank {
                    client.put(*wt, *prio, *target, tid.to_le_bytes().to_vec());
                }
            }
            client.finish();
            return Vec::new();
        }
        // Consumer: accept both work types, record (id) pairs.
        let mut got = Vec::new();
        while let Some(t) = client.get(&[WORK_TYPE_WORK, WORK_TYPE_CONTROL]) {
            let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
            got.push(tid);
        }
        got
    });

    // Exactly-once delivery.
    let mut seen = HashSet::new();
    let mut count = 0;
    for (rank, got) in out.iter().enumerate() {
        for tid in got {
            assert!(
                seen.insert(*tid),
                "seed {seed}: task {tid} delivered twice (second at rank {rank})"
            );
            count += 1;
            // Targeted tasks land on their target.
            let (_, _, _, target, _) = plan_ref[*tid as usize];
            if let Some(t) = target {
                assert_eq!(
                    rank, t,
                    "seed {seed}: targeted task {tid} ran on {rank}, wanted {t}"
                );
            }
        }
    }
    assert_eq!(count, total, "seed {seed}: task count mismatch");
}

#[test]
fn randomized_delivery_exactly_once() {
    for seed in 1..=12u64 {
        run_scenario(seed * 7919);
    }
}

mod batch_fault_interaction {
    //! Batching × fault tolerance: a client that dies holding a prefetched
    //! batch must have every undone task of that batch requeued exactly
    //! once, and an acknowledged batch must never be requeued.

    use std::collections::HashMap;
    use std::sync::Mutex;

    use adlb::{serve, AdlbClient, Layout, ServerConfig, WORK_TYPE_WORK};
    use mpisim::{FaultPlan, World};

    const N_TASKS: u64 = 20;

    /// Ranks: 0 submitter, 1 victim, 2 survivor, 3 server. The submitter
    /// queues all tasks before the victim's first `Get` (so the server
    /// leases it a full prefetch batch of 8); `kill_sends` scripts the
    /// victim's death point in its send stream. Returns (tid → executing
    /// ranks, server stats).
    fn run_batch_death(kill_sends: u64) -> (HashMap<u64, Vec<usize>>, adlb::ServerStats) {
        let layout = Layout::new(4, 1);
        let plan = FaultPlan::new().kill_after_sends(1, kill_sends);
        let executed: Mutex<HashMap<u64, Vec<usize>>> = Mutex::new(HashMap::new());
        let outcome = World::run_faulty(4, &plan, |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                return Some(serve(comm, layout, ServerConfig::default()));
            }
            let mut client = AdlbClient::new(comm, layout);
            if rank == 0 {
                for tid in 0..N_TASKS {
                    client.put(WORK_TYPE_WORK, 0, None, tid.to_le_bytes().to_vec());
                }
                client.finish();
                return None;
            }
            // Victim waits for the queue to fill; the survivor starts
            // later still, so the victim's Get is the first one served.
            std::thread::sleep(std::time::Duration::from_millis(if rank == 1 {
                40
            } else {
                120
            }));
            while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                executed.lock().unwrap().entry(tid).or_default().push(rank);
            }
            None
        });
        assert_eq!(outcome.killed, vec![1], "only the victim dies");
        let stats = outcome
            .outputs
            .into_iter()
            .flatten()
            .flatten()
            .next()
            .expect("server stats");
        (executed.into_inner().unwrap(), stats)
    }

    #[test]
    fn dead_client_holding_prefetched_batch_requeues_every_task_once() {
        // Send #1 is the victim's Get: it dies with the whole DeliverBatch
        // of 8 undelivered, having executed nothing. Every task must run
        // exactly once, all on the survivor.
        let (executed, stats) = run_batch_death(1);
        for tid in 0..N_TASKS {
            let ranks = executed.get(&tid).cloned().unwrap_or_default();
            assert_eq!(ranks, vec![2], "task {tid} ran {ranks:?}, want once on 2");
        }
        assert_eq!(stats.ranks_failed, 1);
        assert_eq!(
            stats.tasks_requeued, 8,
            "the full prefetched batch requeues, each task once"
        );
        assert!(stats.tasks_prefetched > 0, "batching was in play");
    }

    #[test]
    fn acked_batch_is_never_requeued_when_holder_dies() {
        // Send #1 is the Get; the victim then drains its whole batch of 8
        // locally and send #2 is the TaskDoneBatch acknowledging all of
        // them — it dies right after. The acks land before death
        // detection (per-pair FIFO), so nothing requeues and the
        // remaining 12 tasks run exactly once on the survivor.
        let (executed, stats) = run_batch_death(2);
        let mut victim_ran = 0;
        for tid in 0..N_TASKS {
            let ranks = executed.get(&tid).cloned().unwrap_or_default();
            assert_eq!(
                ranks.len(),
                1,
                "task {tid} ran {ranks:?}, want exactly once"
            );
            if ranks == [1] {
                victim_ran += 1;
            }
        }
        assert_eq!(victim_ran, 8, "victim drained its full prefetched batch");
        assert_eq!(stats.ranks_failed, 1);
        assert_eq!(
            stats.tasks_requeued, 0,
            "an acknowledged batch must not rerun"
        );
    }
}

mod fault_properties {
    //! Property: under random death schedules — consumers AND (when the
    //! machine has a replica to promote) one server — no task is lost,
    //! and no surviving rank ever executes a task twice. A task may run
    //! twice only when its *first* execution was on a rank that died.
    //!
    //! Why exactly-once holds for survivors: a consumer's protocol is a
    //! strict alternation of sends (TaskDone/Get) and receives
    //! (DeliverTask), and fault kills only fire at those message
    //! boundaries. A task's execution (here: recording its id) happens
    //! strictly between the receive that delivered it and the TaskDone
    //! send that acknowledges it, so a kill either lands before execution
    //! (server requeues the leased task; runs elsewhere exactly once) or
    //! after the ack (server releases the lease; never reruns it). A
    //! server death preserves this for live clients because every
    //! queue/lease/seq mutation is replicated to the ring successor
    //! *before* the response leaves, and retried requests are deduplicated
    //! by sequence number against the promoted replica.
    //!
    //! Why strict exactly-once is *unachievable* when an executor and its
    //! home server die together: the executor can run a task, flush the
    //! TaskDone ack, and die; if the home server then dies with that ack
    //! still unprocessed in its mailbox (a mailbox dies with its process),
    //! and the executor is dead too, no surviving witness of the execution
    //! exists. Any system must choose between re-running the task
    //! (at-least-once) or risking its loss; we re-run. The duplicate is
    //! confined to executions by ranks that died — survivors stay strict.

    use std::collections::HashMap;
    use std::sync::Mutex;

    use adlb::{
        serve, AdlbClient, ClientConfig, Layout, RetryPolicy, ServerConfig, WORK_TYPE_WORK,
    };
    use mpisim::{FaultPlan, World};
    use proptest::prelude::*;

    /// One death-schedule scenario. `kills` pairs a consumer index with a
    /// message count; the consumer dies at that point in its protocol.
    /// `prefetch` sets the consumers' batch depth (1 = the unbatched PR 1
    /// protocol) — exactly-once must hold at every depth, because a death
    /// mid-batch requeues the whole remaining lease deque.
    fn run_deaths(
        servers: usize,
        consumers: usize,
        total_tasks: usize,
        prefetch: u32,
        kills: &[(usize, u64, bool)], // (consumer idx, count, kill-on-send?)
        server_kill: Option<(usize, u64, bool)>, // (server idx, count, kill-on-send?)
    ) -> Result<(), TestCaseError> {
        let clients = consumers + 1; // rank 0 submits
        let size = clients + servers;
        let layout = Layout::new(size, servers);

        // Keep at least one consumer alive or the queue can never drain.
        let mut plan = FaultPlan::new();
        let mut victims = Vec::new();
        for &(idx, n, on_send) in kills {
            let victim = 1 + idx % (consumers - 1); // last consumer survives
            if victims.contains(&victim) {
                continue;
            }
            victims.push(victim);
            plan = if on_send {
                plan.kill_after_sends(victim, n + 1)
            } else {
                plan.kill_after_recvs(victim, n)
            };
        }
        // At most one server victim, and only when a replica exists to
        // promote (replication = 2 needs servers >= 2 to survive it).
        if let Some((sidx, n, on_send)) = server_kill {
            if servers >= 2 {
                let victim = clients + sidx % servers;
                victims.push(victim);
                plan = if on_send {
                    plan.kill_after_sends(victim, n)
                } else {
                    plan.kill_after_recvs(victim, n)
                };
            }
        }

        // Every victim dies at most once, so a task can accumulate at most
        // `victims.len()` failed attempts; a roomy budget keeps the
        // quarantine path out of this test.
        let config = ServerConfig {
            retry: RetryPolicy {
                max_retries: 16,
                ..RetryPolicy::default()
            },
            replication: if servers > 1 { 2 } else { 1 },
            ..ServerConfig::default()
        };

        let executed: Mutex<HashMap<u64, Vec<usize>>> = Mutex::new(HashMap::new());
        let outcome = World::run_faulty(size, &plan, |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                serve(comm, layout, config.clone());
                return;
            }
            let mut client = AdlbClient::with_config(
                comm,
                layout,
                ClientConfig {
                    prefetch,
                    ..ClientConfig::default()
                },
            );
            if rank == 0 {
                for tid in 0..total_tasks as u64 {
                    // ~1/4 targeted at some consumer (possibly a victim).
                    let target = if tid % 4 == 0 {
                        Some(1 + (tid as usize * 7) % consumers)
                    } else {
                        None
                    };
                    client.put(
                        WORK_TYPE_WORK,
                        (tid % 5) as i32,
                        target,
                        tid.to_le_bytes().to_vec(),
                    );
                }
                client.finish();
                return;
            }
            while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                // "Execution": recorded between delivery and the ack that
                // the next get() piggybacks.
                executed.lock().unwrap().entry(tid).or_default().push(rank);
            }
        });

        // A schedule point past the victim's last message never fires;
        // whoever did die must be a scheduled victim.
        for k in &outcome.killed {
            prop_assert!(victims.contains(k), "unexpected dead rank {}", k);
        }
        let a_server_died = outcome.killed.iter().any(|&k| k >= clients);
        let executed = executed.into_inner().unwrap();
        for tid in 0..total_tasks as u64 {
            let execs = executed.get(&tid).cloned().unwrap_or_default();
            // Never lost.
            prop_assert!(!execs.is_empty(), "task {} was never executed", tid);
            // Exactly-once on survivors: at most one execution by a rank
            // that finished the run alive.
            let by_survivors = execs.iter().filter(|r| !outcome.killed.contains(r)).count();
            prop_assert!(
                by_survivors <= 1,
                "task {} executed {} times by survivors ({:?})",
                tid,
                by_survivors,
                execs
            );
            // With no server death the home server witnesses every ack
            // before it detects the client's death, so even executions by
            // dying clients are never repeated.
            if !a_server_died {
                prop_assert_eq!(
                    execs.len(),
                    1,
                    "task {} executed {:?} with all servers alive",
                    tid,
                    &execs
                );
            }
        }
        Ok(())
    }

    /// Regression: a consumer death combined with a master-server death
    /// (found by the property below at a higher case count). The dying
    /// consumer's final ack can perish in the dying master's mailbox with
    /// no surviving witness, so that one task may legitimately run again
    /// elsewhere — but nothing may be lost and survivors stay strict.
    #[test]
    fn consumer_and_master_server_death_loses_nothing() {
        for _ in 0..8 {
            run_deaths(
                2,
                5,
                47,
                6,
                &[(3, 2, false), (7, 23, false)],
                Some((0, 19, false)),
            )
            .unwrap();
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn no_task_lost_or_duplicated_under_rank_death(
            servers in 1usize..3,
            consumers in 2usize..6,
            total in 20usize..60,
            prefetch in 1u32..12,
            kills in proptest::collection::vec(
                (0usize..8, 1u64..25, any::<bool>()),
                1..3,
            ),
            server_kill in proptest::option::of((0usize..4, 2u64..40, any::<bool>())),
        ) {
            run_deaths(servers, consumers, total, prefetch, &kills, server_kill)?;
        }
    }
}

#[test]
fn burst_submission_with_slow_consumers() {
    // One submitter floods; consumers inject think-time so queues build
    // and stealing has surplus to move.
    let layout = Layout::new(7, 2);
    let n = 400u64;
    let out = World::run(7, move |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve(comm, layout, ServerConfig::default());
            return 0u64;
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            for i in 0..n {
                client.put(
                    WORK_TYPE_WORK,
                    (i % 7) as i32,
                    None,
                    i.to_le_bytes().to_vec(),
                );
            }
            client.finish();
            return 0;
        }
        let mut sum = 0u64;
        while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
            sum += u64::from_le_bytes(t.payload[..8].try_into().unwrap());
            if sum.is_multiple_of(13) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        sum
    });
    let total: u64 = out.iter().sum();
    assert_eq!(total, (0..n).sum::<u64>());
}

#[test]
fn priorities_respected_within_prefilled_queue() {
    // Fill the queue before any consumer asks; then a single consumer
    // must see priorities in non-increasing order.
    let layout = Layout::new(3, 1);
    let out = World::run(3, move |comm| {
        let rank = comm.rank();
        if layout.is_server(rank) {
            serve(comm, layout, ServerConfig::default());
            return Vec::new();
        }
        let mut client = AdlbClient::new(comm, layout);
        if rank == 0 {
            let mut rng = Rng(42);
            for _ in 0..60 {
                let prio = rng.below(100) as i32;
                client.put(WORK_TYPE_WORK, prio, Some(1), prio.to_le_bytes().to_vec());
            }
            client.finish();
            return Vec::new();
        }
        // Let the queue fill completely first.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let mut prios = Vec::new();
        while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
            prios.push(i32::from_le_bytes(t.payload[..4].try_into().unwrap()));
        }
        prios
    });
    let prios = &out[1];
    assert_eq!(prios.len(), 60);
    for w in prios.windows(2) {
        assert!(w[0] >= w[1], "priority inversion: {prios:?}");
    }
}

mod sequential_server_deaths {
    //! Property: TWO server deaths in sequence, separated by a
    //! configurable gap in the second victim's send stream. When the gap
    //! exceeds the post-failover re-replication time the run must
    //! complete with every task executed exactly once; when the second
    //! death lands before R is restored the shard may be unrecoverable —
    //! then the run must abort with a diagnosis delivered to the
    //! surviving clients. Either ending is clean; the property a hang
    //! would violate is simply that `World::run_faulty` returns at all.

    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::time::Duration;

    use adlb::{serve_ext, AdlbClient, Layout, ServerConfig, WORK_TYPE_WORK};
    use mpisim::{FaultPlan, World};
    use proptest::prelude::*;

    fn run_two_deaths(first_sends: u64, gap_sends: u64) -> Result<(), TestCaseError> {
        // 3 servers (ranks 6..=8); rank 0 submits through its home
        // server 6, so victims 7 and 8 exercise steal/forward state and
        // the promoted-shard chain without beheading the submitter.
        let layout = Layout::new(9, 3);
        let plan = FaultPlan::new()
            .kill_after_sends(7, first_sends)
            .kill_after_sends(8, first_sends + gap_sends);
        let executed: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
        let config = ServerConfig {
            replication: 2,
            ..ServerConfig::default()
        };
        let total = 120u64;
        let outcome = World::run_faulty(9, &plan, |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                serve_ext(comm, layout, config.clone());
                return Vec::new();
            }
            let mut client = AdlbClient::new(comm, layout);
            if rank == 0 {
                for tid in 0..total {
                    let target = if tid % 6 == 0 {
                        Some(1 + (tid as usize) % 5)
                    } else {
                        None
                    };
                    client.put(
                        WORK_TYPE_WORK,
                        (tid % 3) as i32,
                        target,
                        tid.to_le_bytes().to_vec(),
                    );
                }
                client.finish();
                return client.quarantine_reports().to_vec();
            }
            while let Some(t) = client.get(&[WORK_TYPE_WORK]) {
                let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                *executed.lock().unwrap().entry(tid).or_insert(0) += 1;
                std::thread::sleep(Duration::from_micros(400));
            }
            client.quarantine_reports().to_vec()
        });
        // Only scheduled victims may die (a late point can miss).
        for k in &outcome.killed {
            prop_assert!([7usize, 8].contains(k), "unexpected dead rank {}", k);
        }
        let executed = executed.into_inner().unwrap();
        // Consumers all survive, so a duplicate execution anywhere is a
        // replication bug regardless of how the run ended.
        for (tid, n) in &executed {
            prop_assert!(*n <= 1, "task {} executed {} times", tid, n);
        }
        let reports: Vec<String> = outcome.outputs.into_iter().flatten().flatten().collect();
        if reports.is_empty() {
            // Completed: nothing may be lost.
            for tid in 0..total {
                prop_assert_eq!(
                    executed.get(&tid).copied().unwrap_or(0),
                    1,
                    "completed run lost task {}",
                    tid
                );
            }
        } else {
            // Aborted: the ending must carry the shard-loss diagnosis.
            prop_assert!(
                reports.iter().any(|r| r.contains("unrecoverable")),
                "abort without diagnosis: {:?}",
                reports
            );
        }
        Ok(())
    }

    #[test]
    fn wide_gap_survives_both_deaths() {
        // The gap dwarfs the sync time (R restores within ~1 ms of the
        // first death; 200 sends of an active server span far more), so
        // this specific schedule must COMPLETE, not merely end cleanly.
        run_two_deaths(4, 200).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
        #[test]
        fn any_gap_ends_cleanly(
            first in 2u64..40,
            gap in 0u64..250,
        ) {
            run_two_deaths(first, gap)?;
        }
    }
}

/// WAL replay idempotence: a crashed writer's re-appended tail leaves the
/// log with duplicated and (after concatenating partial files) reordered
/// records. Replay must produce exactly the state and LSN of the clean
/// log, and replaying the messy log on top of an already-restored ledger
/// must change nothing.
mod wal_replay {
    use bytes::Bytes;
    use proptest::prelude::*;

    use adlb::{decode_wal, encode_wal_record, replay_wal_records, Ledger, ReplOp};

    /// One synthetic mutation per index: deterministic, queue-free ops
    /// covering the store, subscriber set, output stream, and response
    /// history. Invalid transitions (store before create, double close)
    /// are fine — `Ledger::apply` absorbs them identically on every
    /// replay, which is the property under test.
    fn op(i: u64) -> ReplOp {
        let id = i % 7;
        let client = (i % 5) as usize;
        match i % 8 {
            0 => ReplOp::Create { id, type_tag: 0 },
            1 => ReplOp::Store {
                id,
                value: Bytes::from(format!("v{i}")),
            },
            2 => ReplOp::Subscribe { id, rank: client },
            3 => ReplOp::CloseDatum { id },
            4 => ReplOp::Out {
                client,
                text: format!("line {i}\n"),
                tenant: (i % 3) as u32,
            },
            5 => ReplOp::SeqResp {
                client,
                seq: i,
                resp: Some(Bytes::from(format!("r{i}"))),
            },
            6 => ReplOp::IncrWriters {
                id,
                delta: 1 - (i as i64 % 3),
            },
            _ => ReplOp::Quarantine {
                report: format!("q{i}"),
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        #[test]
        fn replay_is_idempotent_under_duplicated_reordered_tail(
            n in 1usize..24,
            ops_per in 1usize..4,
            tail in 0usize..24,
            seed in 1u64..u64::MAX,
        ) {
            let records: Vec<(u64, Vec<ReplOp>)> = (0..n)
                .map(|k| {
                    let lsn = k as u64 + 1;
                    let ops = (0..ops_per).map(|j| op(lsn * 31 + j as u64)).collect();
                    (lsn, ops)
                })
                .collect();

            // The clean log is the reference.
            let mut clean = Ledger::default();
            let clean_lsn = replay_wal_records(&mut clean, 0, 0, records.clone());
            prop_assert_eq!(clean_lsn, n as u64);

            // Crashed-writer tail: duplicate every record from `tail` on,
            // then shuffle the whole log.
            let t = tail.min(n - 1);
            let mut messy = records.clone();
            messy.extend_from_slice(&records[t..]);
            let mut rng = super::Rng(seed | 1);
            for i in (1..messy.len()).rev() {
                messy.swap(i, rng.below(i as u64 + 1) as usize);
            }

            // Round-trip through the wire framing, as recovery does.
            let mut buf = Vec::new();
            for (lsn, ops) in &messy {
                buf.extend_from_slice(&encode_wal_record(*lsn, ops));
            }
            let decoded = decode_wal(&buf).expect("well-formed frames decode");
            let mut replayed = Ledger::default();
            let lsn = replay_wal_records(&mut replayed, 0, 0, decoded.clone());
            prop_assert_eq!(lsn, clean_lsn);
            prop_assert_eq!(&replayed, &clean);

            // Replaying the messy tail onto an already-restored ledger
            // (a second recovery attempt) is a no-op.
            let mut twice = clean.clone();
            let lsn2 = replay_wal_records(&mut twice, 0, clean_lsn, decoded);
            prop_assert_eq!(lsn2, clean_lsn);
            prop_assert_eq!(&twice, &clean);
        }
    }
}
