//! Wire protocol: explicit binary encoding of every ADLB message.

use bytes::Bytes;
use mpisim::{Rank, Tag, WireError, WireReader, WireWriter};

use crate::replica::{Ledger, ReplOp};

/// Control work (engine-to-engine dataflow bookkeeping).
pub const WORK_TYPE_CONTROL: u32 = 0;
/// Ordinary leaf tasks executed by workers.
pub const WORK_TYPE_WORK: u32 = 1;
/// Data-close notifications, delivered as targeted high-priority tasks.
pub const WORK_TYPE_NOTIFY: u32 = 2;

/// Message tags used by the ADLB protocol (all below
/// [`mpisim::RESERVED_TAG_BASE`]).
pub const TAG_REQ: Tag = 10;
pub const TAG_RESP: Tag = 11;
pub const TAG_SRV: Tag = 12;

/// A unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Work type (queue selector).
    pub work_type: u32,
    /// Submitting tenant (0 = the default single-program tenant). Carried
    /// on the wire so servers can account, schedule, and quota per tenant.
    pub tenant: u32,
    /// Higher runs first.
    pub priority: i32,
    /// Pinned destination rank, if any.
    pub target: Option<Rank>,
    /// Delivery attempts so far (0 for a fresh task). Incremented by the
    /// server each time the task is requeued after a failure.
    pub attempts: u32,
    /// Opaque payload (Turbine ships Tcl fragments here).
    pub payload: Bytes,
}

impl Task {
    /// A fresh (never-attempted) task of the default tenant.
    pub fn new(work_type: u32, priority: i32, target: Option<Rank>, payload: Bytes) -> Task {
        Task {
            work_type,
            tenant: 0,
            priority,
            target,
            attempts: 0,
            payload,
        }
    }

    /// Re-tag this task with a tenant (builder style).
    pub fn with_tenant(mut self, tenant: u32) -> Task {
        self.tenant = tenant;
        self
    }

    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        w.put_u32(self.work_type);
        w.put_u32(self.tenant);
        w.put_i64(self.priority as i64);
        w.put_i64(self.target.map(|t| t as i64).unwrap_or(-1));
        w.put_u32(self.attempts);
        w.put_bytes(&self.payload);
    }

    pub(crate) fn decode_from(r: &mut WireReader) -> Result<Task, WireError> {
        let work_type = r.get_u32()?;
        let tenant = r.get_u32()?;
        let priority = r.get_i64()? as i32;
        let target = match r.get_i64()? {
            -1 => None,
            t => Some(t as Rank),
        };
        let attempts = r.get_u32()?;
        // Zero-copy when the reader is backed by the arrival buffer: the
        // payload is a view of the wire message, not a copy of it.
        let payload = r.get_bytes_shared()?;
        Ok(Task {
            work_type,
            tenant,
            priority,
            target,
            attempts,
            payload,
        })
    }
}

pub(crate) fn encode_task_list(w: &mut WireWriter, tasks: &[Task]) {
    w.put_u32(tasks.len() as u32);
    for t in tasks {
        t.encode_into(w);
    }
}

pub(crate) fn decode_task_list(r: &mut WireReader) -> Result<Vec<Task>, WireError> {
    let n = r.get_u32()? as usize;
    let mut tasks = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        tasks.push(Task::decode_from(r)?);
    }
    Ok(tasks)
}

/// Append a client's per-message sequence number to an encoded request
/// body. Every client→server message on the wire is sealed this way; the
/// server deduplicates re-sent messages after a failover by
/// `(client, seq)`. The seq trails the body so cached encodings (e.g. the
/// client's repeated `Get`) can be reused byte-for-byte.
pub fn seal_seq(body: &[u8], seq: u64) -> Bytes {
    let mut buf = Vec::with_capacity(body.len() + 8);
    buf.extend_from_slice(body);
    buf.extend_from_slice(&seq.to_le_bytes());
    Bytes::from(buf)
}

/// Client → server requests.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Put(Task),
    /// Pipelined puts: many tasks in one wire message with a single ack.
    /// The server routes each exactly as if it had arrived alone.
    PutBatch(Vec<Task>),
    Get {
        work_types: Vec<u32>,
        /// Prefetch hint: the server may deliver up to this many queued
        /// tasks in one [`Response::DeliverBatch`]. Servers treat 0 as 1.
        max_tasks: u32,
        /// Restrict delivery to this tenant's tasks (`None` = any tenant).
        /// Engines get only their own program's control/notify traffic;
        /// workers serve the whole fleet.
        tenant: Option<u32>,
    },
    /// Client will issue no further requests; counts as permanently parked.
    Finished,
    /// Acknowledge the task most recently delivered to this client,
    /// releasing its lease. `ok: false` reports a contained task failure
    /// (`error` says why); the server retries or quarantines the task.
    /// `error` is empty on success.
    TaskDone {
        ok: bool,
        error: String,
    },
    /// Batched lease acknowledgements, one `(ok, error)` per finished task
    /// in execution order — the oldest unacknowledged lease first. Sent
    /// when a client that drained a prefetched batch returns to the
    /// server, so N tasks cost one ack message.
    TaskDoneBatch {
        results: Vec<(bool, String)>,
    },
    /// Incremental stdout from a client (fire-and-forget). The server
    /// accumulates and replicates each client's stream so output produced
    /// before a rank death survives it.
    Output {
        text: String,
        /// Tenant the output belongs to, so multi-tenant runs can hand
        /// each program its own stdout stream.
        tenant: u32,
    },
    DataCreate {
        id: u64,
        type_tag: u8,
    },
    DataStore {
        id: u64,
        value: Bytes,
    },
    DataRetrieve {
        id: u64,
    },
    DataSubscribe {
        id: u64,
        rank: Rank,
    },
    DataInsert {
        id: u64,
        key: String,
        value: Bytes,
    },
    DataLookup {
        id: u64,
        key: String,
    },
    DataEnumerate {
        id: u64,
    },
    DataClose {
        id: u64,
    },
    DataExists {
        id: u64,
    },
    DataIncrWriters {
        id: u64,
        delta: i64,
    },
}

/// Server → client responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Ok,
    Bool(bool),
    MaybeBytes(Option<Bytes>),
    Pairs(Vec<(String, Bytes)>),
    DeliverTask(Task),
    /// Prefetch delivery: the client leases every task in the batch and
    /// drains them locally, acknowledging with one
    /// [`Request::TaskDoneBatch`] on its next server trip.
    DeliverBatch(Vec<Task>),
    /// Shutdown: no more work will ever arrive. Carries the (capped)
    /// quarantine reports of the responding server so clients can explain
    /// why some dataflow never completed, and — when the run was cut
    /// short by an unrecoverable server loss — the abort diagnosis.
    NoMore {
        quarantined: Vec<String>,
        aborted: Option<String>,
    },
    Error(String),
    /// Admission backpressure: the server refused these puts because the
    /// submitting tenant is over its queued-task quota. The client keeps
    /// them in a deferred buffer and re-offers them later instead of the
    /// server's queue growing without bound.
    Rejected(Vec<Task>),
}

/// Server ↔ server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Move a task to the server owning its destination. `dest` is the
    /// *home* server the task belongs to (which may be dead — the message
    /// is then addressed to its promoted successor), `origin` the server
    /// whose transfer ledger carries the entry, and `fseq` the per-
    /// `(origin, dest)` write-ahead transfer sequence number used for
    /// exactly-once application across failovers.
    Forward {
        origin: Rank,
        dest: Rank,
        fseq: u64,
        task: Task,
    },
    StealReq {
        thief: Rank,
        work_types: Vec<u32>,
        /// How many clients are starved at the thief — a sizing hint; the
        /// victim donates at least this many tasks when it has them (and
        /// never less than half its eligible queue).
        need: u32,
    },
    /// Stolen tasks, shipped under the same write-ahead transfer protocol
    /// as [`ServerMsg::Forward`] (`fseq == 0` marks an empty response,
    /// which transfers nothing and is not replicated).
    StealResp {
        origin: Rank,
        dest: Rank,
        fseq: u64,
        tasks: Vec<Task>,
    },
    /// Termination-detection poll from the master.
    Check { round: u64 },
    CheckResp {
        round: u64,
        quiescent: bool,
        epoch: u64,
        fwd_out: u64,
        fwd_in: u64,
    },
    /// Global shutdown, carrying the (capped) quarantine reports gathered
    /// by the master so every server can hand them to its clients.
    Shutdown { reports: Vec<String> },
    /// Liveness beacon between servers (membership protocol). Any message
    /// counts as a heartbeat; this one exists for otherwise-idle servers.
    Heartbeat,
    /// Write-through replication: state-changing ops a primary streams to
    /// the ring successors holding its replica ledger.
    Repl { ops: Vec<ReplOp> },
    /// Full replica state, sent when a server (re)gains a replica holder —
    /// at startup, after a membership change reshapes the ring, or after a
    /// promotion merges a dead server's ledger.
    Snapshot { ledger: Box<Ledger> },
    /// Receiver has durably applied transfer `fseq` from `origin`'s ledger
    /// toward home `dest`; the sender may retire the write-ahead entry.
    XferAck { origin: Rank, dest: Rank, fseq: u64 },
    /// Sent as a server's very last message after global termination: every
    /// shutdown `NoMore` this server owed its clients precedes the `Bye`
    /// in its send stream, and sends complete in program order — so a
    /// delivered `Bye` is a receipt that those notices left too. Peers
    /// linger until every live peer says `Bye`; a peer that dies instead
    /// gets its replica promoted so its stranded clients still get their
    /// shutdown notices.
    Bye,
    /// One bounded chunk of a streamed replica snapshot (re-replication).
    /// `data` covers bytes `[cursor, cursor + data.len())` of a `total`-byte
    /// serialized [`Ledger`]; `sync_id` is monotonic per sender so a
    /// restarted sync supersedes any chunks of the previous one still in
    /// flight. The receiver acks each chunk with [`ServerMsg::SyncAck`]
    /// carrying its contiguous high-water, which is also the resume point:
    /// the sender may re-send from any acked cursor.
    ReplSync {
        sync_id: u64,
        cursor: u64,
        total: u64,
        data: Bytes,
    },
    /// Receiver holds the first `cursor` contiguous bytes of sync
    /// `sync_id`; the sender streams the next chunk from there (or retires
    /// the sync when `cursor == total`).
    SyncAck { sync_id: u64, cursor: u64 },
}

pub(crate) fn put_u32_list(w: &mut WireWriter, v: &[u32]) {
    w.put_u32(v.len() as u32);
    for x in v {
        w.put_u32(*x);
    }
}

pub(crate) fn get_u32_list(r: &mut WireReader) -> Result<Vec<u32>, WireError> {
    let n = r.get_u32()? as usize;
    (0..n).map(|_| r.get_u32()).collect()
}

pub(crate) fn put_str_list(w: &mut WireWriter, v: &[String]) {
    w.put_u32(v.len() as u32);
    for s in v {
        w.put_str(s);
    }
}

pub(crate) fn get_str_list(r: &mut WireReader) -> Result<Vec<String>, WireError> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(r.get_str()?.to_string());
    }
    Ok(out)
}

impl Request {
    /// Serialize the request body. The wire form additionally carries the
    /// client's sequence number — see [`seal_seq`].
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        match self {
            Request::Put(t) => {
                w.put_u8(0);
                t.encode_into(&mut w);
            }
            Request::Get {
                work_types,
                max_tasks,
                tenant,
            } => {
                w.put_u8(1);
                put_u32_list(&mut w, work_types);
                w.put_u32(*max_tasks);
                w.put_i64(tenant.map(|t| t as i64).unwrap_or(-1));
            }
            Request::Finished => {
                w.put_u8(2);
            }
            Request::DataCreate { id, type_tag } => {
                w.put_u8(3);
                w.put_u64(*id);
                w.put_u8(*type_tag);
            }
            Request::DataStore { id, value } => {
                w.put_u8(4);
                w.put_u64(*id);
                w.put_bytes(value);
            }
            Request::DataRetrieve { id } => {
                w.put_u8(5);
                w.put_u64(*id);
            }
            Request::DataSubscribe { id, rank } => {
                w.put_u8(6);
                w.put_u64(*id);
                w.put_u64(*rank as u64);
            }
            Request::DataInsert { id, key, value } => {
                w.put_u8(7);
                w.put_u64(*id);
                w.put_str(key);
                w.put_bytes(value);
            }
            Request::DataLookup { id, key } => {
                w.put_u8(8);
                w.put_u64(*id);
                w.put_str(key);
            }
            Request::DataEnumerate { id } => {
                w.put_u8(9);
                w.put_u64(*id);
            }
            Request::DataClose { id } => {
                w.put_u8(10);
                w.put_u64(*id);
            }
            Request::DataExists { id } => {
                w.put_u8(11);
                w.put_u64(*id);
            }
            Request::DataIncrWriters { id, delta } => {
                w.put_u8(12);
                w.put_u64(*id);
                w.put_i64(*delta);
            }
            Request::TaskDone { ok, error } => {
                w.put_u8(13);
                w.put_u8(*ok as u8);
                w.put_str(error);
            }
            Request::PutBatch(tasks) => {
                w.put_u8(14);
                encode_task_list(&mut w, tasks);
            }
            Request::TaskDoneBatch { results } => {
                w.put_u8(15);
                w.put_u32(results.len() as u32);
                for (ok, error) in results {
                    w.put_u8(*ok as u8);
                    w.put_str(error);
                }
            }
            Request::Output { text, tenant } => {
                w.put_u8(16);
                w.put_str(text);
                w.put_u32(*tenant);
            }
        }
        w.finish()
    }

    /// Deserialize a sealed wire message into `(request, seq)` (payload
    /// bytes copied out of `buf`). The live protocol paths use
    /// [`Request::decode_shared`]; this form decodes from a bare slice for
    /// tests and tooling.
    #[allow(dead_code)]
    pub fn decode(buf: &[u8]) -> Result<(Request, u64), WireError> {
        Self::decode_reader(WireReader::new(buf))
    }

    /// Deserialize a sealed wire message from an arrival buffer; task
    /// payloads alias `buf` (zero-copy) instead of being copied out of it.
    pub fn decode_shared(buf: &Bytes) -> Result<(Request, u64), WireError> {
        Self::decode_reader(WireReader::shared(buf))
    }

    fn decode_reader(mut r: WireReader) -> Result<(Request, u64), WireError> {
        let kind = r.get_u8()?;
        let req = match kind {
            0 => Request::Put(Task::decode_from(&mut r)?),
            1 => Request::Get {
                work_types: get_u32_list(&mut r)?,
                max_tasks: r.get_u32()?,
                tenant: match r.get_i64()? {
                    -1 => None,
                    t => Some(t as u32),
                },
            },
            2 => Request::Finished,
            3 => Request::DataCreate {
                id: r.get_u64()?,
                type_tag: r.get_u8()?,
            },
            4 => Request::DataStore {
                id: r.get_u64()?,
                value: Bytes::copy_from_slice(r.get_bytes()?),
            },
            5 => Request::DataRetrieve { id: r.get_u64()? },
            6 => Request::DataSubscribe {
                id: r.get_u64()?,
                rank: r.get_u64()? as Rank,
            },
            7 => Request::DataInsert {
                id: r.get_u64()?,
                key: r.get_str()?.to_string(),
                value: Bytes::copy_from_slice(r.get_bytes()?),
            },
            8 => Request::DataLookup {
                id: r.get_u64()?,
                key: r.get_str()?.to_string(),
            },
            9 => Request::DataEnumerate { id: r.get_u64()? },
            10 => Request::DataClose { id: r.get_u64()? },
            11 => Request::DataExists { id: r.get_u64()? },
            12 => Request::DataIncrWriters {
                id: r.get_u64()?,
                delta: r.get_i64()?,
            },
            13 => Request::TaskDone {
                ok: r.get_u8()? != 0,
                error: r.get_str()?.to_string(),
            },
            14 => Request::PutBatch(decode_task_list(&mut r)?),
            15 => {
                let n = r.get_u32()? as usize;
                let mut results = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let ok = r.get_u8()? != 0;
                    let error = r.get_str()?.to_string();
                    results.push((ok, error));
                }
                Request::TaskDoneBatch { results }
            }
            16 => {
                let text = r.get_str()?.to_string();
                Request::Output {
                    text,
                    tenant: r.get_u32()?,
                }
            }
            _ => {
                return Err(WireError {
                    context: "unknown request kind",
                    offset: 0,
                })
            }
        };
        let seq = r.get_u64()?;
        r.expect_end()?;
        Ok((req, seq))
    }
}

impl Response {
    /// Serialize for the wire.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        match self {
            Response::Ok => {
                w.put_u8(0);
            }
            Response::Bool(b) => {
                w.put_u8(1);
                w.put_u8(*b as u8);
            }
            Response::MaybeBytes(opt) => {
                w.put_u8(2);
                match opt {
                    Some(b) => {
                        w.put_u8(1);
                        w.put_bytes(b);
                    }
                    None => {
                        w.put_u8(0);
                    }
                }
            }
            Response::Pairs(pairs) => {
                w.put_u8(3);
                w.put_u32(pairs.len() as u32);
                for (k, v) in pairs {
                    w.put_str(k);
                    w.put_bytes(v);
                }
            }
            Response::DeliverTask(t) => {
                w.put_u8(4);
                t.encode_into(&mut w);
            }
            Response::NoMore {
                quarantined,
                aborted,
            } => {
                w.put_u8(5);
                w.put_u32(quarantined.len() as u32);
                for q in quarantined {
                    w.put_str(q);
                }
                match aborted {
                    None => {
                        w.put_u8(0);
                    }
                    Some(a) => {
                        w.put_u8(1);
                        w.put_str(a);
                    }
                }
            }
            Response::Error(e) => {
                w.put_u8(6);
                w.put_str(e);
            }
            Response::DeliverBatch(tasks) => {
                w.put_u8(7);
                encode_task_list(&mut w, tasks);
            }
            Response::Rejected(tasks) => {
                w.put_u8(8);
                encode_task_list(&mut w, tasks);
            }
        }
        w.finish()
    }

    /// Deserialize from the wire (payload bytes copied out of `buf`).
    #[cfg(test)]
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        Self::decode_reader(WireReader::new(buf))
    }

    /// Deserialize from an arrival buffer; task payloads alias `buf`
    /// (zero-copy) instead of being copied out of it.
    #[cfg(test)]
    pub fn decode_shared(buf: &Bytes) -> Result<Response, WireError> {
        Self::decode_reader(WireReader::shared(buf))
    }

    /// Deserialize a sealed response from an arrival buffer into
    /// `(response, seq)`, where `seq` identifies the request it answers.
    /// Clients match the seq against their outstanding request and drop
    /// anything else — a failover may re-send cached responses the client
    /// already consumed, and those duplicates must not be mistaken for
    /// the answer to a later request.
    pub fn decode_sealed(buf: &Bytes) -> Result<(Response, u64), WireError> {
        let mut r = WireReader::shared(buf);
        let resp = Self::decode_body(&mut r)?;
        let seq = r.get_u64()?;
        r.expect_end()?;
        Ok((resp, seq))
    }

    #[cfg(test)]
    fn decode_reader(mut r: WireReader) -> Result<Response, WireError> {
        let resp = Self::decode_body(&mut r)?;
        r.expect_end()?;
        Ok(resp)
    }

    fn decode_body(r: &mut WireReader) -> Result<Response, WireError> {
        let resp = match r.get_u8()? {
            0 => Response::Ok,
            1 => Response::Bool(r.get_u8()? != 0),
            2 => {
                if r.get_u8()? == 1 {
                    Response::MaybeBytes(Some(Bytes::copy_from_slice(r.get_bytes()?)))
                } else {
                    Response::MaybeBytes(None)
                }
            }
            3 => {
                let n = r.get_u32()? as usize;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.get_str()?.to_string();
                    let v = Bytes::copy_from_slice(r.get_bytes()?);
                    pairs.push((k, v));
                }
                Response::Pairs(pairs)
            }
            4 => Response::DeliverTask(Task::decode_from(r)?),
            5 => {
                let n = r.get_u32()? as usize;
                let mut quarantined = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    quarantined.push(r.get_str()?.to_string());
                }
                let aborted = match r.get_u8()? {
                    0 => None,
                    _ => Some(r.get_str()?.to_string()),
                };
                Response::NoMore {
                    quarantined,
                    aborted,
                }
            }
            6 => Response::Error(r.get_str()?.to_string()),
            7 => Response::DeliverBatch(decode_task_list(r)?),
            8 => Response::Rejected(decode_task_list(r)?),
            _ => {
                return Err(WireError {
                    context: "unknown response kind",
                    offset: 0,
                })
            }
        };
        Ok(resp)
    }
}

impl ServerMsg {
    /// Serialize for the wire.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        match self {
            ServerMsg::Forward {
                origin,
                dest,
                fseq,
                task,
            } => {
                w.put_u8(0);
                w.put_u64(*origin as u64);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
                task.encode_into(&mut w);
            }
            ServerMsg::StealReq {
                thief,
                work_types,
                need,
            } => {
                w.put_u8(1);
                w.put_u64(*thief as u64);
                put_u32_list(&mut w, work_types);
                w.put_u32(*need);
            }
            ServerMsg::StealResp {
                origin,
                dest,
                fseq,
                tasks,
            } => {
                w.put_u8(2);
                w.put_u64(*origin as u64);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
                encode_task_list(&mut w, tasks);
            }
            ServerMsg::Check { round } => {
                w.put_u8(3);
                w.put_u64(*round);
            }
            ServerMsg::CheckResp {
                round,
                quiescent,
                epoch,
                fwd_out,
                fwd_in,
            } => {
                w.put_u8(4);
                w.put_u64(*round);
                w.put_u8(*quiescent as u8);
                w.put_u64(*epoch);
                w.put_u64(*fwd_out);
                w.put_u64(*fwd_in);
            }
            ServerMsg::Shutdown { reports } => {
                w.put_u8(5);
                put_str_list(&mut w, reports);
            }
            ServerMsg::Heartbeat => {
                w.put_u8(6);
            }
            ServerMsg::Repl { ops } => {
                w.put_u8(7);
                w.put_u32(ops.len() as u32);
                for op in ops {
                    op.encode_into(&mut w);
                }
            }
            ServerMsg::Snapshot { ledger } => {
                w.put_u8(8);
                ledger.encode_into(&mut w);
            }
            ServerMsg::XferAck { origin, dest, fseq } => {
                w.put_u8(9);
                w.put_u64(*origin as u64);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
            }
            ServerMsg::Bye => {
                w.put_u8(10);
            }
            ServerMsg::ReplSync {
                sync_id,
                cursor,
                total,
                data,
            } => {
                w.put_u8(11);
                w.put_u64(*sync_id);
                w.put_u64(*cursor);
                w.put_u64(*total);
                w.put_bytes(data);
            }
            ServerMsg::SyncAck { sync_id, cursor } => {
                w.put_u8(12);
                w.put_u64(*sync_id);
                w.put_u64(*cursor);
            }
        }
        w.finish()
    }

    /// Deserialize from the wire (payload bytes copied out of `buf`).
    /// The live protocol paths use [`ServerMsg::decode_shared`]; this form
    /// decodes from a bare slice for tests and tooling.
    #[allow(dead_code)]
    pub fn decode(buf: &[u8]) -> Result<ServerMsg, WireError> {
        Self::decode_reader(WireReader::new(buf))
    }

    /// Deserialize from an arrival buffer; task payloads alias `buf`
    /// (zero-copy) instead of being copied out of it.
    pub fn decode_shared(buf: &Bytes) -> Result<ServerMsg, WireError> {
        Self::decode_reader(WireReader::shared(buf))
    }

    fn decode_reader(mut r: WireReader) -> Result<ServerMsg, WireError> {
        let msg = match r.get_u8()? {
            0 => ServerMsg::Forward {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
                task: Task::decode_from(&mut r)?,
            },
            1 => ServerMsg::StealReq {
                thief: r.get_u64()? as Rank,
                work_types: get_u32_list(&mut r)?,
                need: r.get_u32()?,
            },
            2 => ServerMsg::StealResp {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
                tasks: decode_task_list(&mut r)?,
            },
            3 => ServerMsg::Check {
                round: r.get_u64()?,
            },
            4 => ServerMsg::CheckResp {
                round: r.get_u64()?,
                quiescent: r.get_u8()? != 0,
                epoch: r.get_u64()?,
                fwd_out: r.get_u64()?,
                fwd_in: r.get_u64()?,
            },
            5 => ServerMsg::Shutdown {
                reports: get_str_list(&mut r)?,
            },
            6 => ServerMsg::Heartbeat,
            7 => {
                let n = r.get_u32()? as usize;
                let mut ops = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    ops.push(ReplOp::decode_from(&mut r)?);
                }
                ServerMsg::Repl { ops }
            }
            8 => ServerMsg::Snapshot {
                ledger: Box::new(Ledger::decode_from(&mut r)?),
            },
            9 => ServerMsg::XferAck {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
            },
            10 => ServerMsg::Bye,
            11 => ServerMsg::ReplSync {
                sync_id: r.get_u64()?,
                cursor: r.get_u64()?,
                total: r.get_u64()?,
                data: r.get_bytes_shared()?,
            },
            12 => ServerMsg::SyncAck {
                sync_id: r.get_u64()?,
                cursor: r.get_u64()?,
            },
            _ => {
                return Err(WireError {
                    context: "unknown server message kind",
                    offset: 0,
                })
            }
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(t: u32, p: i32, target: Option<Rank>) -> Task {
        Task {
            work_type: t,
            tenant: 3,
            priority: p,
            target,
            attempts: 2,
            payload: Bytes::from_static(b"payload \x00\xFF bytes"),
        }
    }

    #[test]
    fn request_round_trips() {
        let cases = vec![
            Request::Put(task(1, -5, Some(3))),
            Request::Put(task(0, i32::MAX, None)),
            Request::Get {
                work_types: vec![0, 1, 2],
                max_tasks: 1,
                tenant: None,
            },
            Request::Get {
                work_types: vec![1],
                max_tasks: 16,
                tenant: Some(2),
            },
            Request::PutBatch(vec![task(1, 3, None), task(0, -1, Some(2))]),
            Request::PutBatch(vec![]),
            Request::TaskDoneBatch {
                results: vec![
                    (true, String::new()),
                    (false, "boom".into()),
                    (true, String::new()),
                ],
            },
            Request::Finished,
            Request::TaskDone {
                ok: true,
                error: String::new(),
            },
            Request::TaskDone {
                ok: false,
                error: "NameError: x is not defined".into(),
            },
            Request::Output {
                text: "line one\nline two\n".into(),
                tenant: 2,
            },
            Request::DataCreate { id: 7, type_tag: 3 },
            Request::DataStore {
                id: 9,
                value: Bytes::from_static(b"v"),
            },
            Request::DataRetrieve { id: u64::MAX },
            Request::DataSubscribe { id: 1, rank: 42 },
            Request::DataInsert {
                id: 2,
                key: "k with spaces".into(),
                value: Bytes::new(),
            },
            Request::DataLookup {
                id: 2,
                key: "k".into(),
            },
            Request::DataEnumerate { id: 2 },
            Request::DataClose { id: 2 },
            Request::DataExists { id: 0 },
            Request::DataIncrWriters { id: 3, delta: -1 },
        ];
        for (i, c) in cases.into_iter().enumerate() {
            let seq = i as u64 + 1;
            let wire = seal_seq(&c.encode(), seq);
            assert_eq!(Request::decode(&wire).unwrap(), (c, seq));
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = vec![
            Response::Ok,
            Response::Bool(true),
            Response::Bool(false),
            Response::MaybeBytes(None),
            Response::MaybeBytes(Some(Bytes::from_static(b"\x01\x02"))),
            Response::Pairs(vec![
                ("a".into(), Bytes::from_static(b"1")),
                ("b".into(), Bytes::new()),
            ]),
            Response::DeliverTask(task(2, 0, Some(0))),
            Response::DeliverBatch(vec![task(1, 5, None), task(1, 4, None), task(1, 3, None)]),
            Response::DeliverBatch(vec![]),
            Response::NoMore {
                quarantined: vec![],
                aborted: None,
            },
            Response::NoMore {
                quarantined: vec!["task failed 4 attempts: boom".into()],
                aborted: None,
            },
            Response::NoMore {
                quarantined: vec![],
                aborted: Some(
                    "server rank 3 died and its shard is unrecoverable \
                     (replication=1 keeps no replica; no checkpoint configured)"
                        .into(),
                ),
            },
            Response::Error("bad thing".into()),
            Response::Rejected(vec![task(1, 0, None).with_tenant(9)]),
            Response::Rejected(vec![]),
        ];
        for c in cases {
            assert_eq!(Response::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn server_msg_round_trips() {
        let cases = vec![
            ServerMsg::Forward {
                origin: 9,
                dest: 8,
                fseq: 4,
                task: task(1, 2, Some(5)),
            },
            ServerMsg::StealReq {
                thief: 8,
                work_types: vec![1],
                need: 3,
            },
            ServerMsg::StealResp {
                origin: 9,
                dest: 8,
                fseq: 2,
                tasks: vec![task(1, 0, None), task(1, 9, None)],
            },
            ServerMsg::StealResp {
                origin: 9,
                dest: 8,
                fseq: 0,
                tasks: vec![],
            },
            ServerMsg::Check { round: 3 },
            ServerMsg::CheckResp {
                round: 3,
                quiescent: true,
                epoch: 77,
                fwd_out: 5,
                fwd_in: 5,
            },
            ServerMsg::Shutdown { reports: vec![] },
            ServerMsg::Shutdown {
                reports: vec!["task quarantined: boom".into()],
            },
            ServerMsg::Heartbeat,
            ServerMsg::XferAck {
                origin: 8,
                dest: 9,
                fseq: 11,
            },
            ServerMsg::Bye,
            ServerMsg::ReplSync {
                sync_id: 7,
                cursor: 4096,
                total: 9000,
                data: Bytes::from_static(b"chunk-of-ledger"),
            },
            ServerMsg::ReplSync {
                sync_id: 1,
                cursor: 0,
                total: 0,
                data: Bytes::new(),
            },
            ServerMsg::SyncAck {
                sync_id: 7,
                cursor: 4111,
            },
        ];
        for c in cases {
            assert_eq!(ServerMsg::decode(&c.encode()).unwrap(), c);
        }
    }

    #[test]
    fn truncated_messages_error() {
        let enc = seal_seq(&Request::Put(task(1, 1, None)).encode(), 1);
        assert!(Request::decode(&enc[..enc.len() - 1]).is_err());
        assert!(Request::decode(&[99]).is_err());
    }

    #[test]
    fn shared_decode_aliases_payloads() {
        // decode_shared must hand back payloads that point into the wire
        // message's own allocation — the zero-copy receive path.
        let batch = Response::DeliverBatch(vec![task(1, 0, None), task(1, 1, None)]);
        let wire = batch.encode();
        let lo = wire.as_ptr() as usize;
        let hi = lo + wire.len();
        match Response::decode_shared(&wire).unwrap() {
            Response::DeliverBatch(tasks) => {
                assert_eq!(tasks.len(), 2);
                for t in &tasks {
                    let p = t.payload.as_ptr() as usize;
                    assert!(p >= lo && p + t.payload.len() <= hi, "payload was copied");
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // The copying decoder must NOT alias (callers may hold the payload
        // after the arrival buffer is gone — here both are owned, but the
        // contract is distinct allocations).
        let sealed = seal_seq(&Request::Put(task(1, 0, None)).encode(), 5);
        match Request::decode_shared(&sealed).unwrap() {
            (Request::Put(t), 5) => assert_eq!(&t.payload[..], &task(1, 0, None).payload[..]),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
