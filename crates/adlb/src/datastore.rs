//! The server-resident typed data store.
//!
//! Turbine's futures live here: a datum is created open, written exactly
//! once (single assignment — the property that makes Swift's implicit
//! concurrency safe), and closed; closing releases every subscriber.
//! Containers (Swift arrays) accumulate members and close when the program
//! structure guarantees no more writers (STC emits the close).

use std::collections::HashMap;

use bytes::Bytes;
use mpisim::Rank;

/// Data-store error (double assignment, missing datum, type mismatch...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataError {
    /// What went wrong.
    pub message: String,
}

impl DataError {
    fn new(msg: impl Into<String>) -> Self {
        DataError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "data: {}", self.message)
    }
}

impl std::error::Error for DataError {}

/// A datum's value: a scalar future or a container.
#[derive(Debug, Clone, PartialEq)]
pub enum DatumValue {
    /// Not yet stored.
    Unset,
    /// Scalar payload (int/float/string/blob — encoding is Turbine's
    /// concern; ADLB ships bytes).
    Scalar(Bytes),
    /// Container members by subscript.
    Container(HashMap<String, Bytes>),
}

/// One typed future.
#[derive(Debug, Clone, PartialEq)]
pub struct Datum {
    /// Turbine type tag (opaque to ADLB).
    pub type_tag: u8,
    /// Current value.
    pub value: DatumValue,
    /// Whether the datum is closed (will never change again).
    pub closed: bool,
    /// Ranks to notify on close.
    pub subscribers: Vec<Rank>,
    /// Outstanding writer slots (containers): the datum closes when this
    /// drops to zero — Swift/T's slot counting for distributed loops that
    /// fill an array from many control tasks.
    pub write_refs: i64,
}

/// Type tag convention: containers use this tag, everything else is a
/// scalar. (Kept in ADLB so `create` can pick the right value shape.)
pub const TYPE_TAG_CONTAINER: u8 = 100;

/// The shard of the data store owned by one server.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DataStore {
    data: HashMap<u64, Datum>,
}

impl DataStore {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of datums resident.
    #[allow(dead_code)] // diagnostics / tests
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard is empty.
    #[allow(dead_code)] // diagnostics / tests
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterate over resident datums (replica snapshot encoding).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&u64, &Datum)> {
        self.data.iter()
    }

    /// Install a datum wholesale (replica snapshot decoding).
    pub(crate) fn insert_datum(&mut self, id: u64, d: Datum) {
        self.data.insert(id, d);
    }

    /// Absorb another shard (failover promotion). Ids are sharded across
    /// servers, so the two key sets are disjoint in practice; on a
    /// collision the absorbed shard wins (it is the authoritative replica
    /// of the dead primary).
    pub(crate) fn merge(&mut self, other: DataStore) {
        self.data.extend(other.data);
    }

    /// Create a datum (idempotent creation is an error: ids are unique).
    pub fn create(&mut self, id: u64, type_tag: u8) -> Result<(), DataError> {
        if self.data.contains_key(&id) {
            return Err(DataError::new(format!("<{id}> already exists")));
        }
        let value = if type_tag == TYPE_TAG_CONTAINER {
            DatumValue::Container(HashMap::new())
        } else {
            DatumValue::Unset
        };
        self.data.insert(
            id,
            Datum {
                type_tag,
                value,
                closed: false,
                subscribers: Vec::new(),
                write_refs: 1,
            },
        );
        Ok(())
    }

    fn get_mut(&mut self, id: u64) -> Result<&mut Datum, DataError> {
        self.data
            .get_mut(&id)
            .ok_or_else(|| DataError::new(format!("<{id}> does not exist")))
    }

    /// Whether the datum exists and is closed.
    pub fn exists_closed(&self, id: u64) -> bool {
        self.data.get(&id).map(|d| d.closed).unwrap_or(false)
    }

    /// Store a scalar value and close the datum. Returns the subscribers
    /// to notify. Double store is an error (single assignment).
    pub fn store(&mut self, id: u64, value: Bytes) -> Result<Vec<Rank>, DataError> {
        let d = self.get_mut(id)?;
        if d.closed {
            return Err(DataError::new(format!(
                "<{id}> double assignment (already closed)"
            )));
        }
        if matches!(d.value, DatumValue::Container(_)) {
            return Err(DataError::new(format!("<{id}> is a container; use insert")));
        }
        d.value = DatumValue::Scalar(value);
        d.closed = true;
        Ok(std::mem::take(&mut d.subscribers))
    }

    /// Read a scalar datum's value if closed.
    pub fn retrieve(&self, id: u64) -> Result<Option<Bytes>, DataError> {
        match self.data.get(&id) {
            None => Err(DataError::new(format!("<{id}> does not exist"))),
            Some(d) => match (&d.value, d.closed) {
                (DatumValue::Scalar(b), true) => Ok(Some(b.clone())),
                _ => Ok(None),
            },
        }
    }

    /// Subscribe `rank` to the close of `id`. Returns `true` if the datum
    /// is already closed (no notification will be sent).
    pub fn subscribe(&mut self, id: u64, rank: Rank) -> Result<bool, DataError> {
        let d = self.get_mut(id)?;
        if d.closed {
            return Ok(true);
        }
        d.subscribers.push(rank);
        Ok(false)
    }

    /// Insert a member into an open container.
    pub fn insert(&mut self, id: u64, key: &str, value: Bytes) -> Result<(), DataError> {
        let d = self.get_mut(id)?;
        if d.closed {
            return Err(DataError::new(format!(
                "<{id}>[{key}] insert into closed container"
            )));
        }
        match &mut d.value {
            DatumValue::Container(map) => {
                if map.contains_key(key) {
                    return Err(DataError::new(format!(
                        "<{id}>[{key}] double insert (single assignment)"
                    )));
                }
                map.insert(key.to_string(), value);
                Ok(())
            }
            _ => Err(DataError::new(format!("<{id}> is not a container"))),
        }
    }

    /// Look up a container member (present or not; no blocking here —
    /// Turbine arranges dataflow waits above this level).
    pub fn lookup(&self, id: u64, key: &str) -> Result<Option<Bytes>, DataError> {
        match self.data.get(&id) {
            None => Err(DataError::new(format!("<{id}> does not exist"))),
            Some(d) => match &d.value {
                DatumValue::Container(map) => Ok(map.get(key).cloned()),
                _ => Err(DataError::new(format!("<{id}> is not a container"))),
            },
        }
    }

    /// Enumerate a container's members, sorted by subscript.
    pub fn enumerate(&self, id: u64) -> Result<Vec<(String, Bytes)>, DataError> {
        match self.data.get(&id) {
            None => Err(DataError::new(format!("<{id}> does not exist"))),
            Some(d) => match &d.value {
                DatumValue::Container(map) => {
                    let mut out: Vec<(String, Bytes)> =
                        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    // Numeric subscripts sort numerically (Swift arrays).
                    out.sort_by(|a, b| match (a.0.parse::<i64>(), b.0.parse::<i64>()) {
                        (Ok(x), Ok(y)) => x.cmp(&y),
                        _ => a.0.cmp(&b.0),
                    });
                    Ok(out)
                }
                _ => Err(DataError::new(format!("<{id}> is not a container"))),
            },
        }
    }

    /// Adjust a container's writer slot count; a drop to zero closes the
    /// datum and returns the subscribers to notify.
    pub fn incr_writers(&mut self, id: u64, delta: i64) -> Result<Vec<Rank>, DataError> {
        let d = self.get_mut(id)?;
        if d.closed {
            if delta > 0 {
                return Err(DataError::new(format!(
                    "<{id}> cannot add writers to a closed datum"
                )));
            }
            return Ok(Vec::new());
        }
        d.write_refs += delta;
        if d.write_refs < 0 {
            return Err(DataError::new(format!("<{id}> writer count went negative")));
        }
        if d.write_refs == 0 {
            d.closed = true;
            return Ok(std::mem::take(&mut d.subscribers));
        }
        Ok(Vec::new())
    }

    /// Close a datum (containers; scalars close via store). Returns
    /// subscribers to notify.
    pub fn close(&mut self, id: u64) -> Result<Vec<Rank>, DataError> {
        let d = self.get_mut(id)?;
        if d.closed {
            // Closing twice is tolerated for containers: nested loop
            // structures can emit redundant closes.
            return Ok(Vec::new());
        }
        d.closed = true;
        Ok(std::mem::take(&mut d.subscribers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_lifecycle() {
        let mut ds = DataStore::new();
        ds.create(1, 0).unwrap();
        assert_eq!(ds.retrieve(1).unwrap(), None);
        assert!(!ds.exists_closed(1));
        let subs = ds.store(1, Bytes::from_static(b"42")).unwrap();
        assert!(subs.is_empty());
        assert_eq!(ds.retrieve(1).unwrap().unwrap(), &b"42"[..]);
        assert!(ds.exists_closed(1));
    }

    #[test]
    fn double_assignment_rejected() {
        let mut ds = DataStore::new();
        ds.create(1, 0).unwrap();
        ds.store(1, Bytes::from_static(b"x")).unwrap();
        let err = ds.store(1, Bytes::from_static(b"y")).unwrap_err();
        assert!(err.message.contains("double assignment"));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut ds = DataStore::new();
        ds.create(1, 0).unwrap();
        assert!(ds.create(1, 0).is_err());
    }

    #[test]
    fn subscribe_before_and_after_close() {
        let mut ds = DataStore::new();
        ds.create(5, 0).unwrap();
        assert!(!ds.subscribe(5, 3).unwrap());
        assert!(!ds.subscribe(5, 7).unwrap());
        let subs = ds.store(5, Bytes::new()).unwrap();
        assert_eq!(subs, vec![3, 7]);
        // Late subscriber learns it is already closed.
        assert!(ds.subscribe(5, 9).unwrap());
    }

    #[test]
    fn container_lifecycle() {
        let mut ds = DataStore::new();
        ds.create(2, TYPE_TAG_CONTAINER).unwrap();
        ds.insert(2, "0", Bytes::from_static(b"a")).unwrap();
        ds.insert(2, "10", Bytes::from_static(b"b")).unwrap();
        ds.insert(2, "2", Bytes::from_static(b"c")).unwrap();
        assert_eq!(ds.lookup(2, "10").unwrap().unwrap(), &b"b"[..]);
        assert_eq!(ds.lookup(2, "99").unwrap(), None);
        let keys: Vec<String> = ds
            .enumerate(2)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec!["0", "2", "10"], "numeric subscript order");
        ds.close(2).unwrap();
        assert!(ds.insert(2, "3", Bytes::new()).is_err());
        // Redundant close is tolerated.
        assert!(ds.close(2).unwrap().is_empty());
    }

    #[test]
    fn double_insert_rejected() {
        let mut ds = DataStore::new();
        ds.create(2, TYPE_TAG_CONTAINER).unwrap();
        ds.insert(2, "0", Bytes::from_static(b"a")).unwrap();
        assert!(ds.insert(2, "0", Bytes::from_static(b"b")).is_err());
    }

    #[test]
    fn type_confusion_rejected() {
        let mut ds = DataStore::new();
        ds.create(1, 0).unwrap();
        ds.create(2, TYPE_TAG_CONTAINER).unwrap();
        assert!(ds.insert(1, "0", Bytes::new()).is_err());
        assert!(ds.store(2, Bytes::new()).is_err());
        assert!(ds.lookup(1, "0").is_err());
    }

    #[test]
    fn missing_ids_error() {
        let mut ds = DataStore::new();
        assert!(ds.retrieve(9).is_err());
        assert!(ds.store(9, Bytes::new()).is_err());
        assert!(ds.subscribe(9, 0).is_err());
        assert!(ds.close(9).is_err());
    }
}
