//! Rank layout: which ranks are servers, who serves whom, who owns a datum.

use mpisim::Rank;

/// The machine layout. As in Swift/T, the last `servers` ranks are ADLB
/// servers and the rest are clients (engines + workers); typically well
/// over 99 % of ranks are workers (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total ranks in the world.
    pub size: usize,
    /// Number of server ranks (at the top of the rank space).
    pub servers: usize,
}

impl Layout {
    /// Build a layout; requires at least one server and one client.
    pub fn new(size: usize, servers: usize) -> Self {
        assert!(servers >= 1, "need at least one ADLB server");
        assert!(size > servers, "need at least one client rank");
        Layout { size, servers }
    }

    /// Number of client (non-server) ranks.
    pub fn clients(&self) -> usize {
        self.size - self.servers
    }

    /// Whether `rank` is a server.
    pub fn is_server(&self, rank: Rank) -> bool {
        rank >= self.size - self.servers
    }

    /// The first server rank.
    pub fn first_server(&self) -> Rank {
        self.size - self.servers
    }

    /// The master server (runs termination detection).
    pub fn master_server(&self) -> Rank {
        self.first_server()
    }

    /// All server ranks.
    pub fn server_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        self.first_server()..self.size
    }

    /// All client ranks.
    pub fn client_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        0..self.clients()
    }

    /// The server that owns (serves) a client rank.
    pub fn server_of(&self, client: Rank) -> Rank {
        assert!(!self.is_server(client), "rank {client} is a server");
        self.first_server() + client % self.servers
    }

    /// The clients served by a server rank.
    pub fn clients_of(&self, server: Rank) -> Vec<Rank> {
        assert!(self.is_server(server));
        let idx = server - self.first_server();
        (0..self.clients())
            .filter(|c| c % self.servers == idx)
            .collect()
    }

    /// The server hosting datum `id` (sharded by id). This is the
    /// *primary*; with replication the shard also lives on the primary's
    /// ring successors ([`Layout::successors`]).
    pub fn data_owner(&self, id: u64) -> Rank {
        self.first_server() + (id % self.servers as u64) as usize
    }

    /// Index of a server rank within the server ring, `0..servers`.
    pub fn server_index(&self, server: Rank) -> usize {
        assert!(self.is_server(server));
        server - self.first_server()
    }

    /// The next server after `server` on the consistent successor ring
    /// (wrapping). With one server this is `server` itself.
    pub fn next_server(&self, server: Rank) -> Rank {
        let idx = self.server_index(server);
        self.first_server() + (idx + 1) % self.servers
    }

    /// The `k` ring successors of `server` (excluding `server` itself),
    /// capped at the other servers. Replication places a shard on its
    /// primary plus the first `R - 1` successors.
    pub fn successors(&self, server: Rank, k: usize) -> Vec<Rank> {
        let k = k.min(self.servers - 1);
        let mut out = Vec::with_capacity(k);
        let mut s = server;
        for _ in 0..k {
            s = self.next_server(s);
            out.push(s);
        }
        out
    }

    /// The first `k` *live* ring successors of `server` (excluding
    /// `server` itself and every rank in `dead`). This is the replica
    /// placement over the shrunken ring: after a failover each primary
    /// re-replicates to these ranks to restore `R` live copies.
    pub fn live_successors(
        &self,
        server: Rank,
        k: usize,
        dead: &std::collections::HashSet<Rank>,
    ) -> Vec<Rank> {
        let mut out = Vec::with_capacity(k.min(self.servers.saturating_sub(1)));
        let mut s = server;
        for _ in 0..self.servers.saturating_sub(1) {
            s = self.next_server(s);
            if s == server {
                break;
            }
            if !dead.contains(&s) {
                out.push(s);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// The first server at or after `server` on the ring that is not in
    /// `dead`. This is the failover route: requests for a dead server's
    /// shard go to its first live successor (which holds the replica at
    /// `replication >= 2`).
    ///
    /// # Panics
    /// Panics if every server is dead.
    pub fn route(&self, server: Rank, dead: &std::collections::HashSet<Rank>) -> Rank {
        let mut s = server;
        for _ in 0..self.servers {
            if !dead.contains(&s) {
                return s;
            }
            s = self.next_server(s);
        }
        panic!("all {} ADLB servers are dead", self.servers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition_ranks() {
        let l = Layout::new(10, 2);
        assert_eq!(l.clients(), 8);
        assert!(!l.is_server(0));
        assert!(!l.is_server(7));
        assert!(l.is_server(8));
        assert!(l.is_server(9));
        assert_eq!(l.server_ranks().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn every_client_has_a_server_and_vice_versa() {
        let l = Layout::new(11, 3);
        let mut seen = vec![];
        for s in l.server_ranks() {
            for c in l.clients_of(s) {
                assert_eq!(l.server_of(c), s);
                seen.push(c);
            }
        }
        seen.sort();
        assert_eq!(seen, l.client_ranks().collect::<Vec<_>>());
    }

    #[test]
    fn data_owner_is_a_server() {
        let l = Layout::new(7, 2);
        for id in 0..100u64 {
            assert!(l.is_server(l.data_owner(id)));
        }
    }

    #[test]
    #[should_panic]
    fn all_servers_is_invalid() {
        Layout::new(2, 2);
    }

    #[test]
    fn ring_successors_wrap() {
        let l = Layout::new(11, 3); // servers 8, 9, 10
        assert_eq!(l.next_server(8), 9);
        assert_eq!(l.next_server(10), 8);
        assert_eq!(l.successors(9, 2), vec![10, 8]);
        // k capped at the other servers.
        assert_eq!(l.successors(9, 7), vec![10, 8]);
        let l1 = Layout::new(3, 1);
        assert_eq!(l1.next_server(2), 2);
        assert!(l1.successors(2, 1).is_empty());
    }

    #[test]
    fn live_successors_skip_dead_and_shrink_with_the_ring() {
        use std::collections::HashSet;
        let l = Layout::new(12, 4); // servers 8..=11
        let none: HashSet<Rank> = HashSet::new();
        assert_eq!(l.live_successors(8, 1, &none), vec![9]);
        assert_eq!(l.live_successors(11, 2, &none), vec![8, 9]);
        // A dead successor is skipped: the replica moves one hop further.
        let dead: HashSet<Rank> = [9].into_iter().collect();
        assert_eq!(l.live_successors(8, 1, &dead), vec![10]);
        assert_eq!(l.live_successors(8, 2, &dead), vec![10, 11]);
        // The ring can shrink below k: fewer live holders than requested.
        let most: HashSet<Rank> = [9, 10, 11].into_iter().collect();
        assert!(l.live_successors(8, 2, &most).is_empty());
        let l1 = Layout::new(3, 1);
        assert!(l1.live_successors(2, 1, &none).is_empty());
    }

    #[test]
    fn route_skips_dead_servers() {
        use std::collections::HashSet;
        let l = Layout::new(11, 3);
        let dead: HashSet<Rank> = [9].into_iter().collect();
        assert_eq!(l.route(8, &dead), 8);
        assert_eq!(l.route(9, &dead), 10);
        let dead2: HashSet<Rank> = [9, 10].into_iter().collect();
        assert_eq!(l.route(9, &dead2), 8, "route wraps past multiple deaths");
    }
}
