//! Rank layout: which ranks are servers, who serves whom, who owns a datum.

use mpisim::Rank;

/// The machine layout. As in Swift/T, the last `servers` ranks are ADLB
/// servers and the rest are clients (engines + workers); typically well
/// over 99 % of ranks are workers (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total ranks in the world.
    pub size: usize,
    /// Number of server ranks (at the top of the rank space).
    pub servers: usize,
}

impl Layout {
    /// Build a layout; requires at least one server and one client.
    pub fn new(size: usize, servers: usize) -> Self {
        assert!(servers >= 1, "need at least one ADLB server");
        assert!(size > servers, "need at least one client rank");
        Layout { size, servers }
    }

    /// Number of client (non-server) ranks.
    pub fn clients(&self) -> usize {
        self.size - self.servers
    }

    /// Whether `rank` is a server.
    pub fn is_server(&self, rank: Rank) -> bool {
        rank >= self.size - self.servers
    }

    /// The first server rank.
    pub fn first_server(&self) -> Rank {
        self.size - self.servers
    }

    /// The master server (runs termination detection).
    pub fn master_server(&self) -> Rank {
        self.first_server()
    }

    /// All server ranks.
    pub fn server_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        self.first_server()..self.size
    }

    /// All client ranks.
    pub fn client_ranks(&self) -> impl Iterator<Item = Rank> + '_ {
        0..self.clients()
    }

    /// The server that owns (serves) a client rank.
    pub fn server_of(&self, client: Rank) -> Rank {
        assert!(!self.is_server(client), "rank {client} is a server");
        self.first_server() + client % self.servers
    }

    /// The clients served by a server rank.
    pub fn clients_of(&self, server: Rank) -> Vec<Rank> {
        assert!(self.is_server(server));
        let idx = server - self.first_server();
        (0..self.clients())
            .filter(|c| c % self.servers == idx)
            .collect()
    }

    /// The server hosting datum `id` (sharded by id).
    pub fn data_owner(&self, id: u64) -> Rank {
        self.first_server() + (id % self.servers as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_partition_ranks() {
        let l = Layout::new(10, 2);
        assert_eq!(l.clients(), 8);
        assert!(!l.is_server(0));
        assert!(!l.is_server(7));
        assert!(l.is_server(8));
        assert!(l.is_server(9));
        assert_eq!(l.server_ranks().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn every_client_has_a_server_and_vice_versa() {
        let l = Layout::new(11, 3);
        let mut seen = vec![];
        for s in l.server_ranks() {
            for c in l.clients_of(s) {
                assert_eq!(l.server_of(c), s);
                seen.push(c);
            }
        }
        seen.sort();
        assert_eq!(seen, l.client_ranks().collect::<Vec<_>>());
    }

    #[test]
    fn data_owner_is_a_server() {
        let l = Layout::new(7, 2);
        for id in 0..100u64 {
            assert!(l.is_server(l.data_owner(id)));
        }
    }

    #[test]
    #[should_panic]
    fn all_servers_is_invalid() {
        Layout::new(2, 2);
    }
}
