//! Multi-tenant admission control and weighted fair scheduling.
//!
//! The paper dedicates a whole MPI world to one Swift program; the
//! ROADMAP's "heavy traffic" north-star needs N programs sharing one
//! server/worker fleet. This module is the server-side policy layer for
//! that: per-tenant accounting, put-side admission quotas (backpressure
//! instead of unbounded queue growth), and a deficit-round-robin (DRR)
//! scheduler that divides *delivery* of untargeted work across tenants in
//! proportion to their configured weights while leaving the per-type
//! priority heaps — and so intra-tenant priority order — untouched.
//!
//! Scope rules, chosen so the single-tenant fast path is byte-identical
//! to the pre-tenant runtime:
//!
//! * Only **untargeted client puts** pass admission. Targeted tasks
//!   (data-close notifications, retries re-pinned by the server) are
//!   internal dataflow and must never be refused or reordered by policy.
//! * A tenant over its `max_queued` quota gets its puts NACKed
//!   ([`crate::msg::Response::Rejected`]); the client re-offers them,
//!   which blocks the submitting program — backpressure, not loss.
//! * A tenant at its `max_leases` cap is skipped by the DRR cursor until
//!   an acknowledgement frees a slot; its queued tasks stay put.
//! * With one tenant (or none declared) DRR always elects that tenant,
//!   so delivery order reduces to the plain (priority desc, arrival asc)
//!   heap order.

use std::collections::HashMap;

/// Per-tenant admission quotas. `None` = unlimited (the default, and the
/// behavior of every pre-tenant run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Max untargeted tasks queued server-side (per server) before puts
    /// are NACKed back to the submitter.
    pub max_queued: Option<usize>,
    /// Max in-flight leases (delivered, unacknowledged tasks) before the
    /// fair scheduler stops electing this tenant.
    pub max_leases: Option<usize>,
}

/// Static description of one tenant, carried in
/// [`crate::ServerConfig::tenants`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant id as carried on task wire messages.
    pub id: u32,
    /// Display name (reports).
    pub name: String,
    /// Fair-share weight (clamped to at least 1). A weight-4 tenant gets
    /// twice the deliveries of a weight-2 tenant under contention.
    pub weight: u32,
    /// Admission quotas.
    pub quota: TenantQuota,
}

impl TenantSpec {
    /// A tenant with the given id, weight 1 and no quotas.
    pub fn new(id: u32, name: &str) -> TenantSpec {
        TenantSpec {
            id,
            name: name.to_string(),
            weight: 1,
            quota: TenantQuota::default(),
        }
    }

    /// Set the fair-share weight (builder style).
    pub fn weight(mut self, w: u32) -> TenantSpec {
        self.weight = w.max(1);
        self
    }

    /// Set the admission quota (builder style).
    pub fn quota(mut self, q: TenantQuota) -> TenantSpec {
        self.quota = q;
        self
    }
}

/// Per-tenant counters one server accumulates. Unlike
/// [`crate::ServerStats`] these are keyed dynamically (one row per tenant
/// that showed up), so they live beside the compile-guarded stats struct
/// rather than inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Client puts admitted into the queue.
    pub admitted: u64,
    /// Client puts NACKed for quota (each re-offer counts again).
    pub rejected: u64,
    /// Tasks handed to clients (leases opened).
    pub delivered: u64,
    /// Deliveries made while at least one *other* tenant also had queued
    /// untargeted work — the denominator for fair-share measurement
    /// (uncontended deliveries say nothing about fairness).
    pub delivered_contended: u64,
    /// Peak untargeted queue depth observed.
    pub queue_peak: u64,
}

impl TenantStats {
    /// Merge another server's counters for the same tenant: counters add,
    /// the peak takes the max.
    pub fn merge(&mut self, other: &TenantStats) {
        let TenantStats {
            admitted,
            rejected,
            delivered,
            delivered_contended,
            queue_peak,
        } = other;
        self.admitted += admitted;
        self.rejected += rejected;
        self.delivered += delivered;
        self.delivered_contended += delivered_contended;
        self.queue_peak = self.queue_peak.max(*queue_peak);
    }
}

/// The admission controller + DRR scheduler state one server owns.
///
/// Scheduling state (deficits, cursor) is deliberately *not* replicated:
/// on failover a promoted server starts a fresh round, which costs at
/// most one quantum of short-term skew. Quota state derives from the
/// queue and lease multisets, which *are* replicated.
#[derive(Debug, Default)]
pub struct TenantSched {
    specs: HashMap<u32, TenantSpec>,
    /// Known tenants in deterministic round-robin order (sorted by id).
    order: Vec<u32>,
    /// DRR cursor into `order`.
    cursor: usize,
    /// Remaining deficit (deliveries owed) of the tenant under the
    /// cursor for the current visit.
    deficit: u64,
    /// In-flight leases per tenant.
    leases: HashMap<u32, usize>,
    /// Per-tenant counters.
    stats: HashMap<u32, TenantStats>,
}

impl TenantSched {
    /// Build from the configured specs. Tenants that later appear on the
    /// wire without a spec get weight 1 and no quotas.
    pub fn new(specs: &[TenantSpec]) -> TenantSched {
        let mut s = TenantSched::default();
        for spec in specs {
            s.specs.insert(spec.id, spec.clone());
            s.note_tenant(spec.id);
        }
        s
    }

    /// Ensure `tenant` participates in the round-robin order.
    pub fn note_tenant(&mut self, tenant: u32) {
        if let Err(at) = self.order.binary_search(&tenant) {
            self.order.insert(at, tenant);
            if at <= self.cursor && !self.order.is_empty() && self.cursor + 1 < self.order.len() {
                // Keep the cursor on the tenant it was visiting.
                self.cursor += 1;
            }
        }
    }

    fn weight(&self, tenant: u32) -> u64 {
        self.specs
            .get(&tenant)
            .map_or(1, |s| s.weight.max(1) as u64)
    }

    /// The quota for `tenant` (unlimited when unspecified).
    pub fn quota(&self, tenant: u32) -> TenantQuota {
        self.specs
            .get(&tenant)
            .map_or_else(TenantQuota::default, |s| s.quota)
    }

    /// Mutable stats row for `tenant` (created on first touch).
    pub fn stats_mut(&mut self, tenant: u32) -> &mut TenantStats {
        self.stats.entry(tenant).or_default()
    }

    /// Whether an untargeted client put of `tenant` passes admission,
    /// given the tenant's current untargeted queue depth.
    pub fn admits(&self, tenant: u32, queued: usize) -> bool {
        match self.quota(tenant).max_queued {
            Some(cap) => queued < cap,
            None => true,
        }
    }

    /// Whether the fair scheduler may elect `tenant` for another
    /// delivery (lease cap not yet reached).
    pub fn can_lease(&self, tenant: u32) -> bool {
        match self.quota(tenant).max_leases {
            Some(cap) => self.leases.get(&tenant).copied().unwrap_or(0) < cap,
            None => true,
        }
    }

    /// A lease opened for `tenant`.
    pub fn lease_opened(&mut self, tenant: u32) {
        *self.leases.entry(tenant).or_default() += 1;
    }

    /// A lease of `tenant` was released (ack, revocation, client death).
    pub fn lease_closed(&mut self, tenant: u32) {
        if let Some(n) = self.leases.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.leases.remove(&tenant);
            }
        }
    }

    /// In-flight leases of `tenant`.
    pub fn leases_of(&self, tenant: u32) -> usize {
        self.leases.get(&tenant).copied().unwrap_or(0)
    }

    /// Elect the next tenant to deliver untargeted work for, by deficit
    /// round robin over `eligible` (the tenants that currently have
    /// matching queued work *and* are under their lease cap). Returns
    /// `None` when `eligible` is empty. Each call charges one delivery
    /// to the elected tenant's deficit; a tenant under the cursor is
    /// served `weight` consecutive deliveries before the cursor moves
    /// on, which makes long-run contended shares proportional to the
    /// weights while bounding any tenant's wait by one round.
    pub fn elect(&mut self, eligible: &[u32]) -> Option<u32> {
        if eligible.is_empty() {
            return None;
        }
        for t in eligible {
            self.note_tenant(*t);
        }
        // At most one full sweep: every tenant is visited once, and at
        // least one is eligible, so the sweep terminates with a winner.
        for _ in 0..=self.order.len() {
            if self.order.is_empty() {
                return None;
            }
            self.cursor %= self.order.len();
            let t = self.order[self.cursor];
            if eligible.contains(&t) {
                if self.deficit == 0 {
                    self.deficit = self.weight(t);
                }
                self.deficit -= 1;
                if self.deficit == 0 {
                    self.cursor += 1;
                }
                return Some(t);
            }
            // Ineligible tenants forfeit the rest of their visit: idle
            // queues bank no credit (the classic DRR rule that keeps
            // latecomers from bursting past everyone).
            self.deficit = 0;
            self.cursor += 1;
        }
        None
    }

    /// Snapshot the per-tenant stats, sorted by tenant id.
    pub fn stats_rows(&self) -> Vec<(u32, TenantStats)> {
        let mut rows: Vec<(u32, TenantStats)> = self.stats.iter().map(|(t, s)| (*t, *s)).collect();
        rows.sort_by_key(|(t, _)| *t);
        rows
    }

    /// Display name for `tenant` (falls back to `tenant-<id>`).
    pub fn name(&self, tenant: u32) -> String {
        self.specs
            .get(&tenant)
            .map_or_else(|| format!("tenant-{tenant}"), |s| s.name.clone())
    }
}

/// Merge per-tenant stats rows from many servers into one sorted table.
pub fn merge_tenant_rows(into: &mut Vec<(u32, TenantStats)>, rows: &[(u32, TenantStats)]) {
    for (tenant, stats) in rows {
        match into.binary_search_by_key(tenant, |(t, _)| *t) {
            Ok(at) => into[at].1.merge(stats),
            Err(at) => into.insert(at, (*tenant, *stats)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(weights: &[(u32, u32)]) -> TenantSched {
        let specs: Vec<TenantSpec> = weights
            .iter()
            .map(|(id, w)| TenantSpec::new(*id, &format!("t{id}")).weight(*w))
            .collect();
        TenantSched::new(&specs)
    }

    #[test]
    fn single_tenant_always_elected() {
        let mut s = sched(&[(0, 1)]);
        for _ in 0..10 {
            assert_eq!(s.elect(&[0]), Some(0));
        }
    }

    #[test]
    fn drr_shares_track_weights() {
        let mut s = sched(&[(0, 4), (1, 2), (2, 1), (3, 1)]);
        let all = [0u32, 1, 2, 3];
        let mut served = [0u64; 4];
        for _ in 0..800 {
            let t = s.elect(&all).unwrap();
            served[t as usize] += 1;
        }
        assert_eq!(served, [400, 200, 100, 100]);
    }

    #[test]
    fn ineligible_tenants_are_skipped_without_credit() {
        let mut s = sched(&[(0, 4), (1, 1)]);
        // Tenant 0 idle: tenant 1 gets everything.
        for _ in 0..5 {
            assert_eq!(s.elect(&[1]), Some(1));
        }
        // Tenant 0 returns: it gets its weight per round, not a burst
        // repaying its idle time.
        let mut zero = 0;
        for _ in 0..50 {
            if s.elect(&[0, 1]) == Some(0) {
                zero += 1;
            }
        }
        assert_eq!(zero, 40);
    }

    #[test]
    fn unknown_tenant_defaults_to_weight_one() {
        let mut s = sched(&[(0, 3)]);
        let mut counts = HashMap::new();
        for _ in 0..40 {
            *counts.entry(s.elect(&[0, 9]).unwrap()).or_insert(0u64) += 1;
        }
        assert_eq!(counts[&0], 30);
        assert_eq!(counts[&9], 10);
    }

    #[test]
    fn quotas_gate_admission_and_leasing() {
        let spec = TenantSpec::new(1, "capped").quota(TenantQuota {
            max_queued: Some(2),
            max_leases: Some(1),
        });
        let mut s = TenantSched::new(&[spec]);
        assert!(s.admits(1, 0));
        assert!(s.admits(1, 1));
        assert!(!s.admits(1, 2));
        assert!(s.admits(7, usize::MAX - 1), "unspecified tenant unlimited");
        assert!(s.can_lease(1));
        s.lease_opened(1);
        assert!(!s.can_lease(1));
        s.lease_closed(1);
        assert!(s.can_lease(1));
        s.lease_closed(1); // extra release must not underflow
        assert_eq!(s.leases_of(1), 0);
    }

    #[test]
    fn stats_merge_adds_counters_and_maxes_peak() {
        let a = TenantStats {
            admitted: 1,
            rejected: 2,
            delivered: 3,
            delivered_contended: 4,
            queue_peak: 9,
        };
        let b = TenantStats {
            admitted: 10,
            rejected: 20,
            delivered: 30,
            delivered_contended: 40,
            queue_peak: 5,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            TenantStats {
                admitted: 11,
                rejected: 22,
                delivered: 33,
                delivered_contended: 44,
                queue_peak: 9,
            }
        );
        let mut rows = vec![(0, a)];
        merge_tenant_rows(&mut rows, &[(1, b), (0, b)]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.admitted, 11);
        assert_eq!(rows[1].1, b);
    }
}
