//! The ADLB server loop.
//!
//! A server owns: the work queues for its clients, one shard of the data
//! store, the work-stealing policy, and (on the master server) the
//! termination-detection protocol. Everything is message-driven; the only
//! timer is a short receive timeout that paces steal attempts and
//! termination polls.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use bytes::Bytes;
use mpisim::{Comm, Rank, Src, TagSel};

use crate::datastore::DataStore;
use crate::layout::Layout;
use crate::msg::{Request, Response, ServerMsg, Task, TAG_REQ, TAG_RESP, TAG_SRV};
use crate::queue::WorkQueue;

/// Tunables for the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Receive timeout pacing idle actions (steals, termination polls).
    pub poll_interval: Duration,
    /// Whether servers steal work from each other. Ablation E5 turns this
    /// off to measure what load balancing buys.
    pub steal_enabled: bool,
    /// Priority assigned to data-close notification tasks; the default
    /// outranks all user work so dataflow progress is never queued behind
    /// bulk tasks.
    pub notify_priority: i32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_micros(200),
            steal_enabled: true,
            notify_priority: i32::MAX,
        }
    }
}

/// Counters a server reports when it shuts down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Tasks accepted via put or forward.
    pub tasks_accepted: u64,
    /// Tasks handed to clients.
    pub tasks_delivered: u64,
    /// Steal requests this server sent.
    pub steals_attempted: u64,
    /// Steal requests that returned at least one task.
    pub steals_successful: u64,
    /// Tasks obtained by stealing.
    pub tasks_stolen: u64,
    /// Tasks donated to thieves.
    pub tasks_donated: u64,
    /// Data operations served.
    pub data_ops: u64,
    /// Close notifications generated.
    pub notifications: u64,
}

struct Server {
    comm: Comm,
    layout: Layout,
    config: ServerConfig,
    queue: WorkQueue,
    store: DataStore,
    /// Parked GET requests in arrival order.
    parked: Vec<(Rank, Vec<u32>)>,
    finished: HashSet<Rank>,
    my_client_count: usize,
    epoch: u64,
    fwd_out: u64,
    fwd_in: u64,
    outstanding_steal: bool,
    steal_victim_cursor: usize,
    /// Consecutive empty steal responses in the current sweep.
    empty_steal_streak: usize,
    /// Idle ticks to wait before sweeping victims again after a fully
    /// empty sweep. Prevents the empty-steal ping-pong from starving the
    /// termination detector while still retrying for late remote work.
    steal_backoff: u32,
    // Master-only termination state.
    check_round: u64,
    check_responses: HashMap<Rank, (bool, u64, u64, u64)>,
    check_in_flight: bool,
    prev_snapshot: Option<Vec<u64>>,
    stats: ServerStats,
}

/// Run the ADLB server loop on this rank until global termination.
pub fn serve(comm: Comm, layout: Layout, config: ServerConfig) -> ServerStats {
    assert!(layout.is_server(comm.rank()), "serve() on a client rank");
    let my_client_count = layout.clients_of(comm.rank()).len();
    let mut s = Server {
        comm,
        layout,
        config,
        queue: WorkQueue::new(),
        store: DataStore::new(),
        parked: Vec::new(),
        finished: HashSet::new(),
        my_client_count,
        epoch: 0,
        fwd_out: 0,
        fwd_in: 0,
        outstanding_steal: false,
        steal_victim_cursor: 0,
        empty_steal_streak: 0,
        steal_backoff: 0,
        check_round: 0,
        check_responses: HashMap::new(),
        check_in_flight: false,
        prev_snapshot: None,
        stats: ServerStats::default(),
    };
    s.run()
}

impl Server {
    fn run(&mut self) -> ServerStats {
        loop {
            match self
                .comm
                .recv_timeout(Src::Any, TagSel::Any, self.config.poll_interval)
            {
                Some(m) if m.tag == TAG_REQ => {
                    let req = Request::decode(&m.data).expect("bad client request");
                    self.handle_request(m.source, req);
                }
                Some(m) if m.tag == TAG_SRV => {
                    let msg = ServerMsg::decode(&m.data).expect("bad server message");
                    if self.handle_server_msg(m.source, msg) {
                        return self.shutdown();
                    }
                }
                Some(m) => panic!("adlb server: unexpected tag {}", m.tag),
                None => self.idle_actions(),
            }
        }
    }

    fn respond(&self, rank: Rank, resp: Response) {
        self.comm.send(rank, TAG_RESP, resp.encode());
    }

    fn quiescent(&self) -> bool {
        self.parked.len() + self.finished.len() == self.my_client_count
            && self.queue.is_empty()
            && !self.outstanding_steal
    }

    // -- task routing ----------------------------------------------------

    /// Send a task toward its home: targeted tasks go to the target's
    /// server; untargeted tasks stay here.
    fn route_task(&mut self, task: Task) {
        if let Some(target) = task.target {
            let home = self.layout.server_of(target);
            if home != self.comm.rank() {
                self.fwd_out += 1;
                self.comm
                    .send(home, TAG_SRV, ServerMsg::Forward(task).encode());
                return;
            }
        }
        self.accept_task(task);
    }

    /// Deliver to a parked client or enqueue locally.
    fn accept_task(&mut self, task: Task) {
        self.stats.tasks_accepted += 1;
        // New work ends any steal backoff: there may be more where this
        // came from.
        self.steal_backoff = 0;
        self.empty_steal_streak = 0;
        let slot = self.parked.iter().position(|(rank, types)| {
            types.contains(&task.work_type)
                && match task.target {
                    Some(t) => *rank == t,
                    None => true,
                }
        });
        match slot {
            Some(i) => {
                let (rank, _) = self.parked.remove(i);
                self.stats.tasks_delivered += 1;
                self.respond(rank, Response::DeliverTask(task));
            }
            None => self.queue.push(task),
        }
    }

    // -- client requests ---------------------------------------------------

    fn handle_request(&mut self, source: Rank, req: Request) {
        self.epoch += 1;
        match req {
            Request::Put(task) => {
                self.route_task(task);
                self.respond(source, Response::Ok);
            }
            Request::Get { work_types } => {
                match self.queue.pop_for(source, &work_types) {
                    Some(task) => {
                        self.stats.tasks_delivered += 1;
                        self.respond(source, Response::DeliverTask(task));
                    }
                    None => {
                        self.parked.push((source, work_types));
                        // An empty queue with parked clients is the steal
                        // trigger; don't wait for the poll timeout.
                        self.try_steal();
                    }
                }
            }
            Request::Finished => {
                self.finished.insert(source);
                self.parked.retain(|(r, _)| *r != source);
            }
            Request::DataCreate { id, type_tag } => {
                self.stats.data_ops += 1;
                let resp = match self.store.create(id, type_tag) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataStore { id, value } => {
                self.stats.data_ops += 1;
                match self.store.store(id, value) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
            Request::DataRetrieve { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.retrieve(id) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataSubscribe { id, rank } => {
                self.stats.data_ops += 1;
                let resp = match self.store.subscribe(id, rank) {
                    Ok(closed) => Response::Bool(closed),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataInsert { id, key, value } => {
                self.stats.data_ops += 1;
                let resp = match self.store.insert(id, &key, value) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataLookup { id, key } => {
                self.stats.data_ops += 1;
                let resp = match self.store.lookup(id, &key) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataEnumerate { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.enumerate(id) {
                    Ok(pairs) => Response::Pairs(pairs),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataClose { id } => {
                self.stats.data_ops += 1;
                match self.store.close(id) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
            Request::DataExists { id } => {
                self.stats.data_ops += 1;
                self.respond(source, Response::Bool(self.store.exists_closed(id)));
            }
            Request::DataIncrWriters { id, delta } => {
                self.stats.data_ops += 1;
                match self.store.incr_writers(id, delta) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
        }
    }

    /// Turn a datum close into targeted high-priority notification tasks.
    fn notify_all(&mut self, id: u64, subscribers: Vec<Rank>) {
        for rank in subscribers {
            self.stats.notifications += 1;
            let task = Task {
                work_type: crate::msg::WORK_TYPE_NOTIFY,
                priority: self.config.notify_priority,
                target: Some(rank),
                payload: Bytes::copy_from_slice(&id.to_le_bytes()),
            };
            self.route_task(task);
        }
    }

    // -- server messages ---------------------------------------------------

    /// Returns true when this server must shut down.
    fn handle_server_msg(&mut self, source: Rank, msg: ServerMsg) -> bool {
        match msg {
            ServerMsg::Forward(task) => {
                self.epoch += 1;
                self.fwd_in += 1;
                self.accept_task(task);
            }
            ServerMsg::StealReq { thief, work_types } => {
                let tasks = self.queue.steal(&work_types);
                // Empty steal traffic must not perturb the epoch, or the
                // steal retry loop would keep termination detection from
                // ever seeing two stable rounds.
                if !tasks.is_empty() {
                    self.epoch += 1;
                }
                self.fwd_out += tasks.len() as u64;
                self.stats.tasks_donated += tasks.len() as u64;
                self.comm
                    .send(thief, TAG_SRV, ServerMsg::StealResp { tasks }.encode());
            }
            ServerMsg::StealResp { tasks } => {
                self.outstanding_steal = false;
                self.fwd_in += tasks.len() as u64;
                if tasks.is_empty() {
                    // Try the next victim on the next idle tick; after a
                    // fully empty sweep, back off.
                    self.steal_victim_cursor += 1;
                    self.empty_steal_streak += 1;
                    if self.empty_steal_streak >= self.layout.servers - 1 {
                        self.empty_steal_streak = 0;
                        self.steal_backoff = 50;
                    }
                } else {
                    self.epoch += 1;
                    self.empty_steal_streak = 0;
                    self.stats.steals_successful += 1;
                    self.stats.tasks_stolen += tasks.len() as u64;
                    for t in tasks {
                        self.accept_task(t);
                    }
                }
            }
            ServerMsg::Check { round } => {
                // Termination polls do not bump the epoch: they must not
                // mask real quiescence.
                let resp = ServerMsg::CheckResp {
                    round,
                    quiescent: self.quiescent(),
                    epoch: self.epoch,
                    fwd_out: self.fwd_out,
                    fwd_in: self.fwd_in,
                };
                self.comm.send(source, TAG_SRV, resp.encode());
            }
            ServerMsg::CheckResp {
                round,
                quiescent,
                epoch,
                fwd_out,
                fwd_in,
            } => {
                if round == self.check_round {
                    self.check_responses
                        .insert(source, (quiescent, epoch, fwd_out, fwd_in));
                    if self.check_responses.len() == self.layout.servers - 1 {
                        return self.evaluate_check_round();
                    }
                }
            }
            ServerMsg::Shutdown => return true,
        }
        false
    }

    // -- idle actions ------------------------------------------------------

    fn idle_actions(&mut self) {
        // Termination check first: a fresh steal attempt would otherwise
        // mark this server non-quiescent on every tick.
        if self.comm.rank() == self.layout.master_server()
            && !self.check_in_flight
            && self.quiescent()
        {
            self.start_check_round();
        }
        if self.steal_backoff > 0 {
            self.steal_backoff -= 1;
            return;
        }
        self.try_steal();
    }

    fn try_steal(&mut self) {
        if !self.config.steal_enabled
            || self.steal_backoff > 0
            || self.outstanding_steal
            || self.layout.servers < 2
            || self.parked.is_empty()
            || !self.queue.is_empty()
        {
            return;
        }
        // Union of work types our parked clients want.
        let mut types: Vec<u32> = Vec::new();
        for (_, ts) in &self.parked {
            for t in ts {
                if !types.contains(t) {
                    types.push(*t);
                }
            }
        }
        let others: Vec<Rank> = self
            .layout
            .server_ranks()
            .filter(|r| *r != self.comm.rank())
            .collect();
        let victim = others[self.steal_victim_cursor % others.len()];
        self.outstanding_steal = true;
        self.stats.steals_attempted += 1;
        self.comm.send(
            victim,
            TAG_SRV,
            ServerMsg::StealReq {
                thief: self.comm.rank(),
                work_types: types,
            }
            .encode(),
        );
    }

    fn start_check_round(&mut self) {
        self.check_round += 1;
        self.check_responses.clear();
        self.check_in_flight = true;
        for r in self.layout.server_ranks() {
            if r != self.comm.rank() {
                self.comm.send(
                    r,
                    TAG_SRV,
                    ServerMsg::Check {
                        round: self.check_round,
                    }
                    .encode(),
                );
            }
        }
        if self.layout.servers == 1 {
            // No peers to wait for: decide now. On termination, send the
            // Shutdown sentinel to ourselves so run() exits through the
            // same message-driven path as multi-server mode.
            if self.evaluate_check_round() {
                self.comm
                    .send(self.comm.rank(), TAG_SRV, ServerMsg::Shutdown.encode());
            }
        }
    }

    /// All responses for the current round are in; decide.
    fn evaluate_check_round(&mut self) -> bool {
        self.check_in_flight = false;
        let me = self.comm.rank();
        let mut all_quiescent = self.quiescent();
        let mut fwd_out_sum = self.fwd_out;
        let mut fwd_in_sum = self.fwd_in;
        let mut snapshot: Vec<u64> = Vec::with_capacity(self.layout.servers);
        snapshot.push(self.epoch);
        for r in self.layout.server_ranks() {
            if r == me {
                continue;
            }
            let (q, e, fo, fi) = self.check_responses[&r];
            all_quiescent &= q;
            fwd_out_sum += fo;
            fwd_in_sum += fi;
            snapshot.push(e);
        }
        let stable = self.prev_snapshot.as_deref() == Some(&snapshot[..]);
        self.prev_snapshot = Some(snapshot);
        if all_quiescent && fwd_out_sum == fwd_in_sum && stable {
            for r in self.layout.server_ranks() {
                if r != me {
                    self.comm.send(r, TAG_SRV, ServerMsg::Shutdown.encode());
                }
            }
            return true;
        }
        false
    }

    fn shutdown(&mut self) -> ServerStats {
        for (rank, _) in std::mem::take(&mut self.parked) {
            self.respond(rank, Response::NoMore);
        }
        self.stats
    }
}
