//! The ADLB server loop.
//!
//! A server owns: the work queues for its clients, one shard of the data
//! store, the work-stealing policy, and (on the master server) the
//! termination-detection protocol. Everything is message-driven; the only
//! timer is a short receive timeout that paces steal attempts and
//! termination polls.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use bytes::Bytes;
use mpisim::{Comm, Rank, Src, TagSel};

use crate::datastore::DataStore;
use crate::layout::Layout;
use crate::msg::{Request, Response, ServerMsg, Task, TAG_REQ, TAG_RESP, TAG_SRV};
use crate::queue::WorkQueue;

/// How a server treats tasks whose holder died or reported failure.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Times a task may be re-run after its first attempt before it is
    /// quarantined. 0 means never retry.
    pub max_retries: u32,
    /// Priority subtracted per accumulated attempt when a task is
    /// requeued, so repeatedly failing work drifts behind fresh work
    /// instead of hot-looping at the head of the queue.
    pub priority_penalty: i32,
    /// If set, a lease older than this is revoked and its task requeued
    /// even though the holder still looks alive. `None` (the default)
    /// trusts liveness detection alone, which preserves exactly-once
    /// delivery for slow-but-alive clients.
    pub lease_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            priority_penalty: 1,
            lease_timeout: None,
        }
    }
}

/// Tunables for the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Receive timeout pacing idle actions (steals, termination polls).
    pub poll_interval: Duration,
    /// Whether servers steal work from each other. Ablation E5 turns this
    /// off to measure what load balancing buys.
    pub steal_enabled: bool,
    /// Priority assigned to data-close notification tasks; the default
    /// outranks all user work so dataflow progress is never queued behind
    /// bulk tasks.
    pub notify_priority: i32,
    /// Retry/requeue policy for failed tasks and dead clients.
    pub retry: RetryPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_micros(200),
            steal_enabled: true,
            notify_priority: i32::MAX,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters a server reports when it shuts down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Tasks accepted via put or forward.
    pub tasks_accepted: u64,
    /// Tasks handed to clients.
    pub tasks_delivered: u64,
    /// Steal requests this server sent.
    pub steals_attempted: u64,
    /// Steal requests that returned at least one task.
    pub steals_successful: u64,
    /// Tasks obtained by stealing.
    pub tasks_stolen: u64,
    /// Tasks donated to thieves.
    pub tasks_donated: u64,
    /// Data operations served.
    pub data_ops: u64,
    /// Close notifications generated.
    pub notifications: u64,
    /// Tasks requeued because their holder died mid-execution.
    pub tasks_requeued: u64,
    /// Tasks requeued after the holder reported a contained failure.
    pub tasks_retried: u64,
    /// Tasks dropped after exhausting their retry budget.
    pub tasks_quarantined: u64,
    /// Malformed or unexpected messages survived (not panicked on).
    pub protocol_errors: u64,
    /// Client ranks of this server observed to have died.
    pub ranks_failed: u64,
    /// Tasks delivered beyond the first of a `DeliverBatch` — round trips
    /// the prefetch pipeline saved clients.
    pub tasks_prefetched: u64,
}

/// An in-flight task: delivered to a client, not yet acknowledged.
struct Lease {
    task: Task,
    since: Instant,
}

struct Server {
    comm: Comm,
    layout: Layout,
    config: ServerConfig,
    queue: WorkQueue,
    store: DataStore,
    /// Parked GET requests in arrival order.
    parked: Vec<(Rank, Vec<u32>)>,
    finished: HashSet<Rank>,
    /// Tasks delivered to clients and not yet acknowledged, keyed by the
    /// holder's rank. A client may hold a whole prefetched batch; leases
    /// are released oldest-first because clients acknowledge in execution
    /// order (which is delivery order).
    in_flight: HashMap<Rank, VecDeque<Lease>>,
    /// Stale-ack credits per rank: when leases are revoked by timeout the
    /// tasks are requeued immediately, but the (possibly still alive)
    /// holder will eventually acknowledge them. That many subsequent acks
    /// from the rank refer to revoked leases and must be swallowed, not
    /// matched against newer leases.
    lease_revoked: HashMap<Rank, usize>,
    /// Tasks dropped after exhausting their retry budget, kept for
    /// post-mortem inspection.
    quarantined: Vec<Task>,
    /// One human-readable report per quarantined task (the error of its
    /// final attempt); shipped to clients with the shutdown notice.
    quarantine_reports: Vec<String>,
    my_client_count: usize,
    epoch: u64,
    fwd_out: u64,
    fwd_in: u64,
    outstanding_steal: bool,
    steal_victim_cursor: usize,
    /// Consecutive empty steal responses in the current sweep.
    empty_steal_streak: usize,
    /// Idle ticks to wait before sweeping victims again after a fully
    /// empty sweep. Prevents the empty-steal ping-pong from starving the
    /// termination detector while still retrying for late remote work.
    steal_backoff: u32,
    // Master-only termination state.
    check_round: u64,
    check_responses: HashMap<Rank, (bool, u64, u64, u64)>,
    check_in_flight: bool,
    prev_snapshot: Option<Vec<u64>>,
    stats: ServerStats,
}

/// Run the ADLB server loop on this rank until global termination.
pub fn serve(comm: Comm, layout: Layout, config: ServerConfig) -> ServerStats {
    assert!(layout.is_server(comm.rank()), "serve() on a client rank");
    let my_client_count = layout.clients_of(comm.rank()).len();
    let mut s = Server {
        comm,
        layout,
        config,
        queue: WorkQueue::new(),
        store: DataStore::new(),
        parked: Vec::new(),
        finished: HashSet::new(),
        in_flight: HashMap::new(),
        lease_revoked: HashMap::new(),
        quarantined: Vec::new(),
        quarantine_reports: Vec::new(),
        my_client_count,
        epoch: 0,
        fwd_out: 0,
        fwd_in: 0,
        outstanding_steal: false,
        steal_victim_cursor: 0,
        empty_steal_streak: 0,
        steal_backoff: 0,
        check_round: 0,
        check_responses: HashMap::new(),
        check_in_flight: false,
        prev_snapshot: None,
        stats: ServerStats::default(),
    };
    s.run()
}

impl Server {
    fn run(&mut self) -> ServerStats {
        loop {
            match self
                .comm
                .recv_timeout(Src::Any, TagSel::Any, self.config.poll_interval)
            {
                // Shared decode: task payloads alias the arrival buffer
                // instead of being copied out of it (zero-copy receive).
                Some(m) if m.tag == TAG_REQ => match Request::decode_shared(&m.data) {
                    Ok(req) => self.handle_request(m.source, req),
                    Err(e) => self.protocol_error(format_args!(
                        "undecodable request from rank {}: {e:?}",
                        m.source
                    )),
                },
                Some(m) if m.tag == TAG_SRV => match ServerMsg::decode_shared(&m.data) {
                    Ok(msg) => {
                        if self.handle_server_msg(m.source, msg) {
                            return self.shutdown();
                        }
                    }
                    Err(e) => self.protocol_error(format_args!(
                        "undecodable server message from rank {}: {e:?}",
                        m.source
                    )),
                },
                Some(m) => self.protocol_error(format_args!(
                    "unexpected tag {} from rank {}",
                    m.tag, m.source
                )),
                None => self.idle_actions(),
            }
        }
    }

    /// Count and log a malformed or unexpected message instead of taking
    /// the whole server rank down with it. A confused peer is the peer's
    /// bug; this server must keep serving its other clients.
    fn protocol_error(&mut self, what: std::fmt::Arguments<'_>) {
        self.stats.protocol_errors += 1;
        eprintln!("adlb server {}: protocol error: {what}", self.comm.rank());
    }

    fn respond(&self, rank: Rank, resp: Response) {
        self.comm.send(rank, TAG_RESP, resp.encode());
    }

    fn quiescent(&self) -> bool {
        self.parked.len() + self.finished.len() == self.my_client_count
            && self.queue.is_empty()
            && !self.outstanding_steal
            && self.in_flight.values().all(VecDeque::is_empty)
    }

    // -- task routing ----------------------------------------------------

    /// Send a task toward its home: targeted tasks go to the target's
    /// server; untargeted tasks stay here.
    fn route_task(&mut self, task: Task) {
        if let Some(target) = task.target {
            let home = self.layout.server_of(target);
            if home != self.comm.rank() {
                self.fwd_out += 1;
                self.comm
                    .send(home, TAG_SRV, ServerMsg::Forward(task).encode());
                return;
            }
        }
        self.accept_task(task);
    }

    /// Deliver to a parked client or enqueue locally.
    fn accept_task(&mut self, task: Task) {
        self.stats.tasks_accepted += 1;
        // A task targeted at a rank that already died (e.g. a forward that
        // raced the death sweep) must be rescued here, or it would sit in
        // the targeted queue forever and block termination.
        let task = match task.target {
            Some(t) if !self.comm.is_alive(t) => match self.retarget_for_dead(task, t) {
                Some(task) => task,
                None => return,
            },
            _ => task,
        };
        // New work ends any steal backoff: there may be more where this
        // came from.
        self.steal_backoff = 0;
        self.empty_steal_streak = 0;
        let slot = self.parked.iter().position(|(rank, types)| {
            types.contains(&task.work_type)
                && match task.target {
                    Some(t) => *rank == t,
                    None => true,
                }
        });
        match slot {
            Some(i) => {
                let (rank, _) = self.parked.remove(i);
                self.deliver(rank, task);
            }
            None => self.queue.push(task),
        }
    }

    /// Hand a task to a client and open a lease on it. The lease stays
    /// open until the client acknowledges (TaskDone), dies, or — if a
    /// lease timeout is configured — times out.
    fn deliver(&mut self, rank: Rank, task: Task) {
        self.stats.tasks_delivered += 1;
        self.in_flight.entry(rank).or_default().push_back(Lease {
            task: task.clone(),
            since: Instant::now(),
        });
        self.respond(rank, Response::DeliverTask(task));
    }

    /// Hand a whole prefetch batch to a client in one response, opening a
    /// lease per task in delivery order. Clients acknowledge in the same
    /// order, so releases always pop the front of the deque.
    fn deliver_batch(&mut self, rank: Rank, tasks: Vec<Task>) {
        debug_assert!(!tasks.is_empty());
        if tasks.len() == 1 {
            return self.deliver(rank, tasks.into_iter().next().unwrap());
        }
        self.stats.tasks_delivered += tasks.len() as u64;
        self.stats.tasks_prefetched += tasks.len() as u64 - 1;
        let now = Instant::now();
        let leases = self.in_flight.entry(rank).or_default();
        for t in &tasks {
            leases.push_back(Lease {
                task: t.clone(),
                since: now,
            });
        }
        self.respond(rank, Response::DeliverBatch(tasks));
    }

    /// A failed task comes back: retry it with a priority penalty, or
    /// quarantine it once its budget is spent. `death` selects which
    /// counter records the requeue (holder died vs. reported failure);
    /// `error` is what ended this attempt.
    fn retry_or_quarantine(&mut self, mut task: Task, death: bool, error: &str) {
        task.attempts += 1;
        if task.attempts > self.config.retry.max_retries {
            self.stats.tasks_quarantined += 1;
            let report = format!(
                "task (work_type {}) quarantined after {} attempts; last error: {}",
                task.work_type, task.attempts, error
            );
            eprintln!("adlb server {}: {report}", self.comm.rank());
            self.quarantine_reports.push(report);
            self.quarantined.push(task);
            return;
        }
        if death {
            self.stats.tasks_requeued += 1;
        } else {
            self.stats.tasks_retried += 1;
        }
        let penalty = self
            .config
            .retry
            .priority_penalty
            .saturating_mul(task.attempts as i32);
        task.priority = task.priority.saturating_sub(penalty);
        // A requeue is fresh activity for termination detection.
        self.epoch += 1;
        self.accept_task(task);
    }

    /// Prepare a task bound for (or held by) the dead rank `dead` for
    /// requeueing. A close notification for a dead rank is meaningless
    /// and dropped (`None`); other targeted tasks are untargeted so a
    /// survivor can run them.
    fn retarget_for_dead(&mut self, mut task: Task, dead: Rank) -> Option<Task> {
        if task.target == Some(dead) {
            if task.work_type == crate::msg::WORK_TYPE_NOTIFY {
                return None;
            }
            task.target = None;
        }
        Some(task)
    }

    /// Notice dead clients of this server: mark them permanently finished
    /// (they will never park again), requeue any task they held, and
    /// rescue tasks still queued with the dead rank as target.
    fn detect_dead_clients(&mut self) {
        let mine: Vec<Rank> = self
            .layout
            .clients_of(self.comm.rank())
            .iter()
            .copied()
            .filter(|r| !self.finished.contains(r) && !self.comm.is_alive(*r))
            .collect();
        for rank in mine {
            self.stats.ranks_failed += 1;
            self.epoch += 1;
            eprintln!(
                "adlb server {}: client rank {rank} died; requeueing its work",
                self.comm.rank()
            );
            self.finished.insert(rank);
            self.parked.retain(|(r, _)| *r != rank);
            self.lease_revoked.remove(&rank);
            // The dead rank's ENTIRE lease deque requeues: with prefetch a
            // client may die holding a whole undone batch, and every one
            // of those tasks must run somewhere else.
            if let Some(leases) = self.in_flight.remove(&rank) {
                for lease in leases {
                    if let Some(task) = self.retarget_for_dead(lease.task, rank) {
                        self.retry_or_quarantine(task, true, &format!("holder rank {rank} died"));
                    }
                }
            }
            let stranded = self.queue.drain_targeted(rank);
            for t in stranded {
                if let Some(t) = self.retarget_for_dead(t, rank) {
                    self.accept_task(t);
                }
            }
        }
    }

    /// Revoke leases older than the configured timeout (if any).
    fn check_lease_timeouts(&mut self) {
        let Some(timeout) = self.config.retry.lease_timeout else {
            return;
        };
        let now = Instant::now();
        let expired: Vec<Rank> = self
            .in_flight
            .iter()
            .filter(|(_, d)| {
                d.front()
                    .is_some_and(|l| now.duration_since(l.since) > timeout)
            })
            .map(|(r, _)| *r)
            .collect();
        for rank in expired {
            // Revoke the rank's whole deque, not just the expired front:
            // acks are matched FIFO, so releasing later leases while the
            // front is requeued would misattribute every following ack.
            let leases = self.in_flight.remove(&rank).expect("expired lease");
            eprintln!(
                "adlb server {}: {} lease(s) on rank {rank} expired; requeueing",
                self.comm.rank(),
                leases.len()
            );
            // The holder may still be alive and eventually ack; that many
            // acks are now stale and must not release newer leases.
            *self.lease_revoked.entry(rank).or_insert(0) += leases.len();
            for lease in leases {
                self.retry_or_quarantine(
                    lease.task,
                    true,
                    &format!("lease on rank {rank} expired"),
                );
            }
        }
    }

    // -- client requests ---------------------------------------------------

    fn handle_request(&mut self, source: Rank, req: Request) {
        self.epoch += 1;
        match req {
            Request::Put(task) => {
                self.route_task(task);
                self.respond(source, Response::Ok);
            }
            Request::PutBatch(tasks) => {
                // Each task routes exactly as if it had arrived alone; the
                // batch shares one wire message and one ack.
                for task in tasks {
                    self.route_task(task);
                }
                self.respond(source, Response::Ok);
            }
            Request::Get {
                work_types,
                max_tasks,
            } => {
                match self.queue.pop_for(source, &work_types) {
                    Some(first) => {
                        let cap = max_tasks.max(1) as usize;
                        if cap == 1 {
                            self.deliver(source, first);
                        } else {
                            let mut batch = vec![first];
                            while batch.len() < cap {
                                match self.queue.pop_for(source, &work_types) {
                                    Some(t) => batch.push(t),
                                    None => break,
                                }
                            }
                            self.deliver_batch(source, batch);
                        }
                    }
                    None => {
                        self.parked.push((source, work_types));
                        // An empty queue with parked clients is the steal
                        // trigger; don't wait for the poll timeout.
                        self.try_steal();
                    }
                }
            }
            Request::TaskDone { ok, error } => {
                self.handle_acks(source, vec![(ok, error)]);
            }
            Request::TaskDoneBatch { results } => {
                self.handle_acks(source, results);
            }
            Request::Finished => {
                self.finished.insert(source);
                self.parked.retain(|(r, _)| *r != source);
            }
            Request::DataCreate { id, type_tag } => {
                self.stats.data_ops += 1;
                let resp = match self.store.create(id, type_tag) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataStore { id, value } => {
                self.stats.data_ops += 1;
                match self.store.store(id, value) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
            Request::DataRetrieve { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.retrieve(id) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataSubscribe { id, rank } => {
                self.stats.data_ops += 1;
                let resp = match self.store.subscribe(id, rank) {
                    Ok(closed) => Response::Bool(closed),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataInsert { id, key, value } => {
                self.stats.data_ops += 1;
                let resp = match self.store.insert(id, &key, value) {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataLookup { id, key } => {
                self.stats.data_ops += 1;
                let resp = match self.store.lookup(id, &key) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataEnumerate { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.enumerate(id) {
                    Ok(pairs) => Response::Pairs(pairs),
                    Err(e) => Response::Error(e.message),
                };
                self.respond(source, resp);
            }
            Request::DataClose { id } => {
                self.stats.data_ops += 1;
                match self.store.close(id) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
            Request::DataExists { id } => {
                self.stats.data_ops += 1;
                self.respond(source, Response::Bool(self.store.exists_closed(id)));
            }
            Request::DataIncrWriters { id, delta } => {
                self.stats.data_ops += 1;
                match self.store.incr_writers(id, delta) {
                    Ok(subs) => {
                        self.notify_all(id, subs);
                        self.respond(source, Response::Ok);
                    }
                    Err(e) => self.respond(source, Response::Error(e.message)),
                }
            }
        }
    }

    /// Release leases for a batch of acknowledgements from `source`, in
    /// order. Each entry either consumes a stale-ack credit (its lease was
    /// already revoked and the task requeued) or releases the oldest open
    /// lease; failed results feed the retry/quarantine policy.
    fn handle_acks(&mut self, source: Rank, results: Vec<(bool, String)>) {
        for (ok, error) in results {
            if let Some(stale) = self.lease_revoked.get_mut(&source) {
                *stale -= 1;
                if *stale == 0 {
                    self.lease_revoked.remove(&source);
                }
                continue;
            }
            match self
                .in_flight
                .get_mut(&source)
                .and_then(VecDeque::pop_front)
            {
                Some(lease) => {
                    if !ok {
                        self.retry_or_quarantine(lease.task, false, &error);
                    }
                }
                None => {
                    self.protocol_error(format_args!("task ack from rank {source} with no lease"))
                }
            }
        }
        if self.in_flight.get(&source).is_some_and(VecDeque::is_empty) {
            self.in_flight.remove(&source);
        }
    }

    /// Turn a datum close into targeted high-priority notification tasks.
    fn notify_all(&mut self, id: u64, subscribers: Vec<Rank>) {
        for rank in subscribers {
            self.stats.notifications += 1;
            let task = Task::new(
                crate::msg::WORK_TYPE_NOTIFY,
                self.config.notify_priority,
                Some(rank),
                Bytes::copy_from_slice(&id.to_le_bytes()),
            );
            self.route_task(task);
        }
    }

    // -- server messages ---------------------------------------------------

    /// Returns true when this server must shut down.
    fn handle_server_msg(&mut self, source: Rank, msg: ServerMsg) -> bool {
        match msg {
            ServerMsg::Forward(task) => {
                self.epoch += 1;
                self.fwd_in += 1;
                self.accept_task(task);
            }
            ServerMsg::StealReq {
                thief,
                work_types,
                need,
            } => {
                let tasks = self.queue.steal(&work_types, need as usize);
                // Empty steal traffic must not perturb the epoch, or the
                // steal retry loop would keep termination detection from
                // ever seeing two stable rounds.
                if !tasks.is_empty() {
                    self.epoch += 1;
                }
                self.fwd_out += tasks.len() as u64;
                self.stats.tasks_donated += tasks.len() as u64;
                self.comm
                    .send(thief, TAG_SRV, ServerMsg::StealResp { tasks }.encode());
            }
            ServerMsg::StealResp { tasks } => {
                self.outstanding_steal = false;
                self.fwd_in += tasks.len() as u64;
                if tasks.is_empty() {
                    // Try the next victim on the next idle tick; after a
                    // fully empty sweep, back off.
                    self.steal_victim_cursor += 1;
                    self.empty_steal_streak += 1;
                    if self.empty_steal_streak >= self.layout.servers - 1 {
                        self.empty_steal_streak = 0;
                        self.steal_backoff = 50;
                    }
                } else {
                    self.epoch += 1;
                    self.empty_steal_streak = 0;
                    self.stats.steals_successful += 1;
                    self.stats.tasks_stolen += tasks.len() as u64;
                    for t in tasks {
                        self.accept_task(t);
                    }
                    // The victim clearly has work: if clients are still
                    // starved, go straight back for more instead of
                    // pacing the next attempt on the poll timeout.
                    self.try_steal();
                }
            }
            ServerMsg::Check { round } => {
                // Termination polls do not bump the epoch: they must not
                // mask real quiescence.
                let resp = ServerMsg::CheckResp {
                    round,
                    quiescent: self.quiescent(),
                    epoch: self.epoch,
                    fwd_out: self.fwd_out,
                    fwd_in: self.fwd_in,
                };
                self.comm.send(source, TAG_SRV, resp.encode());
            }
            ServerMsg::CheckResp {
                round,
                quiescent,
                epoch,
                fwd_out,
                fwd_in,
            } => {
                if round == self.check_round {
                    self.check_responses
                        .insert(source, (quiescent, epoch, fwd_out, fwd_in));
                    if self.check_responses.len() == self.layout.servers - 1 {
                        return self.evaluate_check_round();
                    }
                }
            }
            ServerMsg::Shutdown => return true,
        }
        false
    }

    // -- idle actions ------------------------------------------------------

    fn idle_actions(&mut self) {
        // Fault handling first: dead clients must be noticed (and their
        // work requeued) before quiescence is evaluated, or termination
        // would wait forever on a rank that will never park.
        self.detect_dead_clients();
        self.check_lease_timeouts();
        // Termination check next: a fresh steal attempt would otherwise
        // mark this server non-quiescent on every tick.
        if self.comm.rank() == self.layout.master_server()
            && !self.check_in_flight
            && self.quiescent()
        {
            self.start_check_round();
        }
        if self.steal_backoff > 0 {
            self.steal_backoff -= 1;
            return;
        }
        self.try_steal();
    }

    fn try_steal(&mut self) {
        if !self.config.steal_enabled
            || self.steal_backoff > 0
            || self.outstanding_steal
            || self.layout.servers < 2
            || self.parked.is_empty()
            || !self.queue.is_empty()
        {
            return;
        }
        // Union of work types our parked clients want.
        let mut types: Vec<u32> = Vec::new();
        for (_, ts) in &self.parked {
            for t in ts {
                if !types.contains(t) {
                    types.push(*t);
                }
            }
        }
        let others: Vec<Rank> = self
            .layout
            .server_ranks()
            .filter(|r| *r != self.comm.rank())
            .collect();
        let victim = others[self.steal_victim_cursor % others.len()];
        self.outstanding_steal = true;
        self.stats.steals_attempted += 1;
        self.comm.send(
            victim,
            TAG_SRV,
            ServerMsg::StealReq {
                thief: self.comm.rank(),
                work_types: types,
                // Sizing hint: at least one task per starved client.
                need: self.parked.len() as u32,
            }
            .encode(),
        );
    }

    fn start_check_round(&mut self) {
        self.check_round += 1;
        self.check_responses.clear();
        self.check_in_flight = true;
        for r in self.layout.server_ranks() {
            if r != self.comm.rank() {
                self.comm.send(
                    r,
                    TAG_SRV,
                    ServerMsg::Check {
                        round: self.check_round,
                    }
                    .encode(),
                );
            }
        }
        if self.layout.servers == 1 {
            // No peers to wait for: decide now. On termination, send the
            // Shutdown sentinel to ourselves so run() exits through the
            // same message-driven path as multi-server mode.
            if self.evaluate_check_round() {
                self.comm
                    .send(self.comm.rank(), TAG_SRV, ServerMsg::Shutdown.encode());
            }
        }
    }

    /// All responses for the current round are in; decide.
    fn evaluate_check_round(&mut self) -> bool {
        self.check_in_flight = false;
        let me = self.comm.rank();
        let mut all_quiescent = self.quiescent();
        let mut fwd_out_sum = self.fwd_out;
        let mut fwd_in_sum = self.fwd_in;
        let mut snapshot: Vec<u64> = Vec::with_capacity(self.layout.servers);
        snapshot.push(self.epoch);
        for r in self.layout.server_ranks() {
            if r == me {
                continue;
            }
            let (q, e, fo, fi) = self.check_responses[&r];
            all_quiescent &= q;
            fwd_out_sum += fo;
            fwd_in_sum += fi;
            snapshot.push(e);
        }
        let stable = self.prev_snapshot.as_deref() == Some(&snapshot[..]);
        self.prev_snapshot = Some(snapshot);
        if all_quiescent && fwd_out_sum == fwd_in_sum && stable {
            for r in self.layout.server_ranks() {
                if r != me {
                    self.comm.send(r, TAG_SRV, ServerMsg::Shutdown.encode());
                }
            }
            return true;
        }
        false
    }

    fn shutdown(&mut self) -> ServerStats {
        // Cap the reports shipped per client; the full list stays in
        // `self.quarantined` for post-mortem inspection.
        let reports: Vec<String> = self.quarantine_reports.iter().take(8).cloned().collect();
        for (rank, _) in std::mem::take(&mut self.parked) {
            self.respond(
                rank,
                Response::NoMore {
                    quarantined: reports.clone(),
                },
            );
        }
        self.stats
    }
}
