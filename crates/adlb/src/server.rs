//! The ADLB server loop.
//!
//! A server owns: the work queues for its clients, one shard of the data
//! store, the work-stealing policy, and (on the master server) the
//! termination-detection protocol. Everything is message-driven; the only
//! timer is a short receive timeout that paces steal attempts, heartbeats
//! and termination polls.
//!
//! With `replication >= 2` the server additionally mirrors its
//! recoverable state (a [`Ledger`]) on its ring successors, streams every
//! state change to them *before* any client-visible response leaves this
//! rank (write-through), and participates in the heartbeat membership
//! protocol — see [`crate::replica`] and [`crate::membership`]. When a
//! peer dies, the first live successor merges the dead peer's ledger into
//! its own live state and serves the shard in its place; the other
//! servers re-route their in-flight task transfers and carry on.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use bytes::Bytes;
use mpisim::{trace, Comm, Rank, Src, TagSel, WireReader, WireWriter};

use crate::checkpoint::{
    restore_home, split_for_home, split_history_for_home, CheckpointConfig, CheckpointSink,
};
use crate::datastore::DataStore;
use crate::layout::Layout;
use crate::membership::Membership;
use crate::msg::{
    seal_seq, Request, Response, ServerMsg, Task, TAG_REQ, TAG_RESP, TAG_SRV, WORK_TYPE_WORK,
};
use crate::queue::WorkQueue;
use crate::replica::{Ledger, ReplOp, Xfer};
use crate::tenant::{TenantSched, TenantSpec, TenantStats};

/// How a server treats tasks whose holder died or reported failure.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Times a task may be re-run after its first attempt before it is
    /// quarantined. 0 means never retry.
    pub max_retries: u32,
    /// Priority subtracted per accumulated attempt when a task is
    /// requeued, so repeatedly failing work drifts behind fresh work
    /// instead of hot-looping at the head of the queue.
    pub priority_penalty: i32,
    /// A lease older than this is revoked and its task requeued even
    /// though the holder still looks alive. On by default (30 s — far
    /// beyond any healthy task round trip, so it only fires on truly
    /// wedged holders); set `None` to trust liveness detection alone,
    /// which preserves exactly-once delivery for arbitrarily slow
    /// clients.
    pub lease_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            priority_penalty: 1,
            lease_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Tunables for the server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Receive timeout pacing idle actions (steals, termination polls).
    pub poll_interval: Duration,
    /// Whether servers steal work from each other. Ablation E5 turns this
    /// off to measure what load balancing buys.
    pub steal_enabled: bool,
    /// Priority assigned to data-close notification tasks; the default
    /// outranks all user work so dataflow progress is never queued behind
    /// bulk tasks.
    pub notify_priority: i32,
    /// Retry/requeue policy for failed tasks and dead clients.
    pub retry: RetryPolicy,
    /// Copies of each server's recoverable state, counting the primary.
    /// 1 disables replication (a dead server's shard is lost and every
    /// survivor winds the run down with a diagnosis); `R >= 2` survives
    /// `R - 1` server deaths with full failover.
    pub replication: usize,
    /// How often an otherwise-idle server beacons liveness to its peers.
    pub heartbeat_interval: Duration,
    /// Peer silence beyond this marks it suspect; suspects are confirmed
    /// against the transport's liveness oracle before failover starts.
    pub suspect_after: Duration,
    /// Post-failover re-replication: when a death reshapes the ring,
    /// stream full replica state to new (and, after a promotion, stale)
    /// holders in bounded chunks so `replication` live copies are
    /// restored mid-run. Off falls back to one-shot snapshots to
    /// first-seen holders only — R stays degraded after a failover and
    /// a second death of the promoted shard's holders loses it.
    pub re_replicate: bool,
    /// Payload bytes per [`crate::msg::ServerMsg::ReplSync`] chunk.
    /// Smaller chunks interleave more with normal service at the cost of
    /// more round trips.
    pub sync_chunk: usize,
    /// Durable checkpoint/WAL tier on the parallel filesystem. `None`
    /// (the default) keeps the pre-checkpoint behavior: losing every
    /// holder of a shard aborts the run. See [`CheckpointConfig`].
    pub checkpoint: Option<CheckpointConfig>,
    /// Declared tenants (weights and quotas) for multi-tenant runs.
    /// Empty keeps the single-program behavior: every task belongs to
    /// tenant 0, which is always admitted and always elected.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            poll_interval: Duration::from_micros(200),
            steal_enabled: true,
            notify_priority: i32::MAX,
            retry: RetryPolicy::default(),
            replication: 1,
            heartbeat_interval: Duration::from_millis(1),
            suspect_after: Duration::from_millis(10),
            re_replicate: true,
            sync_chunk: 16 * 1024,
            checkpoint: None,
            tenants: Vec::new(),
        }
    }
}

/// Counters a server reports when it shuts down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Tasks accepted via put or forward.
    pub tasks_accepted: u64,
    /// Tasks handed to clients.
    pub tasks_delivered: u64,
    /// Steal requests this server sent.
    pub steals_attempted: u64,
    /// Steal requests that returned at least one task.
    pub steals_successful: u64,
    /// Tasks obtained by stealing.
    pub tasks_stolen: u64,
    /// Tasks donated to thieves.
    pub tasks_donated: u64,
    /// Data operations served.
    pub data_ops: u64,
    /// Close notifications generated.
    pub notifications: u64,
    /// Tasks requeued because their holder died mid-execution.
    pub tasks_requeued: u64,
    /// Tasks requeued after the holder reported a contained failure.
    pub tasks_retried: u64,
    /// Tasks dropped after exhausting their retry budget.
    pub tasks_quarantined: u64,
    /// Malformed or unexpected messages survived (not panicked on).
    pub protocol_errors: u64,
    /// Client ranks of this server observed to have died.
    pub ranks_failed: u64,
    /// Tasks delivered beyond the first of a `DeliverBatch` — round trips
    /// the prefetch pipeline saved clients.
    pub tasks_prefetched: u64,
    /// Dead-server shards this server promoted and took over.
    pub failovers: u64,
    /// Replication ops shipped to replica holders (write amplification:
    /// one op counted once per holder it was sent to).
    pub repl_ops: u64,
    /// Completed full-ledger sync streams (startup seeding plus
    /// post-failover re-replication).
    pub repl_syncs: u64,
    /// Serialized ledger bytes acknowledged by sync receivers.
    pub repl_sync_bytes: u64,
    /// Microseconds from a confirmed server death until this server's
    /// last outstanding sync stream completed (its share of the
    /// replication factor restored), summed over this server's own
    /// failovers. Across servers this is a wall-clock window, not a
    /// volume: [`ServerStats::merge`] takes the max, never a sum.
    pub r_restore_micros: u64,
    /// WAL records flushed to the durable tier.
    pub ckpt_records: u64,
    /// Replication ops made durable (the records' contents).
    pub ckpt_ops: u64,
    /// Checkpoint segments written (WAL compactions).
    pub ckpt_segments: u64,
    /// Bytes written to the durable tier (WAL records plus segments).
    pub ckpt_bytes: u64,
    /// Shards restored from the durable tier (mid-run total-replica-loss
    /// recoveries plus whole-world resumes).
    pub pfs_restores: u64,
    /// Microseconds spent restoring shards from the durable tier. A
    /// wall-clock window like `r_restore_micros`: merged by max.
    pub ckpt_restore_micros: u64,
}

impl ServerStats {
    /// Fold `other` into `self`. Counters add; `r_restore_micros` is a
    /// duration, so the merged value is the max (the slowest server
    /// bounds the run's exposure window — summing it across servers
    /// would turn a duration into a meaningless total).
    ///
    /// The exhaustive destructuring is the point: adding a field to
    /// `ServerStats` without deciding how it aggregates is a compile
    /// error here, where the old hand-maintained list in
    /// `core::result::server_totals` silently dropped new fields.
    pub fn merge(&mut self, other: &ServerStats) {
        let ServerStats {
            tasks_accepted,
            tasks_delivered,
            steals_attempted,
            steals_successful,
            tasks_stolen,
            tasks_donated,
            data_ops,
            notifications,
            tasks_requeued,
            tasks_retried,
            tasks_quarantined,
            protocol_errors,
            ranks_failed,
            tasks_prefetched,
            failovers,
            repl_ops,
            repl_syncs,
            repl_sync_bytes,
            r_restore_micros,
            ckpt_records,
            ckpt_ops,
            ckpt_segments,
            ckpt_bytes,
            pfs_restores,
            ckpt_restore_micros,
        } = *other;
        self.tasks_accepted += tasks_accepted;
        self.tasks_delivered += tasks_delivered;
        self.steals_attempted += steals_attempted;
        self.steals_successful += steals_successful;
        self.tasks_stolen += tasks_stolen;
        self.tasks_donated += tasks_donated;
        self.data_ops += data_ops;
        self.notifications += notifications;
        self.tasks_requeued += tasks_requeued;
        self.tasks_retried += tasks_retried;
        self.tasks_quarantined += tasks_quarantined;
        self.protocol_errors += protocol_errors;
        self.ranks_failed += ranks_failed;
        self.tasks_prefetched += tasks_prefetched;
        self.failovers += failovers;
        self.repl_ops += repl_ops;
        self.repl_syncs += repl_syncs;
        self.repl_sync_bytes += repl_sync_bytes;
        self.r_restore_micros = self.r_restore_micros.max(r_restore_micros);
        self.ckpt_records += ckpt_records;
        self.ckpt_ops += ckpt_ops;
        self.ckpt_segments += ckpt_segments;
        self.ckpt_bytes += ckpt_bytes;
        self.pfs_restores += pfs_restores;
        self.ckpt_restore_micros = self.ckpt_restore_micros.max(ckpt_restore_micros);
    }
}

/// Everything a server hands back at shutdown: counters, the stdout
/// streams its clients uploaded, and which streams are known-truncated
/// (their rank died mid-run).
#[derive(Debug, Clone, Default)]
pub struct ServerOutcome {
    /// Monitoring counters.
    pub stats: ServerStats,
    /// Accumulated stdout per `(client rank, tenant)`, sorted.
    pub streams: Vec<(Rank, u32, String)>,
    /// Ranks whose stream may be missing output (the rank died, or its
    /// unreplicated stream died with its server).
    pub truncated: Vec<Rank>,
    /// Per-tenant admission/fairness counters, sorted by tenant id.
    pub tenant_rows: Vec<(u32, TenantStats)>,
}

/// An in-flight task: delivered to a client, not yet acknowledged.
struct Lease {
    task: Task,
    since: Instant,
    /// When the server first accepted the task (µs on this server's
    /// trace clock; 0 untraced). In-memory only — the replica ledger
    /// stores leases as raw tasks, so nothing wire-visible changes.
    accepted_us: u64,
}

/// A parked `Get`, waiting for matching work.
#[derive(Clone)]
struct Parked {
    rank: Rank,
    work_types: Vec<u32>,
    max_tasks: u32,
    /// Restrict untargeted deliveries to one tenant (a multi-tenant
    /// engine pulling only its own program's control tasks). Targeted
    /// tasks are always deliverable regardless.
    tenant: Option<u32>,
    /// The request's dedup seq — recorded (with the cached response) only
    /// when the `Get` is finally answered, so a re-sent copy of a parked
    /// `Get` after failover is processed fresh instead of dropped.
    seq: u64,
}

/// A write-ahead transfer awaiting its receiver's ack, plus where the
/// wire message was last sent (`None`: inherited from a dead peer's
/// ledger and not yet re-driven).
struct PendingXfer {
    x: Xfer,
    sent_to: Option<Rank>,
}

/// A full-ledger snapshot being streamed to one replica holder in
/// bounded chunks. `cursor` is the receiver-acknowledged high-water —
/// the resume point after any lost or superseded chunk.
struct OutSync {
    sync_id: u64,
    data: Bytes,
    cursor: usize,
    /// When the last chunk left; a stream stalled past the suspect
    /// window re-sends from the acked cursor (duplicates are harmless —
    /// the receiver ignores non-contiguous chunks and re-acks).
    last_sent: Instant,
    /// When the stream started (µs on the trace clock), for the
    /// `repl_sync` span recorded when the final ack retires it.
    started_us: u64,
}

/// A full-ledger snapshot arriving from one primary. Incremental ops
/// from the same primary that land mid-stream postdate its base snapshot
/// (per-pair FIFO delivery), so they are buffered and replayed on top of
/// the decoded base instead of being applied to the soon-replaced old
/// replica.
struct InSync {
    sync_id: u64,
    total: u64,
    buf: Vec<u8>,
    ops: Vec<ReplOp>,
}

struct Server {
    comm: Comm,
    layout: Layout,
    config: ServerConfig,
    queue: WorkQueue,
    store: DataStore,
    /// Parked GET requests in arrival order.
    parked: Vec<Parked>,
    finished: HashSet<Rank>,
    /// Clients this server is responsible for: its layout clients plus
    /// any adopted from dead peers.
    my_clients: HashSet<Rank>,
    /// Tasks delivered to clients and not yet acknowledged, keyed by the
    /// holder's rank. A client may hold a whole prefetched batch; leases
    /// are released oldest-first because clients acknowledge in execution
    /// order (which is delivery order).
    in_flight: HashMap<Rank, VecDeque<Lease>>,
    /// Stale-ack credits per rank: when leases are revoked by timeout the
    /// tasks are requeued immediately, but the (possibly still alive)
    /// holder will eventually acknowledge them. That many subsequent acks
    /// from the rank refer to revoked leases and must be swallowed, not
    /// matched against newer leases.
    lease_revoked: HashMap<Rank, usize>,
    /// Tasks dropped after exhausting their retry budget, kept for
    /// post-mortem inspection.
    quarantined: Vec<Task>,
    /// One human-readable report per quarantined task (the error of its
    /// final attempt); shipped to clients with the shutdown notice.
    quarantine_reports: Vec<String>,
    /// Per-client request dedup high-water mark (see [`ReplOp::SeqResp`]).
    client_seqs: HashMap<Rank, u64>,
    /// Cached encoded response for each client's last awaited request,
    /// re-sent verbatim when a failover makes the client repeat it.
    client_resps: HashMap<Rank, (u64, Bytes)>,
    /// Accumulated stdout stream per `(client, tenant)`.
    outputs: HashMap<(Rank, u32), String>,
    /// Ranks whose stream is known-incomplete.
    truncated: HashSet<Rank>,
    /// Admission controller + weighted fair scheduler.
    tenants: TenantSched,
    /// Tenant each client last identified with (learned from
    /// tenant-filtered `Get`s); tags close notifications sent to it.
    client_tenants: HashMap<Rank, u32>,
    // -- replication -----------------------------------------------------
    /// Peer failure detector (empty with one server).
    membership: Membership,
    /// Replica ledgers this server holds for its ring predecessors.
    ledgers: HashMap<Rank, Ledger>,
    /// Current replica holders for *this* server's ledger.
    repl_targets: Vec<Rank>,
    /// Chunked full-ledger streams to (re)seeded replica holders.
    outbound_syncs: HashMap<Rank, OutSync>,
    /// Chunked full-ledger streams arriving from primaries.
    inbound_syncs: HashMap<Rank, InSync>,
    /// Minimum [`Ledger::merges`] a copy of each peer's ledger must carry
    /// to be promotable: the number of promotions this server has
    /// observed that peer perform. When a peer merges a dead server's
    /// shard, every copy of its ledger snapshotted before the merge is
    /// missing that bulk import (write-through ops only cover mutations,
    /// not the merge itself) — such a copy must never be promoted, or the
    /// missing state would be lost silently and the run would hang on it.
    /// Version comparison rather than a boolean mark makes this immune to
    /// arrival order: a fresh resync that lands before this server even
    /// observes the triggering death still carries the higher version.
    required_merges: HashMap<Rank, u64>,
    /// How many dead peers' ledgers this server has merged into its own
    /// live state; stamped into every outgoing snapshot as
    /// [`Ledger::merges`].
    merges: u64,
    /// Dead servers whose shard another survivor merged: `e → p` means
    /// peer `p` promoted (or was expected to promote) dead server `e`'s
    /// shard, so `e`'s fate now travels with `p`'s ledger. When `p` dies
    /// the chain resolves with it: it rides along on a fresh copy of
    /// `p`'s ledger, or is lost with a stale/absent one.
    subsumed: HashMap<Rank, Rank>,
    /// Monotonic id for this server's outbound syncs; a restarted sync
    /// supersedes chunks of the previous one still in flight.
    next_sync_id: u64,
    /// Set when a failover starts sync streams, taken into
    /// [`ServerStats::r_restore_micros`] when the last one completes.
    r_restore_started: Option<Instant>,
    /// Trace-clock twin of `r_restore_started`, for the
    /// `failover_recovery` span.
    r_restore_started_us: u64,
    /// Write-ahead transfer entries not yet acked by their receiver.
    pending_xfers: Vec<PendingXfer>,
    /// Last used outbound transfer seq per destination home (origin=me).
    next_fseq: HashMap<Rank, u64>,
    /// Applied inbound transfer high-water per `(dest home, origin)`.
    xfer_applied: HashMap<(Rank, Rank), u64>,
    /// Homes whose shard was lost (died with no replica to promote).
    lost_homes: HashSet<Rank>,
    /// Winding down after an unrecoverable peer death (replication=1):
    /// every `Get` is answered `NoMore`, lost-shard data ops get benign
    /// defaults, and the server exits once its clients are accounted for.
    aborting: bool,
    /// The shard-loss diagnosis, attached to every `NoMore` so clients
    /// can fail the run instead of mistaking the wind-down for a clean
    /// finish.
    abort_reason: Option<String>,
    /// Global termination has been decided and this server is in its
    /// post-shutdown linger: every remaining `Get` is answered `NoMore`,
    /// and a peer death no longer aborts anything — the run already
    /// completed; failover now only re-delivers shutdown notices.
    shutdown: bool,
    /// Peers whose `Bye` (final message after their shutdown notices) has
    /// arrived. The linger ends when every live peer has said goodbye.
    byes: HashSet<Rank>,
    /// Clients adopted from a peer that died mid-shutdown whose terminal
    /// notices cannot be proven delivered (not marked finished in the
    /// merged replica). The linger must answer each one's retried request
    /// before exiting — otherwise the retry lands in an exited rank's
    /// mailbox and the client waits forever, since exited ranks still
    /// read alive.
    stranded: HashSet<Rank>,
    last_heartbeat: Instant,
    // -- transaction buffer ----------------------------------------------
    /// Replication ops of the message currently being handled; committed
    /// (sent to `repl_targets`) before any buffered send leaves.
    tx_ops: Vec<ReplOp>,
    /// Outbound messages of the current handler, flushed after the ops.
    /// The client-visible response is always pushed last, so a mid-handler
    /// kill can lose the response but never a replicated effect that the
    /// response would have acknowledged.
    tx_sends: Vec<(Rank, mpisim::Tag, Bytes)>,
    // -- work stealing ---------------------------------------------------
    outstanding_steal: bool,
    steal_victim: Option<Rank>,
    /// When the outstanding steal request left (trace clock, µs).
    steal_started_us: u64,
    steal_victim_cursor: usize,
    /// Consecutive empty steal responses in the current sweep.
    empty_steal_streak: usize,
    /// Idle ticks to wait before sweeping victims again after a fully
    /// empty sweep. Prevents the empty-steal ping-pong from starving the
    /// termination detector while still retrying for late remote work.
    steal_backoff: u32,
    // -- termination detection (master only) -----------------------------
    epoch: u64,
    fwd_out: u64,
    fwd_in: u64,
    check_round: u64,
    check_members: Vec<Rank>,
    check_responses: HashMap<Rank, (bool, u64, u64, u64)>,
    check_in_flight: bool,
    prev_snapshot: Option<Vec<u64>>,
    stats: ServerStats,
    // -- durable tier ------------------------------------------------------
    /// Write-behind WAL/checkpoint sink, present when the config enables
    /// the durable tier. While it holds unflushed ops, every outbound
    /// send is parked inside it (group commit): nothing observable may
    /// leave this rank before the state it reflects is durable.
    ckpt: Option<CheckpointSink>,
}

/// Run the ADLB server loop on this rank until global termination,
/// returning the monitoring counters. See [`serve_ext`] for the full
/// outcome (streamed client stdout included).
pub fn serve(comm: Comm, layout: Layout, config: ServerConfig) -> ServerStats {
    serve_ext(comm, layout, config).stats
}

/// Run the ADLB server loop on this rank until global termination.
pub fn serve_ext(comm: Comm, layout: Layout, config: ServerConfig) -> ServerOutcome {
    assert!(layout.is_server(comm.rank()), "serve() on a client rank");
    let me = comm.rank();
    let my_clients: HashSet<Rank> = layout.clients_of(me).into_iter().collect();
    let peers: Vec<Rank> = layout.server_ranks().filter(|r| *r != me).collect();
    let now = Instant::now();
    let membership = Membership::new(peers, config.suspect_after, now);
    let mut s = Server {
        comm,
        layout,
        queue: WorkQueue::new(),
        store: DataStore::new(),
        parked: Vec::new(),
        finished: HashSet::new(),
        my_clients,
        in_flight: HashMap::new(),
        lease_revoked: HashMap::new(),
        quarantined: Vec::new(),
        quarantine_reports: Vec::new(),
        client_seqs: HashMap::new(),
        client_resps: HashMap::new(),
        outputs: HashMap::new(),
        truncated: HashSet::new(),
        tenants: TenantSched::new(&config.tenants),
        client_tenants: HashMap::new(),
        membership,
        ledgers: HashMap::new(),
        repl_targets: Vec::new(),
        outbound_syncs: HashMap::new(),
        inbound_syncs: HashMap::new(),
        required_merges: HashMap::new(),
        merges: 0,
        subsumed: HashMap::new(),
        next_sync_id: 0,
        r_restore_started: None,
        r_restore_started_us: 0,
        pending_xfers: Vec::new(),
        next_fseq: HashMap::new(),
        xfer_applied: HashMap::new(),
        abort_reason: None,
        shutdown: false,
        byes: HashSet::new(),
        stranded: HashSet::new(),
        lost_homes: HashSet::new(),
        aborting: false,
        last_heartbeat: now,
        tx_ops: Vec::new(),
        tx_sends: Vec::new(),
        outstanding_steal: false,
        steal_victim: None,
        steal_started_us: 0,
        steal_victim_cursor: 0,
        empty_steal_streak: 0,
        steal_backoff: 0,
        epoch: 0,
        fwd_out: 0,
        fwd_in: 0,
        check_round: 0,
        check_members: Vec::new(),
        check_responses: HashMap::new(),
        check_in_flight: false,
        prev_snapshot: None,
        stats: ServerStats::default(),
        ckpt: config
            .checkpoint
            .as_ref()
            .map(|c| CheckpointSink::new(c, me)),
        config,
    };
    // A resume loads the shard's durable state before the ring forms, so
    // the initial replica streams below carry the restored state too.
    let resumed = s.resume_from_pfs();
    s.refresh_repl_targets(resumed);
    s.run()
}

impl Server {
    fn run(&mut self) -> ServerOutcome {
        loop {
            // Drain the pipe without blocking first: an empty pipe is the
            // group-commit flush point — batching has nothing more to
            // gain and every held send is pure added latency — and only
            // then wait out the poll interval.
            let next = self.comm.try_recv(Src::Any, TagSel::Any).or_else(|| {
                if self.ckpt.as_ref().is_some_and(|s| s.buffered() > 0) {
                    self.ckpt_flush(false);
                }
                self.comm
                    .recv_timeout(Src::Any, TagSel::Any, self.config.poll_interval)
            });
            match next {
                // Shared decode: task payloads alias the arrival buffer
                // instead of being copied out of it (zero-copy receive).
                Some(m) if m.tag == TAG_REQ => {
                    match Request::decode_shared(&m.data) {
                        Ok((req, seq)) => self.handle_request(m.source, req, seq),
                        Err(e) => self.protocol_error(format_args!(
                            "undecodable request from rank {}: {e:?}",
                            m.source
                        )),
                    }
                    self.commit_tx();
                }
                Some(m) if m.tag == TAG_SRV => {
                    if self.membership.is_dead(m.source) {
                        // A straggler (e.g. fault-delayed) message from a
                        // peer whose ledger was already merged: applying it
                        // now would double-apply its effects.
                        continue;
                    }
                    self.membership.heard(m.source, Instant::now());
                    match ServerMsg::decode_shared(&m.data) {
                        Ok(msg) => {
                            let shutdown = self.handle_server_msg(m.source, msg);
                            self.commit_tx();
                            if shutdown {
                                return self.finish_run();
                            }
                        }
                        Err(e) => self.protocol_error(format_args!(
                            "undecodable server message from rank {}: {e:?}",
                            m.source
                        )),
                    }
                }
                Some(m) => self.protocol_error(format_args!(
                    "unexpected tag {} from rank {}",
                    m.tag, m.source
                )),
                None => {
                    if self.idle_actions() {
                        return self.finish_run();
                    }
                    self.commit_tx();
                }
            }
            self.maybe_heartbeat();
        }
    }

    /// Count and log a malformed or unexpected message instead of taking
    /// the whole server rank down with it. A confused peer is the peer's
    /// bug; this server must keep serving its other clients.
    fn protocol_error(&mut self, what: std::fmt::Arguments<'_>) {
        self.stats.protocol_errors += 1;
        eprintln!("adlb server {}: protocol error: {what}", self.comm.rank());
    }

    // -- write-through transaction buffer --------------------------------

    /// Ship the current handler's replication ops to the replica holders,
    /// then flush its buffered sends. The order is the crash-consistency
    /// invariant: a kill can land between sends, so anything a peer or
    /// client is about to observe must already be on its way to the
    /// replicas.
    fn commit_tx(&mut self) {
        if !self.tx_ops.is_empty() {
            let ops = std::mem::take(&mut self.tx_ops);
            // The durable tier logs the same op stream the replicas get.
            if !self.repl_targets.is_empty() && !self.aborting {
                if let Some(sink) = &mut self.ckpt {
                    sink.log(&ops);
                }
                self.stats.repl_ops += (ops.len() * self.repl_targets.len()) as u64;
                let msg = ServerMsg::Repl { ops }.encode();
                for &t in &self.repl_targets.clone() {
                    self.comm.send(t, TAG_SRV, msg.clone());
                }
            } else if let Some(sink) = &mut self.ckpt {
                // No replica holders: the batch has no other consumer.
                sink.log_owned(ops);
            }
        }
        // Group commit: while ops sit unflushed in the WAL buffer, every
        // buffered send is held inside the sink — a response (or a task
        // transfer) must never be observable before the state it reflects
        // is durable, or a later restore-from-pfs would silently lose
        // effects another rank already acted on. With no buffered ops the
        // sends flow immediately (each client has at most one awaited
        // request in flight, so per-client response order is preserved).
        match &mut self.ckpt {
            Some(sink) if sink.buffered() > 0 => {
                sink.hold(&mut self.tx_sends);
                if sink.due_flush() || self.shutdown || self.aborting {
                    self.ckpt_flush(false);
                }
            }
            _ => {
                for (rank, tag, bytes) in std::mem::take(&mut self.tx_sends) {
                    self.comm.send(rank, tag, bytes);
                }
            }
        }
    }

    /// Flush the WAL buffer as one record, release every held send, and
    /// compact into a checkpoint segment when one is due (or forced —
    /// after a promotion, whose merged bulk never flows through the op
    /// stream, only a full snapshot captures it).
    fn ckpt_flush(&mut self, force_segment: bool) {
        let Some(mut sink) = self.ckpt.take() else {
            return;
        };
        let start_us = trace::now_us();
        let before = sink.records;
        let sends = sink.flush_wal();
        let wrote = sink.records > before;
        if force_segment || sink.due_segment() {
            let ledger = self.snapshot_ledger();
            sink.write_segment(&ledger);
        }
        self.stats.ckpt_records = sink.records;
        self.stats.ckpt_ops = sink.ops_logged;
        self.stats.ckpt_segments = sink.segments;
        self.stats.ckpt_bytes = sink.bytes_written;
        self.ckpt = Some(sink);
        for (rank, tag, bytes) in sends {
            self.comm.send(rank, tag, bytes);
        }
        if wrote || force_segment {
            trace::record_since(trace::KIND_CKPT_FLUSH, self.comm.rank() as u64, start_us);
        }
    }

    /// Make the post-promotion state durable and leave redirect
    /// tombstones: the dead homes' shards now live in this server's
    /// checkpoint, and a whole-world resume (or a later restore of THIS
    /// server) must find them there.
    fn ckpt_cover_homes(&mut self, homes: &[Rank]) {
        if self.ckpt.is_none() {
            return;
        }
        self.ckpt_flush(true);
        if let Some(sink) = &mut self.ckpt {
            for &h in homes {
                sink.write_redirect(h);
            }
        }
    }

    /// With `resume` configured, load this shard's durable state (following
    /// redirect tombstones to the covering checkpoint, then keeping only
    /// this home's slice) before serving. Returns whether state was
    /// restored.
    fn resume_from_pfs(&mut self) -> bool {
        let Some(cfg) = self.config.checkpoint.clone() else {
            return false;
        };
        if !cfg.resume {
            return false;
        }
        let me = self.comm.rank();
        let start_us = trace::now_us();
        let started = Instant::now();
        let mut client = cfg.fs.client();
        match restore_home(&mut client, me) {
            Ok(r) => {
                let owner = *r.via.last().unwrap_or(&me);
                let ledger = split_for_home(&r.ledger, &self.layout, me, owner);
                let history = split_history_for_home(&r.history, &self.layout, me);
                eprintln!(
                    "adlb server {me}: resumed shard from pfs checkpoint \
                     (LSN {}, {} datums, {} queued, {} clients with history)",
                    r.last_lsn,
                    ledger.store.len(),
                    ledger.queue.len(),
                    history.len(),
                );
                self.install_resumed(ledger);
                if let Some(sink) = &mut self.ckpt {
                    sink.adopt_history(history);
                    sink.fast_forward(r.last_lsn, r.seg_no);
                }
                // Re-anchor the durable state under this home right away:
                // the covering checkpoint may sit in another server's
                // directory and will be superseded by its own resume.
                self.ckpt_flush(true);
                self.stats.pfs_restores += 1;
                let micros = started.elapsed().as_micros() as u64;
                self.stats.ckpt_restore_micros = self.stats.ckpt_restore_micros.max(micros);
                trace::record_since(trace::KIND_CKPT_RESTORE, me as u64, start_us);
                true
            }
            Err(e) => {
                eprintln!(
                    "adlb server {me}: resume found no usable checkpoint ({e}); starting empty"
                );
                false
            }
        }
    }

    /// Install a resumed shard into the (empty) live state. Unlike
    /// [`Server::promote`] this neither counts a failover nor re-pushes
    /// cached responses unprompted: the restarted clients replay their
    /// request streams from seq 1 and pull every durable response through
    /// the dedup path instead.
    fn install_resumed(&mut self, ledger: Ledger) {
        self.store.merge(ledger.store);
        for t in ledger.queue {
            self.queue.push(t);
        }
        let now = Instant::now();
        let now_us = trace::now_us();
        for (c, deque) in ledger.leases {
            let mine = self.in_flight.entry(c).or_default();
            for task in deque {
                self.tenants.lease_opened(task.tenant);
                mine.push_back(Lease {
                    task,
                    since: now,
                    accepted_us: now_us,
                });
            }
        }
        for (c, n) in ledger.credits {
            *self.lease_revoked.entry(c).or_insert(0) += n as usize;
        }
        for (c, s) in ledger.seqs {
            let hw = self.client_seqs.entry(c).or_default();
            *hw = (*hw).max(s);
        }
        self.client_resps.extend(ledger.resps);
        for q in ledger.quarantine {
            if !self.quarantine_reports.contains(&q) {
                self.quarantine_reports.push(q);
            }
        }
        for x in ledger.pending_xfers {
            self.pending_xfers.push(PendingXfer { x, sent_to: None });
        }
        // Unlike promotion, `next_fseq` IS restored: these counters number
        // transfers with origin = this rank, and peers resume with durable
        // `xfer_applied` high-waters — reusing old fseq numbers would get
        // fresh transfers dropped as duplicates.
        for (dest, f) in ledger.next_fseq {
            let hw = self.next_fseq.entry(dest).or_default();
            *hw = (*hw).max(f);
        }
        for (k, f) in ledger.xfer_applied {
            let hw = self.xfer_applied.entry(k).or_default();
            *hw = (*hw).max(f);
        }
        self.fwd_out += ledger.fwd_out;
        self.fwd_in += ledger.fwd_in;
    }

    fn op(&mut self, op: ReplOp) {
        self.tx_ops.push(op);
    }

    /// Buffer a response, sealed with the seq of the request it answers
    /// (the client drops responses whose seq is not its outstanding
    /// request — see [`Response::decode_sealed`]). When `replicate` is
    /// set, also record the `(seq, sealed response)` pair locally and in
    /// the replica stream so a promoted successor can answer the client's
    /// re-send byte-for-byte — or push it unprompted at promotion, in
    /// case the client's copy died in the dead server's send queue.
    fn send_response(&mut self, rank: Rank, seq: u64, resp: Response, replicate: bool) {
        let bytes = seal_seq(&resp.encode(), seq);
        if replicate {
            self.record_seq(rank, seq, Some(bytes.clone()));
        }
        // Any answered round trip un-strands the client: it got the
        // response it was blocked on (see `linger`).
        self.stranded.remove(&rank);
        self.tx_sends.push((rank, TAG_RESP, bytes));
    }

    /// Mark client request `seq` fully processed (with its cached
    /// response, for awaited requests).
    fn record_seq(&mut self, client: Rank, seq: u64, resp: Option<Bytes>) {
        let hw = self.client_seqs.entry(client).or_default();
        *hw = (*hw).max(seq);
        if let Some(b) = &resp {
            self.client_resps.insert(client, (seq, b.clone()));
        }
        self.op(ReplOp::SeqResp { client, seq, resp });
    }

    fn quiescent(&self) -> bool {
        self.my_clients
            .iter()
            .all(|c| self.finished.contains(c) || self.parked.iter().any(|p| p.rank == *c))
            && self.queue.is_empty()
            && !self.outstanding_steal
            && self.in_flight.values().all(VecDeque::is_empty)
            && self.pending_xfers.is_empty()
    }

    /// The current termination-detection owner: the first live server on
    /// the ring starting from the layout's first server.
    fn master(&self) -> Rank {
        self.layout
            .route(self.layout.first_server(), self.membership.dead())
    }

    /// Where requests for home server `home` are currently served.
    fn host_of(&self, home: Rank) -> Rank {
        self.layout.route(home, self.membership.dead())
    }

    // -- task routing ----------------------------------------------------

    /// Send a task toward its home: targeted tasks go to the server
    /// currently hosting the target's home; untargeted tasks stay here.
    fn route_task(&mut self, task: Task) {
        if let Some(target) = task.target {
            let home = self.layout.server_of(target);
            if self.host_of(home) != self.comm.rank() {
                self.send_xfer(home, vec![task], false);
                return;
            }
        }
        self.accept_task(task);
    }

    /// Ship tasks to the server hosting home `dest` under the write-ahead
    /// transfer protocol: log (and replicate) the transfer first, then
    /// send; the entry is retired by the receiver's ack and re-driven to
    /// the promoted successor if the receiver dies first.
    fn send_xfer(&mut self, dest: Rank, tasks: Vec<Task>, steal: bool) {
        debug_assert!(!tasks.is_empty());
        let fseq = {
            let e = self.next_fseq.entry(dest).or_default();
            *e += 1;
            *e
        };
        self.fwd_out += tasks.len() as u64;
        self.op(ReplOp::XferOut {
            dest,
            fseq,
            steal,
            tasks: tasks.clone(),
        });
        let origin = self.comm.rank();
        let host = self.host_of(dest);
        let wire = xfer_wire(origin, dest, fseq, steal, &tasks);
        self.tx_sends.push((host, TAG_SRV, wire));
        self.pending_xfers.push(PendingXfer {
            x: Xfer {
                origin,
                dest,
                fseq,
                steal,
                tasks,
            },
            sent_to: Some(host),
        });
    }

    /// Apply an inbound transfer exactly once (dedup by `(dest, origin)`
    /// high-water) and ack it. Returns whether the transfer was fresh.
    fn apply_xfer(
        &mut self,
        sender: Rank,
        origin: Rank,
        dest: Rank,
        fseq: u64,
        tasks: Vec<Task>,
    ) -> bool {
        let me = self.comm.rank();
        if dest != me {
            // Addressed to us for a home we don't know is dead yet?
            self.ensure_home(dest);
            if self.host_of(dest) != me {
                self.protocol_error(format_args!(
                    "transfer for home {dest} (origin {origin}) misrouted here"
                ));
                return false;
            }
        }
        let hw = self.xfer_applied.get(&(dest, origin)).copied().unwrap_or(0);
        let fresh = fseq > hw;
        if fresh {
            self.xfer_applied.insert((dest, origin), fseq);
            self.epoch += 1;
            self.fwd_in += tasks.len() as u64;
            self.op(ReplOp::XferIn {
                origin,
                dest,
                fseq,
                n: tasks.len() as u64,
            });
            for t in tasks {
                self.accept_task(t);
            }
        }
        self.tx_sends.push((
            sender,
            TAG_SRV,
            ServerMsg::XferAck { origin, dest, fseq }.encode(),
        ));
        fresh
    }

    /// Re-send every write-ahead entry whose last receiver died (or that
    /// was inherited from a dead peer and never re-driven). Entries whose
    /// new host is this server are applied locally — the dedup high-water
    /// (merged from the dead peer's ledger) decides whether the dead peer
    /// had already applied them.
    fn redrive_pending_xfers(&mut self) {
        let me = self.comm.rank();
        let mut retired = Vec::new();
        for i in 0..self.pending_xfers.len() {
            let needs = match self.pending_xfers[i].sent_to {
                None => true,
                Some(h) => self.membership.is_dead(h),
            };
            if !needs {
                continue;
            }
            let x = self.pending_xfers[i].x.clone();
            let host = self.host_of(x.dest);
            if host == me {
                let hw = self
                    .xfer_applied
                    .get(&(x.dest, x.origin))
                    .copied()
                    .unwrap_or(0);
                if x.fseq > hw {
                    self.xfer_applied.insert((x.dest, x.origin), x.fseq);
                    self.epoch += 1;
                    self.fwd_in += x.tasks.len() as u64;
                    self.op(ReplOp::XferIn {
                        origin: x.origin,
                        dest: x.dest,
                        fseq: x.fseq,
                        n: x.tasks.len() as u64,
                    });
                    for t in x.tasks {
                        self.accept_task(t);
                    }
                }
                self.op(ReplOp::XferDone {
                    origin: x.origin,
                    dest: x.dest,
                    fseq: x.fseq,
                });
                retired.push(i);
            } else {
                let wire = xfer_wire(x.origin, x.dest, x.fseq, x.steal, &x.tasks);
                self.tx_sends.push((host, TAG_SRV, wire));
                self.pending_xfers[i].sent_to = Some(host);
            }
        }
        for i in retired.into_iter().rev() {
            self.pending_xfers.remove(i);
        }
    }

    /// Deliver to a parked client or enqueue locally.
    fn accept_task(&mut self, task: Task) {
        self.stats.tasks_accepted += 1;
        // A task targeted at a rank that already died (e.g. a forward that
        // raced the death sweep) must be rescued here, or it would sit in
        // the targeted queue forever and block termination.
        let task = match task.target {
            Some(t) if !self.comm.is_alive(t) => match self.retarget_for_dead(task, t) {
                Some(task) => task,
                None => return,
            },
            _ => task,
        };
        // New work ends any steal backoff: there may be more where this
        // came from.
        self.steal_backoff = 0;
        self.empty_steal_streak = 0;
        // An untargeted task can only bypass the queue straight to a
        // parked client when the tenant's lease cap allows another
        // in-flight task and the client's tenant filter matches; targeted
        // tasks always go to their rank.
        let direct_ok = task.target.is_some()
            || (self.tenants.can_lease(task.tenant) && {
                self.tenants.note_tenant(task.tenant);
                true
            });
        let slot = if direct_ok {
            self.parked.iter().position(|p| {
                p.work_types.contains(&task.work_type)
                    && match task.target {
                        Some(t) => p.rank == t,
                        None => p.tenant.is_none() || p.tenant == Some(task.tenant),
                    }
            })
        } else {
            None
        };
        match slot {
            Some(i) => {
                let p = self.parked.remove(i);
                self.stats.tasks_delivered += 1;
                self.tenants.stats_mut(task.tenant).delivered += 1;
                // Delivered straight to a parked client: the queue wait
                // is zero by construction; record it as such so queue-
                // wait percentiles cover every delivered task.
                let now_us = trace::now_us();
                trace::record(
                    trace::KIND_TASK_QUEUE,
                    self.stats.tasks_delivered,
                    now_us,
                    now_us,
                );
                self.open_leases(p.rank, std::slice::from_ref(&task), &[now_us]);
                self.send_response(p.rank, p.seq, Response::DeliverTask(task), true);
            }
            None => {
                self.op(ReplOp::Push {
                    tasks: vec![task.clone()],
                });
                let tenant = task.tenant;
                let untargeted = task.target.is_none();
                self.queue.push(task);
                if untargeted {
                    let depth = self.queue.untargeted_of(tenant) as u64;
                    let row = self.tenants.stats_mut(tenant);
                    row.queue_peak = row.queue_peak.max(depth);
                }
            }
        }
    }

    /// Open a lease per task, in delivery order, and replicate them.
    /// Clients acknowledge in the same order, so releases always pop the
    /// front of the deque. `accepted_us[i]` is task `i`'s accept stamp on
    /// the trace clock; missing entries default to *now*.
    fn open_leases(&mut self, rank: Rank, tasks: &[Task], accepted_us: &[u64]) {
        self.op(ReplOp::LeaseOpen {
            client: rank,
            tasks: tasks.to_vec(),
        });
        let now = Instant::now();
        let now_us = trace::now_us();
        for t in tasks {
            self.tenants.lease_opened(t.tenant);
        }
        let leases = self.in_flight.entry(rank).or_default();
        for (i, t) in tasks.iter().enumerate() {
            leases.push_back(Lease {
                task: t.clone(),
                since: now,
                accepted_us: accepted_us.get(i).copied().unwrap_or(now_us),
            });
        }
    }

    /// Pop the single best deliverable task for the parked request `p`,
    /// composing the targeted heaps with the fair scheduler:
    ///
    /// 1. Targeted work for `p.rank` competes on raw priority and wins
    ///    ties — it can only run there, and fairness never withholds it.
    /// 2. Untargeted work first elects a tenant by deficit round robin
    ///    over the tenants that have matching work, honor the request's
    ///    tenant filter, and are under their lease cap; the pop then
    ///    takes that tenant's best task, so intra-tenant (priority desc,
    ///    arrival asc) order is preserved.
    ///
    /// With a single tenant the DRR always elects it and this reduces to
    /// the pre-tenant global-best pop.
    fn next_scheduled(&mut self, p: &Parked) -> Option<(Task, u64)> {
        let best_targeted = self.queue.peek_targeted(p.rank, &p.work_types);
        let eligible: Vec<u32> = match p.tenant {
            Some(t) => {
                if self.tenants.can_lease(t)
                    && self.queue.peek_untargeted(t, &p.work_types).is_some()
                {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            None => self
                .queue
                .tenants_with_work(&p.work_types)
                .into_iter()
                .filter(|t| self.tenants.can_lease(*t))
                .collect(),
        };
        let best_untargeted_prio = eligible
            .iter()
            .filter_map(|t| self.queue.peek_untargeted(*t, &p.work_types))
            .map(|(prio, _)| prio)
            .max();
        let take_targeted = match (best_targeted, best_untargeted_prio) {
            (Some((tp, _)), Some(up)) => tp >= up,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_targeted {
            let popped = self.queue.pop_targeted_timed(p.rank, &p.work_types);
            if let Some((task, _)) = &popped {
                self.tenants.stats_mut(task.tenant).delivered += 1;
            }
            return popped;
        }
        let contended = eligible.len() > 1;
        let elected = self.tenants.elect(&eligible)?;
        let popped = self.queue.pop_untargeted_timed(elected, &p.work_types);
        if popped.is_some() {
            let row = self.tenants.stats_mut(elected);
            row.delivered += 1;
            if contended {
                row.delivered_contended += 1;
            }
        }
        popped
    }

    /// Pop up to `cap` matching tasks for the parked request `p`, each
    /// paired with its accept stamp (trace clock, µs).
    fn take_from_queue(&mut self, p: &Parked, cap: usize) -> Option<Vec<(Task, u64)>> {
        let first = self.next_scheduled(p)?;
        let mut batch = vec![first];
        while batch.len() < cap {
            match self.next_scheduled(p) {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        Some(batch)
    }

    /// Answer a `Get` from the queue, opening leases and caching the
    /// response under the request's seq.
    fn deliver_from_queue(&mut self, p: &Parked) -> bool {
        let cap = p.max_tasks.max(1) as usize;
        let Some(timed) = self.take_from_queue(p, cap) else {
            return false;
        };
        if timed.is_empty() {
            // A prefetch race can in principle hand back an empty batch;
            // deliver nothing (the Get stays parked) and count it — an
            // empty delivery must never panic the server loop.
            self.protocol_error(format_args!(
                "empty delivery batch for a Get from rank {}",
                p.rank
            ));
            return false;
        }
        let accepted: Vec<u64> = timed.iter().map(|(_, us)| *us).collect();
        let mut batch: Vec<Task> = timed.into_iter().map(|(t, _)| t).collect();
        if trace::enabled() {
            for (i, &us) in accepted.iter().enumerate() {
                trace::record_since(
                    trace::KIND_TASK_QUEUE,
                    self.stats.tasks_delivered + i as u64 + 1,
                    us,
                );
            }
        }
        self.op(ReplOp::Remove {
            tasks: batch.clone(),
        });
        self.stats.tasks_delivered += batch.len() as u64;
        if batch.len() > 1 {
            self.stats.tasks_prefetched += batch.len() as u64 - 1;
        }
        self.open_leases(p.rank, &batch, &accepted);
        let resp = match batch.pop() {
            Some(t) if batch.is_empty() => Response::DeliverTask(t),
            Some(t) => {
                batch.push(t);
                Response::DeliverBatch(batch)
            }
            // Unreachable after the guard above, but degrade to a counted
            // protocol error rather than a panic path.
            None => {
                self.protocol_error(format_args!(
                    "delivery batch for rank {} emptied mid-handling",
                    p.rank
                ));
                return false;
            }
        };
        self.send_response(p.rank, p.seq, resp, true);
        true
    }

    /// After a promotion merged a dead peer's queue, parked clients may
    /// now be servable without any new task arriving.
    fn service_parked(&mut self) {
        let mut i = 0;
        while i < self.parked.len() {
            let p = self.parked[i].clone();
            if self.deliver_from_queue(&p) {
                self.parked.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// A failed task comes back: retry it with a priority penalty, or
    /// quarantine it once its budget is spent. `death` selects which
    /// counter records the requeue (holder died vs. reported failure);
    /// `error` is what ended this attempt.
    fn retry_or_quarantine(&mut self, mut task: Task, death: bool, error: &str) {
        task.attempts += 1;
        if task.attempts > self.config.retry.max_retries {
            self.stats.tasks_quarantined += 1;
            let report = format!(
                "task (work_type {}, tenant {}) quarantined after {} attempts; last error: {}",
                task.work_type, task.tenant, task.attempts, error
            );
            eprintln!("adlb server {}: {report}", self.comm.rank());
            self.op(ReplOp::Quarantine {
                report: report.clone(),
            });
            self.quarantine_reports.push(report);
            self.quarantined.push(task);
            return;
        }
        if death {
            self.stats.tasks_requeued += 1;
        } else {
            self.stats.tasks_retried += 1;
        }
        let penalty = self
            .config
            .retry
            .priority_penalty
            .saturating_mul(task.attempts as i32);
        task.priority = task.priority.saturating_sub(penalty);
        // A requeue is fresh activity for termination detection.
        self.epoch += 1;
        self.accept_task(task);
    }

    /// Prepare a task bound for (or held by) the dead rank `dead` for
    /// requeueing. A close notification for a dead rank is meaningless
    /// and dropped (`None`); other targeted tasks are untargeted so a
    /// survivor can run them.
    fn retarget_for_dead(&mut self, mut task: Task, dead: Rank) -> Option<Task> {
        if task.target == Some(dead) {
            if task.work_type == crate::msg::WORK_TYPE_NOTIFY {
                return None;
            }
            task.target = None;
        }
        Some(task)
    }

    /// Notice dead clients of this server: mark them permanently finished
    /// (they will never park again), requeue any task they held, and
    /// rescue tasks still queued with the dead rank as target.
    fn detect_dead_clients(&mut self) {
        let mine: Vec<Rank> = self
            .my_clients
            .iter()
            .copied()
            .filter(|r| !self.finished.contains(r) && !self.comm.is_alive(*r))
            .collect();
        for rank in mine {
            self.stats.ranks_failed += 1;
            self.epoch += 1;
            eprintln!(
                "adlb server {}: client rank {rank} died; requeueing its work",
                self.comm.rank()
            );
            self.finished.insert(rank);
            self.truncated.insert(rank);
            self.parked.retain(|p| p.rank != rank);
            self.lease_revoked.remove(&rank);
            self.op(ReplOp::ClientDead { client: rank });
            // The dead rank's ENTIRE lease deque requeues: with prefetch a
            // client may die holding a whole undone batch, and every one
            // of those tasks must run somewhere else.
            self.client_tenants.remove(&rank);
            if let Some(leases) = self.in_flight.remove(&rank) {
                for lease in leases {
                    self.tenants.lease_closed(lease.task.tenant);
                    if let Some(task) = self.retarget_for_dead(lease.task, rank) {
                        self.retry_or_quarantine(task, true, &format!("holder rank {rank} died"));
                    }
                }
            }
            let stranded = self.queue.drain_targeted(rank);
            if !stranded.is_empty() {
                self.op(ReplOp::Remove {
                    tasks: stranded.clone(),
                });
            }
            for t in stranded {
                if let Some(t) = self.retarget_for_dead(t, rank) {
                    self.accept_task(t);
                }
            }
        }
    }

    /// Revoke leases older than the configured timeout (if any).
    fn check_lease_timeouts(&mut self) {
        let Some(timeout) = self.config.retry.lease_timeout else {
            return;
        };
        let now = Instant::now();
        let expired: Vec<Rank> = self
            .in_flight
            .iter()
            .filter(|(_, d)| {
                d.front()
                    .is_some_and(|l| now.duration_since(l.since) > timeout)
            })
            .map(|(r, _)| *r)
            .collect();
        for rank in expired {
            // Revoke the rank's whole deque, not just the expired front:
            // acks are matched FIFO, so releasing later leases while the
            // front is requeued would misattribute every following ack.
            //
            // The deque can already be gone: the dead-client sweep runs in
            // the same idle tick and removes `in_flight` entries for ranks
            // it declared dead (requeueing their tasks itself), racing the
            // snapshot taken above. Nothing left to revoke is fine — never
            // a panic.
            let Some(leases) = self.in_flight.remove(&rank) else {
                continue;
            };
            eprintln!(
                "adlb server {}: {} lease(s) on rank {rank} expired; requeueing",
                self.comm.rank(),
                leases.len()
            );
            // The holder may still be alive and eventually ack; that many
            // acks are now stale and must not release newer leases.
            *self.lease_revoked.entry(rank).or_insert(0) += leases.len();
            self.op(ReplOp::LeaseRevoke { client: rank });
            for lease in leases {
                self.tenants.lease_closed(lease.task.tenant);
                self.retry_or_quarantine(
                    lease.task,
                    true,
                    &format!("lease on rank {rank} expired"),
                );
            }
        }
    }

    // -- client requests ---------------------------------------------------

    /// Put-side admission: an untargeted client put of a tenant over its
    /// `max_queued` quota is refused (`Err`) and NACKed back to the
    /// submitter. Targeted puts, control/notify tasks, and all
    /// server-internal paths (retries, forwards, steals) bypass
    /// admission — they are existing dataflow in flight, not new leaf
    /// demand, and control tasks in particular can only be consumed by
    /// the engine that produced them, so damming them behind a quota
    /// would deadlock a capped tenant against itself.
    fn admit_put(&mut self, task: Task) -> Result<Task, Task> {
        if task.target.is_some() || task.work_type != WORK_TYPE_WORK {
            return Ok(task);
        }
        let tenant = task.tenant;
        self.tenants.note_tenant(tenant);
        let queued = self.queue.untargeted_of(tenant);
        if self.tenants.admits(tenant, queued) {
            self.tenants.stats_mut(tenant).admitted += 1;
            Ok(task)
        } else {
            self.tenants.stats_mut(tenant).rejected += 1;
            Err(task)
        }
    }

    /// The data shard a request implicates (`None` for non-data ops,
    /// which belong to the sending client's home server).
    fn data_home(&self, req: &Request) -> Option<Rank> {
        match req {
            Request::DataCreate { id, .. }
            | Request::DataStore { id, .. }
            | Request::DataRetrieve { id }
            | Request::DataSubscribe { id, .. }
            | Request::DataInsert { id, .. }
            | Request::DataLookup { id, .. }
            | Request::DataEnumerate { id }
            | Request::DataClose { id }
            | Request::DataExists { id }
            | Request::DataIncrWriters { id, .. } => Some(self.layout.data_owner(*id)),
            _ => None,
        }
    }

    /// A message implicates home server `home`: if that peer silently
    /// died (the sender noticed before we did), confirm against the
    /// oracle and run the failover now, so the merged state is in place
    /// before the message is served.
    fn ensure_home(&mut self, home: Rank) {
        if home == self.comm.rank() || self.membership.is_dead(home) {
            return;
        }
        if !self.comm.is_alive(home) && self.membership.mark_dead(home) {
            self.handle_server_death(home);
        }
    }

    fn handle_request(&mut self, source: Rank, req: Request, seq: u64) {
        let data_home = self.data_home(&req);
        let home = data_home.unwrap_or_else(|| self.layout.server_of(source));
        if home != self.comm.rank() {
            self.ensure_home(home);
        }
        // Exactly-once: a re-sent awaited request gets its cached response
        // verbatim; a re-sent fire-and-forget request is dropped. After a
        // whole-world resume the restarted client replays its request
        // stream from seq 1 — every awaited request below the durable
        // high-water is answered byte-for-byte from the checkpoint's
        // response history, forcing the client down the same execution
        // path until it passes the durable prefix.
        let hw = self.client_seqs.get(&source).copied().unwrap_or(0);
        if seq <= hw {
            if let Some((s, bytes)) = self.client_resps.get(&source) {
                if *s == seq {
                    let b = bytes.clone();
                    self.tx_sends.push((source, TAG_RESP, b));
                    return;
                }
            }
            if let Some(bytes) = self.ckpt.as_ref().and_then(|c| c.durable_resp(source, seq)) {
                let b = bytes.clone();
                self.tx_sends.push((source, TAG_RESP, b));
                return;
            }
            // No response was ever recorded for this seq. Fire-and-forget
            // requests advance the high-water without response bytes and
            // were already applied — drop the duplicate. Anything else
            // here is an awaited request whose response is deliberately
            // unreplicated (reads, deterministic errors, subscribe on an
            // already-closed datum); the replaying client is blocked on
            // it, so re-execute it against the restored state.
            match req {
                Request::TaskDone { .. }
                | Request::TaskDoneBatch { .. }
                | Request::Output { .. } => return,
                _ => {}
            }
        }
        // Lost shard (a data home died with no replica): answer benignly
        // so the program winds down through the NoMore path instead of
        // crashing on spurious data errors.
        if let Some(h) = data_home {
            if self.lost_homes.contains(&h) {
                self.serve_lost_home(source, &req, seq);
                return;
            }
        }
        self.epoch += 1;
        match req {
            Request::Put(task) => {
                if self.aborting {
                    // Winding down: accept and drop — the machine will
                    // never deliver it, and the client must not hang.
                    self.send_response(source, seq, Response::Ok, false);
                    return;
                }
                match self.admit_put(task) {
                    Ok(task) => {
                        self.route_task(task);
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    // Nothing mutated: the rejection is not replicated,
                    // and a post-failover re-send re-runs admission.
                    Err(task) => {
                        self.send_response(source, seq, Response::Rejected(vec![task]), false);
                    }
                }
            }
            Request::PutBatch(tasks) => {
                if self.aborting {
                    self.send_response(source, seq, Response::Ok, false);
                    return;
                }
                // Each task routes exactly as if it had arrived alone; the
                // batch shares one wire message and one ack. Over-quota
                // tasks come back in a `Rejected` and the client re-offers
                // them — admission is backpressure, never loss.
                let mut rejected = Vec::new();
                let mut admitted = false;
                for task in tasks {
                    match self.admit_put(task) {
                        Ok(task) => {
                            self.route_task(task);
                            admitted = true;
                        }
                        Err(task) => rejected.push(task),
                    }
                }
                if rejected.is_empty() {
                    self.send_response(source, seq, Response::Ok, true);
                } else {
                    // A partially admitted batch DID mutate state: cache
                    // the response so a re-sent batch after failover gets
                    // it verbatim instead of double-admitting the prefix.
                    self.send_response(source, seq, Response::Rejected(rejected), admitted);
                }
            }
            Request::Get {
                work_types,
                max_tasks,
                tenant,
            } => {
                if self.aborting || self.shutdown {
                    self.answer_no_more(source, seq);
                    return;
                }
                if let Some(t) = tenant {
                    // Remember which tenant this client identifies with so
                    // close notifications targeted at it carry the tag.
                    self.client_tenants.insert(source, t);
                    self.tenants.note_tenant(t);
                }
                let p = Parked {
                    rank: source,
                    work_types,
                    max_tasks,
                    tenant,
                    seq,
                };
                if !self.deliver_from_queue(&p) {
                    self.parked.push(p);
                    // An empty queue with parked clients is the steal
                    // trigger; don't wait for the poll timeout.
                    self.try_steal();
                }
            }
            Request::TaskDone { ok, error } => {
                self.handle_acks(source, vec![(ok, error)]);
                self.record_seq(source, seq, None);
            }
            Request::TaskDoneBatch { results } => {
                self.handle_acks(source, results);
                self.record_seq(source, seq, None);
            }
            Request::Output { text, tenant } => {
                self.op(ReplOp::Out {
                    client: source,
                    text: text.clone(),
                    tenant,
                });
                self.outputs
                    .entry((source, tenant))
                    .or_default()
                    .push_str(&text);
                self.record_seq(source, seq, None);
            }
            Request::Finished => {
                self.finished.insert(source);
                self.parked.retain(|p| p.rank != source);
                self.op(ReplOp::ClientFinished { client: source });
                self.send_response(source, seq, Response::Ok, true);
            }
            Request::DataCreate { id, type_tag } => {
                self.stats.data_ops += 1;
                match self.store.create(id, type_tag) {
                    Ok(()) => {
                        self.op(ReplOp::Create { id, type_tag });
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    // Failed ops replicate nothing: the store is
                    // unchanged, so a re-execution after failover yields
                    // the same error deterministically.
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
            Request::DataStore { id, value } => {
                self.stats.data_ops += 1;
                match self.store.store(id, value.clone()) {
                    Ok(subs) => {
                        self.op(ReplOp::Store { id, value });
                        self.notify_all(id, subs);
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
            Request::DataRetrieve { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.retrieve(id) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                // Reads replicate nothing and leave the dedup high-water
                // alone: a re-sent read simply re-executes.
                self.send_response(source, seq, resp, false);
            }
            Request::DataSubscribe { id, rank } => {
                self.stats.data_ops += 1;
                match self.store.subscribe(id, rank) {
                    Ok(true) => {
                        // Already closed: no mutation happened.
                        self.send_response(source, seq, Response::Bool(true), false);
                    }
                    Ok(false) => {
                        self.op(ReplOp::Subscribe { id, rank });
                        self.send_response(source, seq, Response::Bool(false), true);
                    }
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
            Request::DataInsert { id, key, value } => {
                self.stats.data_ops += 1;
                match self.store.insert(id, &key, value.clone()) {
                    Ok(()) => {
                        self.op(ReplOp::Insert { id, key, value });
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
            Request::DataLookup { id, key } => {
                self.stats.data_ops += 1;
                let resp = match self.store.lookup(id, &key) {
                    Ok(v) => Response::MaybeBytes(v),
                    Err(e) => Response::Error(e.message),
                };
                self.send_response(source, seq, resp, false);
            }
            Request::DataEnumerate { id } => {
                self.stats.data_ops += 1;
                let resp = match self.store.enumerate(id) {
                    Ok(pairs) => Response::Pairs(pairs),
                    Err(e) => Response::Error(e.message),
                };
                self.send_response(source, seq, resp, false);
            }
            Request::DataClose { id } => {
                self.stats.data_ops += 1;
                match self.store.close(id) {
                    Ok(subs) => {
                        self.op(ReplOp::CloseDatum { id });
                        self.notify_all(id, subs);
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
            Request::DataExists { id } => {
                self.stats.data_ops += 1;
                let resp = Response::Bool(self.store.exists_closed(id));
                self.send_response(source, seq, resp, false);
            }
            Request::DataIncrWriters { id, delta } => {
                self.stats.data_ops += 1;
                match self.store.incr_writers(id, delta) {
                    Ok(subs) => {
                        self.op(ReplOp::IncrWriters { id, delta });
                        self.notify_all(id, subs);
                        self.send_response(source, seq, Response::Ok, true);
                    }
                    Err(e) => self.send_response(source, seq, Response::Error(e.message), false),
                }
            }
        }
    }

    /// Terminal answer for a client's `Get` while winding down: `NoMore`
    /// with the diagnosis, and the client counts as permanently parked.
    fn answer_no_more(&mut self, source: Rank, seq: u64) {
        self.finished.insert(source);
        self.op(ReplOp::ClientFinished { client: source });
        let quarantined = self.capped_reports();
        let aborted = self.abort_reason.clone();
        self.send_response(
            source,
            seq,
            Response::NoMore {
                quarantined,
                aborted,
            },
            true,
        );
    }

    /// Benign defaults for data ops against a shard that died with no
    /// replica: reads see "not ready", writes vanish. The program cannot
    /// complete — the `Get` path reports why — but it must not crash on
    /// spurious errors either.
    fn serve_lost_home(&mut self, source: Rank, req: &Request, seq: u64) {
        self.stats.data_ops += 1;
        let resp = match req {
            Request::DataRetrieve { .. } | Request::DataLookup { .. } => Response::MaybeBytes(None),
            Request::DataSubscribe { .. } | Request::DataExists { .. } => Response::Bool(false),
            Request::DataEnumerate { .. } => Response::Pairs(Vec::new()),
            _ => Response::Ok,
        };
        self.tx_sends
            .push((source, TAG_RESP, seal_seq(&resp.encode(), seq)));
    }

    /// Release leases for a batch of acknowledgements from `source`, in
    /// order. Each entry either consumes a stale-ack credit (its lease was
    /// already revoked and the task requeued) or releases the oldest open
    /// lease; failed results feed the retry/quarantine policy.
    fn handle_acks(&mut self, source: Rank, results: Vec<(bool, String)>) {
        let mut credits_used = 0u32;
        let mut dropped = 0u32;
        for (ok, error) in results {
            if let Some(stale) = self.lease_revoked.get_mut(&source) {
                *stale -= 1;
                if *stale == 0 {
                    self.lease_revoked.remove(&source);
                }
                credits_used += 1;
                continue;
            }
            match self
                .in_flight
                .get_mut(&source)
                .and_then(VecDeque::pop_front)
            {
                Some(lease) => {
                    dropped += 1;
                    self.tenants.lease_closed(lease.task.tenant);
                    // Accept → ack: the server-side view of task latency.
                    // The high id bits carry (tenant + 1) so per-tenant
                    // percentiles can be split out; the low bits keep the
                    // acking rank.
                    trace::record_since(
                        trace::KIND_TASK_LATENCY,
                        ((lease.task.tenant as u64 + 1) << 32) | source as u64,
                        lease.accepted_us,
                    );
                    if !ok {
                        self.retry_or_quarantine(lease.task, false, &error);
                    }
                }
                None if self.aborting => {
                    // An adopted client acking a task its lost home leased:
                    // nothing to release, nothing to report.
                }
                None => {
                    self.protocol_error(format_args!("task ack from rank {source} with no lease"))
                }
            }
        }
        if credits_used > 0 {
            self.op(ReplOp::CreditUse {
                client: source,
                n: credits_used,
            });
        }
        if dropped > 0 {
            self.op(ReplOp::LeaseDrop {
                client: source,
                n: dropped,
            });
        }
        if self.in_flight.get(&source).is_some_and(VecDeque::is_empty) {
            self.in_flight.remove(&source);
        }
    }

    /// Turn a datum close into targeted high-priority notification tasks,
    /// each tagged with the subscriber's tenant so multi-tenant latency
    /// attribution stays per-program.
    fn notify_all(&mut self, id: u64, subscribers: Vec<Rank>) {
        for rank in subscribers {
            self.stats.notifications += 1;
            let tenant = self.client_tenants.get(&rank).copied().unwrap_or(0);
            let task = Task::new(
                crate::msg::WORK_TYPE_NOTIFY,
                self.config.notify_priority,
                Some(rank),
                Bytes::copy_from_slice(&id.to_le_bytes()),
            )
            .with_tenant(tenant);
            self.route_task(task);
        }
    }

    // -- server messages ---------------------------------------------------

    /// Returns true when this server must shut down.
    fn handle_server_msg(&mut self, source: Rank, msg: ServerMsg) -> bool {
        match msg {
            ServerMsg::Forward {
                origin,
                dest,
                fseq,
                task,
            } => {
                self.apply_xfer(source, origin, dest, fseq, vec![task]);
            }
            ServerMsg::StealReq {
                thief,
                work_types,
                need,
            } => {
                let tasks = self.queue.steal(&work_types, need as usize);
                if tasks.is_empty() {
                    // Empty steal traffic must not perturb the epoch or
                    // the transfer ledger, or the steal retry loop would
                    // keep termination detection from ever seeing two
                    // stable rounds. fseq 0 marks "nothing transferred".
                    self.tx_sends.push((
                        thief,
                        TAG_SRV,
                        ServerMsg::StealResp {
                            origin: self.comm.rank(),
                            dest: thief,
                            fseq: 0,
                            tasks: Vec::new(),
                        }
                        .encode(),
                    ));
                } else {
                    self.epoch += 1;
                    self.stats.tasks_donated += tasks.len() as u64;
                    self.op(ReplOp::Remove {
                        tasks: tasks.clone(),
                    });
                    self.send_xfer(thief, tasks, true);
                }
            }
            ServerMsg::StealResp {
                origin,
                dest,
                fseq,
                tasks,
            } => {
                let mine = dest == self.comm.rank();
                if mine && self.outstanding_steal {
                    self.outstanding_steal = false;
                    self.steal_victim = None;
                    // Steal round-trip, empty or not; id = victim rank.
                    trace::record_since(trace::KIND_STEAL, origin as u64, self.steal_started_us);
                    if fseq == 0 {
                        // Try the next victim on the next idle tick; after
                        // a fully empty sweep, back off.
                        self.steal_victim_cursor += 1;
                        self.empty_steal_streak += 1;
                        let live_victims = self.membership.live_peers().len();
                        if self.empty_steal_streak >= live_victims.max(1) {
                            self.empty_steal_streak = 0;
                            self.steal_backoff = 50;
                        }
                    }
                }
                if fseq != 0 {
                    let n = tasks.len() as u64;
                    let fresh = self.apply_xfer(source, origin, dest, fseq, tasks);
                    if fresh && mine {
                        self.empty_steal_streak = 0;
                        self.stats.steals_successful += 1;
                        self.stats.tasks_stolen += n;
                        // The victim clearly has work: if clients are
                        // still starved, go straight back for more instead
                        // of pacing the next attempt on the poll timeout.
                        self.try_steal();
                    }
                }
            }
            ServerMsg::XferAck { origin, dest, fseq } => {
                let before = self.pending_xfers.len();
                self.pending_xfers
                    .retain(|p| !(p.x.origin == origin && p.x.dest == dest && p.x.fseq == fseq));
                if self.pending_xfers.len() != before {
                    self.op(ReplOp::XferDone { origin, dest, fseq });
                }
            }
            ServerMsg::Repl { ops } => {
                self.apply_repl_ops(source, ops);
            }
            ServerMsg::Snapshot { ledger } => {
                // A one-shot snapshot supersedes any chunked stream from
                // the same primary.
                self.inbound_syncs.remove(&source);
                self.ledgers.insert(source, *ledger);
            }
            ServerMsg::ReplSync {
                sync_id,
                cursor,
                total,
                data,
            } => {
                self.absorb_sync_chunk(source, sync_id, cursor, total, &data, true);
            }
            ServerMsg::SyncAck { sync_id, cursor } => {
                self.handle_sync_ack(source, sync_id, cursor);
            }
            ServerMsg::Heartbeat => {}
            ServerMsg::Bye => {
                // A peer can finish (and say goodbye) before this server
                // has processed its own Shutdown; remember the receipt for
                // the linger phase.
                self.byes.insert(source);
            }
            ServerMsg::Check { round } => {
                // Termination polls do not bump the epoch: they must not
                // mask real quiescence.
                let resp = ServerMsg::CheckResp {
                    round,
                    quiescent: self.quiescent(),
                    epoch: self.epoch,
                    fwd_out: self.fwd_out,
                    fwd_in: self.fwd_in,
                };
                self.tx_sends.push((source, TAG_SRV, resp.encode()));
            }
            ServerMsg::CheckResp {
                round,
                quiescent,
                epoch,
                fwd_out,
                fwd_in,
            } => {
                if round == self.check_round && self.check_members.contains(&source) {
                    self.check_responses
                        .insert(source, (quiescent, epoch, fwd_out, fwd_in));
                    if self.check_responses.len() == self.check_members.len() {
                        return self.evaluate_check_round();
                    }
                }
            }
            ServerMsg::Shutdown { reports } => {
                for r in reports {
                    if !self.quarantine_reports.contains(&r) {
                        self.quarantine_reports.push(r);
                    }
                }
                // Relay to every live peer before exiting: if the master
                // died mid-broadcast, whoever did hear it completes the
                // broadcast (exiting ranks still read as alive to the
                // oracle, so a promoted master could otherwise poll an
                // already-gone peer forever).
                let note = ServerMsg::Shutdown {
                    reports: self.capped_reports(),
                }
                .encode();
                for p in self.membership.live_peers() {
                    if p != source {
                        self.tx_sends.push((p, TAG_SRV, note.clone()));
                    }
                }
                return true;
            }
        }
        false
    }

    // -- membership & failover ---------------------------------------------

    fn maybe_heartbeat(&mut self) {
        if self.layout.servers < 2 {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_heartbeat) < self.config.heartbeat_interval {
            return;
        }
        self.last_heartbeat = now;
        let beat = ServerMsg::Heartbeat.encode();
        for p in self.membership.live_peers() {
            self.comm.send(p, TAG_SRV, beat.clone());
        }
    }

    /// Recompute who holds this server's replica: the first `R - 1` live
    /// ring successors over the (possibly shrunken) ring. A holder seen
    /// for the first time gets the full ledger; `resync_all` — set after
    /// this server promoted a dead peer's shard into its own state —
    /// re-streams it to *every* holder, since their replicas predate the
    /// merge. With re-replication on, the ledger streams in bounded
    /// [`ServerMsg::ReplSync`] chunks interleaved with normal service;
    /// the off-knob keeps the legacy one-shot snapshot to first-seen
    /// holders only (R stays degraded after a failover).
    fn refresh_repl_targets(&mut self, resync_all: bool) {
        if self.config.replication < 2 || self.aborting || self.shutdown {
            self.repl_targets.clear();
            self.outbound_syncs.clear();
            return;
        }
        let me = self.comm.rank();
        let want = self.config.replication - 1;
        let targets = self
            .layout
            .live_successors(me, want, self.membership.dead());
        for &t in &targets {
            let first_seen = !self.repl_targets.contains(&t);
            if self.config.re_replicate {
                if first_seen || resync_all {
                    self.start_sync(t);
                }
            } else if first_seen {
                let snap = ServerMsg::Snapshot {
                    ledger: Box::new(self.snapshot_ledger()),
                }
                .encode();
                self.comm.send(t, TAG_SRV, snap);
            }
        }
        // Streams to ranks that rotated out of the holder set are moot.
        self.outbound_syncs.retain(|t, _| targets.contains(t));
        self.repl_targets = targets;
    }

    // -- chunked re-replication ------------------------------------------

    /// Begin (or restart) streaming this server's full ledger to `target`
    /// in bounded chunks. The first chunk leaves immediately — ahead of
    /// any op a later handler commits — so per-pair FIFO guarantees the
    /// receiver opens its buffering window before any post-snapshot op
    /// arrives; everything sent earlier lands on the old replica the base
    /// snapshot is about to replace (and is already included in it).
    fn start_sync(&mut self, target: Rank) {
        let mut w = WireWriter::new();
        self.snapshot_ledger().encode_into(&mut w);
        let data = w.finish();
        self.next_sync_id += 1;
        self.outbound_syncs.insert(
            target,
            OutSync {
                sync_id: self.next_sync_id,
                data,
                cursor: 0,
                last_sent: Instant::now(),
                started_us: trace::now_us(),
            },
        );
        self.send_sync_chunk(target);
    }

    /// Send the next bounded chunk of the outbound stream to `target`.
    fn send_sync_chunk(&mut self, target: Rank) {
        let Some(o) = self.outbound_syncs.get_mut(&target) else {
            return;
        };
        o.last_sent = Instant::now();
        let end = (o.cursor + self.config.sync_chunk.max(1)).min(o.data.len());
        let msg = ServerMsg::ReplSync {
            sync_id: o.sync_id,
            cursor: o.cursor as u64,
            total: o.data.len() as u64,
            data: o.data.slice(o.cursor..end),
        }
        .encode();
        self.comm.send(target, TAG_SRV, msg);
    }

    /// Re-drive outbound streams whose ack went missing (e.g. dropped by
    /// fault injection): past the suspect window, re-send the current
    /// chunk from the acked resume cursor.
    fn nudge_syncs(&mut self, now: Instant) {
        let stalled: Vec<Rank> = self
            .outbound_syncs
            .iter()
            .filter(|(_, o)| now.duration_since(o.last_sent) > self.config.suspect_after)
            .map(|(r, _)| *r)
            .collect();
        for t in stalled {
            self.send_sync_chunk(t);
        }
    }

    /// A `SyncAck` advanced the receiver's contiguous high-water: stream
    /// the next chunk from there, or retire the sync when the whole
    /// ledger has landed. Retiring the last outstanding stream after a
    /// failover records the time-to-R-restored.
    fn handle_sync_ack(&mut self, source: Rank, sync_id: u64, cursor: u64) {
        let done = match self.outbound_syncs.get_mut(&source) {
            Some(o) if o.sync_id == sync_id => {
                o.cursor = o.cursor.max(cursor as usize);
                o.cursor >= o.data.len()
            }
            // A stale ack for a superseded (or already retired) sync.
            _ => return,
        };
        if !done {
            self.send_sync_chunk(source);
            return;
        }
        if let Some(o) = self.outbound_syncs.remove(&source) {
            self.stats.repl_syncs += 1;
            self.stats.repl_sync_bytes += o.data.len() as u64;
            trace::record_since(trace::KIND_REPL_SYNC, source as u64, o.started_us);
        }
        if self.outbound_syncs.is_empty() {
            if let Some(t0) = self.r_restore_started.take() {
                let us = t0.elapsed().as_micros() as u64;
                self.stats.r_restore_micros += us;
                trace::record_since(
                    trace::KIND_FAILOVER_RECOVERY,
                    self.stats.failovers,
                    self.r_restore_started_us,
                );
                eprintln!(
                    "adlb server {}: replication factor restored ({us} µs after the death)",
                    self.comm.rank()
                );
            }
        }
    }

    /// Absorb one inbound sync chunk from `source`; with `ack` (live
    /// traffic — not a dead peer's drained mailbox) the contiguous
    /// high-water is acked back as the sender's resume cursor. The final
    /// chunk installs the decoded ledger.
    fn absorb_sync_chunk(
        &mut self,
        source: Rank,
        sync_id: u64,
        cursor: u64,
        total: u64,
        data: &Bytes,
        ack: bool,
    ) {
        let ins = self.inbound_syncs.entry(source).or_insert_with(|| InSync {
            sync_id,
            total,
            buf: Vec::new(),
            ops: Vec::new(),
        });
        if ins.sync_id != sync_id {
            // A restarted sync supersedes the old one wholesale: its base
            // snapshot already includes everything the abandoned stream
            // and its buffered ops carried.
            *ins = InSync {
                sync_id,
                total,
                buf: Vec::new(),
                ops: Vec::new(),
            };
        }
        if cursor as usize == ins.buf.len() {
            ins.buf.extend_from_slice(data);
        }
        // Duplicated or out-of-order chunks fall through to the ack: the
        // contiguous high-water tells the sender where to resume.
        let have = ins.buf.len() as u64;
        let complete = have >= ins.total;
        if ack {
            let msg = ServerMsg::SyncAck {
                sync_id,
                cursor: have,
            }
            .encode();
            self.comm.send(source, TAG_SRV, msg);
        }
        if complete {
            self.finish_inbound_sync(source);
        }
    }

    /// The last chunk landed: decode the base ledger, replay the ops
    /// buffered mid-stream on top (they postdate the base — FIFO), and
    /// install the result as `source`'s replica.
    fn finish_inbound_sync(&mut self, source: Rank) {
        let Some(ins) = self.inbound_syncs.remove(&source) else {
            return;
        };
        let mut r = WireReader::new(&ins.buf);
        match Ledger::decode_from(&mut r) {
            Ok(mut ledger) => {
                for op in &ins.ops {
                    ledger.apply(source, op);
                }
                self.ledgers.insert(source, ledger);
            }
            Err(e) => {
                // A corrupt base is worse than none: promoting the stale
                // replica it was replacing would silently lose the delta.
                // Drop it so a later death aborts loudly instead.
                self.ledgers.remove(&source);
                self.protocol_error(format_args!(
                    "undecodable replica sync from rank {source}: {e:?}"
                ));
            }
        }
    }

    /// Apply an incremental op batch from `source` — or buffer it when a
    /// sync stream from `source` is mid-flight (the ops postdate its base
    /// snapshot and replay on top once it lands).
    fn apply_repl_ops(&mut self, source: Rank, ops: Vec<ReplOp>) {
        if let Some(ins) = self.inbound_syncs.get_mut(&source) {
            ins.ops.extend(ops);
        } else {
            let ledger = self.ledgers.entry(source).or_default();
            for op in &ops {
                ledger.apply(source, op);
            }
        }
    }

    /// This server's live state in replicable form.
    fn snapshot_ledger(&self) -> Ledger {
        let mut leases: HashMap<Rank, VecDeque<Task>> = HashMap::new();
        for (r, d) in &self.in_flight {
            if !d.is_empty() {
                leases.insert(*r, d.iter().map(|l| l.task.clone()).collect());
            }
        }
        Ledger {
            store: self.store.clone(),
            queue: self.queue.snapshot(),
            leases,
            credits: self
                .lease_revoked
                .iter()
                .map(|(r, n)| (*r, *n as u32))
                .collect(),
            seqs: self.client_seqs.clone(),
            resps: self.client_resps.clone(),
            outputs: self.outputs.clone(),
            finished: self.finished.clone(),
            quarantine: self.quarantine_reports.clone(),
            pending_xfers: self.pending_xfers.iter().map(|p| p.x.clone()).collect(),
            next_fseq: self.next_fseq.clone(),
            xfer_applied: self.xfer_applied.clone(),
            fwd_out: self.fwd_out,
            fwd_in: self.fwd_in,
            merges: self.merges,
        }
    }

    /// A peer is confirmed dead: absorb any straggler replication traffic
    /// it sent before dying, promote its ledger if this server is the
    /// first live successor (or start winding down when there is no
    /// replica), re-route in-flight transfers, and reshape the ring.
    /// Returns true when a deferred Shutdown was found (global
    /// termination raced the death).
    fn handle_server_death(&mut self, d: Rank) -> bool {
        self.commit_tx();
        eprintln!(
            "adlb server {}: server rank {d} died; starting failover",
            self.comm.rank()
        );
        self.epoch += 1;
        // 1. Drain the dead peer's mailbox. Replication traffic still
        // queued there is part of its ledger's history and must be
        // applied *before* the merge; anything else is handled after the
        // failover reshaped the ring.
        let mut deferred = Vec::new();
        while let Some(m) = self.comm.try_recv(Src::Of(d), TagSel::Any) {
            if m.tag != TAG_SRV {
                continue;
            }
            match ServerMsg::decode_shared(&m.data) {
                Ok(ServerMsg::Repl { ops }) => {
                    self.apply_repl_ops(d, ops);
                }
                Ok(ServerMsg::Snapshot { ledger }) => {
                    self.inbound_syncs.remove(&d);
                    self.ledgers.insert(d, *ledger);
                }
                Ok(ServerMsg::ReplSync {
                    sync_id,
                    cursor,
                    total,
                    data,
                }) => {
                    // A chunk the peer sent before dying can complete its
                    // stream and make the fresh ledger promotable; nobody
                    // is left to ack.
                    self.absorb_sync_chunk(d, sync_id, cursor, total, &data, false);
                }
                // Our own stream to the dead peer is moot.
                Ok(ServerMsg::SyncAck { .. }) => {}
                Ok(ServerMsg::Heartbeat) => {}
                Ok(ServerMsg::Bye) => {
                    // The peer died after completing its shutdown: its
                    // clients already have their notices.
                    self.byes.insert(d);
                }
                Ok(other) => deferred.push(other),
                Err(e) => {
                    self.protocol_error(format_args!("undecodable message from dead {d}: {e:?}"))
                }
            }
        }
        // 2. A steal outstanding against the dead victim will never be
        // answered; our sync stream to it is moot. An *incomplete* stream
        // FROM it means whatever ledger we hold predates the state it was
        // re-sending — promoting that would silently lose the delta, so
        // drop both and let the promotion decision below see the truth.
        if self.steal_victim == Some(d) {
            self.outstanding_steal = false;
            self.steal_victim = None;
        }
        self.outbound_syncs.remove(&d);
        let sync_incomplete = self.inbound_syncs.remove(&d).is_some();
        if sync_incomplete {
            self.ledgers.remove(&d);
        }
        // 3. Abort any termination round in flight: its member set is
        // stale, and a response from the dead peer will never come.
        self.check_in_flight = false;
        self.check_responses.clear();
        self.prev_snapshot = None;
        // 4. Promote or wind down. Either way the first live successor
        // adopts the dead peer's clients: their re-routed requests land
        // here, and the wind-down must account for them before exiting.
        let promoter = self.layout.route(d, self.membership.dead());
        let successor = promoter == self.comm.rank();
        // Shards earlier subsumed into the dead peer's ledger resolve
        // with it now — they ride along on a promotion of a fresh copy,
        // are lost with a stale or absent one, or travel on to the next
        // promoter in the chain.
        let chain: Vec<Rank> = self
            .subsumed
            .iter()
            .filter(|&(_, p)| *p == d)
            .map(|(e, _)| *e)
            .collect();
        if successor {
            for &e in std::iter::once(&d).chain(chain.iter()) {
                for c in self.layout.clients_of(e) {
                    self.my_clients.insert(c);
                }
                self.subsumed.remove(&e);
            }
        }
        let required = self.required_merges.remove(&d).unwrap_or(0);
        let mut promoted = false;
        if self.config.replication >= 2 {
            if successor {
                match self.ledgers.remove(&d) {
                    // A copy whose merge count predates a promotion the
                    // dead peer performed is missing that merge:
                    // promoting it would silently lose the subsumed shard
                    // and the run would hang on the lost tasks. Abort
                    // with the diagnosis instead — the flip side of
                    // re-replication, which ships a fresh copy (carrying
                    // the higher version) long before a well-gapped
                    // second death.
                    Some(ledger) if ledger.merges < required && !self.shutdown => {
                        promoted = self.try_pfs_restore(
                            d,
                            required,
                            &chain,
                            "the only replica here predates an earlier failover and was never refreshed",
                        );
                    }
                    Some(ledger) => {
                        self.promote(d, ledger);
                        promoted = true;
                    }
                    // After global termination nothing was lost — the run
                    // completed; retried requests get terminal answers.
                    None if self.shutdown => {}
                    None if sync_incomplete => {
                        promoted = self.try_pfs_restore(
                            d,
                            required,
                            &chain,
                            "it died before finishing its re-replication to this successor",
                        );
                    }
                    None => {
                        promoted = self.try_pfs_restore(
                            d,
                            required,
                            &chain,
                            "its replica never reached this successor",
                        );
                    }
                }
            } else if !self.shutdown {
                // Another survivor now serves the dead peer's shard,
                // merging it into its own ledger. Any copy of THAT
                // peer's ledger snapshotted before the merge no longer
                // reflects its state: the merge bulk never flows through
                // write-through ops. Raise the merge count a promotable
                // copy must carry (its post-promotion resync ships one;
                // off re-replication, nothing ever does) — and remember
                // that the dead shard (plus anything already riding with
                // it) now travels inside the promoter's ledger.
                *self.required_merges.entry(promoter).or_insert(0) += 1;
                for &e in std::iter::once(&d).chain(chain.iter()) {
                    self.subsumed.insert(e, promoter);
                }
            }
        } else if !self.shutdown {
            if self.config.checkpoint.is_some() {
                // The durable tier makes replication=1 survivable: the
                // successor restores the shard from pfs, and the others
                // track the subsumption exactly as the replicated path
                // does so later deaths route and adopt correctly.
                if successor {
                    promoted =
                        self.try_pfs_restore(d, required, &chain, "replication=1 keeps no replica");
                } else {
                    *self.required_merges.entry(promoter).or_insert(0) += 1;
                    for &e in std::iter::once(&d).chain(chain.iter()) {
                        self.subsumed.insert(e, promoter);
                    }
                }
            } else {
                self.enter_abort(d, "replication=1 keeps no replica", &chain);
            }
        }
        // The merged bulk of a promotion never flows through the op
        // stream; only a full snapshot captures it. Anchor the merged
        // state durably now and leave redirect tombstones so any restore
        // of the dead homes finds it here.
        if promoted {
            let covered: Vec<Rank> = std::iter::once(d).chain(chain.iter().copied()).collect();
            self.ckpt_cover_homes(&covered);
        }
        // A peer that died mid-shutdown leaves clients whose `NoMore`
        // notices may have died with it (unfinished in the merged
        // replica). Keep the linger alive until each has been
        // re-answered or is itself confirmed dead.
        if successor && self.shutdown {
            for c in self.layout.clients_of(d) {
                if !self.finished.contains(&c) {
                    self.stranded.insert(c);
                }
            }
        }
        // 5. Reshape the ring: the dead peer may have been one of our
        // replica holders (a replacement gets our full ledger), and a
        // promotion must re-stream the merged state to every holder —
        // their replicas predate the merge. Any stream this starts is the
        // R-restoration clock: when the last one completes, this server's
        // shard is fully replicated again.
        self.refresh_repl_targets(promoted);
        if !self.outbound_syncs.is_empty() && self.r_restore_started.is_none() {
            self.r_restore_started = Some(Instant::now());
            self.r_restore_started_us = trace::now_us();
        }
        // 6. Handle what the dead peer had sent beyond replication.
        let mut shutdown = false;
        for msg in deferred {
            shutdown |= self.handle_server_msg(d, msg);
        }
        // 7. Re-drive write-ahead transfers that were addressed to the
        // dead peer (and any inherited from its ledger).
        self.redrive_pending_xfers();
        // 8. Merged work may satisfy parked clients right now.
        self.service_parked();
        self.commit_tx();
        shutdown
    }

    /// Merge a dead peer's replica ledger into this server's live state:
    /// this rank now serves the dead peer's shard, queue, leases and
    /// clients.
    fn promote(&mut self, d: Rank, ledger: Ledger) {
        self.stats.failovers += 1;
        trace::record_instant(trace::KIND_FAILOVER, d as u64);
        self.epoch += 1;
        // Bump the freshness version: copies of this server's ledger
        // snapshotted before this merge are no longer promotable.
        self.merges += 1;
        eprintln!(
            "adlb server {}: promoting replica of server {d} ({} datums, {} queued, {} leased)",
            self.comm.rank(),
            ledger.store.len(),
            ledger.queue.len(),
            ledger.leases.values().map(VecDeque::len).sum::<usize>(),
        );
        self.store.merge(ledger.store);
        // Queue entries go in silently: the re-replication stream started
        // right after the merge carries them to every replica holder.
        for t in ledger.queue {
            self.queue.push(t);
        }
        let now = Instant::now();
        let now_us = trace::now_us();
        for (c, deque) in ledger.leases {
            let mine = self.in_flight.entry(c).or_default();
            for task in deque {
                self.tenants.lease_opened(task.tenant);
                mine.push_back(Lease {
                    task,
                    since: now,
                    accepted_us: now_us,
                });
            }
        }
        for (c, n) in ledger.credits {
            *self.lease_revoked.entry(c).or_insert(0) += n as usize;
        }
        for (c, s) in ledger.seqs {
            let hw = self.client_seqs.entry(c).or_default();
            *hw = (*hw).max(s);
        }
        // Re-send every cached response unprompted: the dead server may
        // have processed (and replicated) a request but died before the
        // response left, and the waiting client's retry could race this
        // server's own termination. Clients that did get the original
        // drop the duplicate by its sealed seq. Without this push, a
        // merged `ClientFinished` can satisfy quiescence and let the
        // survivor exit while the finished client still waits for the Ok
        // that died with its server.
        for (c, (_, bytes)) in &ledger.resps {
            self.tx_sends.push((*c, TAG_RESP, bytes.clone()));
        }
        self.client_resps.extend(ledger.resps);
        for (key, text) in ledger.outputs {
            self.outputs.entry(key).or_default().push_str(&text);
        }
        self.finished.extend(ledger.finished);
        for q in ledger.quarantine {
            if !self.quarantine_reports.contains(&q) {
                self.quarantine_reports.push(q);
            }
        }
        for x in ledger.pending_xfers {
            self.pending_xfers.push(PendingXfer { x, sent_to: None });
        }
        // `next_fseq` merges by max. The dead peer's counters number
        // transfers with origin `d`, so this server's own numbering
        // (origin = me) did not strictly need them — but folding them in
        // keeps the checkpoint written after this merge a safe upper
        // bound for ANY origin it covers: a whole-world resume hands the
        // merged counters back to the subsumed home, whose fresh
        // transfers must outnumber everything receivers have durably
        // applied from it. Gaps in a sender's fseq sequence are harmless
        // (receiver dedup is a high-water mark).
        for (dest, f) in ledger.next_fseq {
            let hw = self.next_fseq.entry(dest).or_default();
            *hw = (*hw).max(f);
        }
        for (k, f) in ledger.xfer_applied {
            let hw = self.xfer_applied.entry(k).or_default();
            *hw = (*hw).max(f);
        }
        self.fwd_out += ledger.fwd_out;
        self.fwd_in += ledger.fwd_in;
    }

    /// No replica to promote: the shard is lost. Stay up, answer every
    /// `Get` with `NoMore` plus the diagnosis (a clean, attributable
    /// failure instead of a hang), give lost-shard data ops benign
    /// defaults, and exit once every client is accounted for.
    /// The chain of shards subsumed into an unrecoverable peer's ledger
    /// is lost with it: record each as a lost home (data ops on it get
    /// benign defaults instead of parking forever) with its clients'
    /// streams marked truncated.
    fn mark_chain_lost(&mut self, chain: &[Rank]) {
        for &e in chain {
            self.lost_homes.insert(e);
            for c in self.layout.clients_of(e) {
                self.truncated.insert(c);
            }
        }
    }

    /// No usable RAM replica for dead home `d` — the last line of defense
    /// is the durable tier. Restore the shard's latest checkpoint segment
    /// plus WAL tail and promote it exactly like a replica; on any
    /// failure (no checkpoint configured, a stale checkpoint predating a
    /// failover `d` performed, or corruption) fall through to the abort
    /// with a diagnosis naming the shard, its subsumption chain, and the
    /// last durable LSN.
    fn try_pfs_restore(&mut self, d: Rank, required: u64, chain: &[Rank], why: &str) -> bool {
        let Some(cfg) = self.config.checkpoint.clone() else {
            self.enter_abort(d, why, chain);
            self.mark_chain_lost(chain);
            return false;
        };
        let start_us = trace::now_us();
        let started = Instant::now();
        let mut client = cfg.fs.client();
        match restore_home(&mut client, d) {
            // A checkpoint whose merge count predates a promotion `d`
            // performed is missing the subsumed shard, exactly like a
            // stale replica — promoting it would silently lose state.
            Ok(r) if r.ledger.merges >= required => {
                eprintln!(
                    "adlb server {}: restoring shard of server {d} from pfs checkpoint \
                     (last durable LSN {}, {} datums, {} queued)",
                    self.comm.rank(),
                    r.last_lsn,
                    r.ledger.store.len(),
                    r.ledger.queue.len(),
                );
                if let Some(sink) = &mut self.ckpt {
                    sink.adopt_history(r.history);
                }
                self.promote(d, r.ledger);
                self.stats.pfs_restores += 1;
                let micros = started.elapsed().as_micros() as u64;
                self.stats.ckpt_restore_micros = self.stats.ckpt_restore_micros.max(micros);
                trace::record_since(trace::KIND_CKPT_RESTORE, d as u64, start_us);
                true
            }
            Ok(r) => {
                let msg = format!(
                    "{why}, and its durable checkpoint (last durable LSN {}) \
                     predates an earlier failover it performed",
                    r.last_lsn
                );
                self.enter_abort(d, &msg, chain);
                self.mark_chain_lost(chain);
                false
            }
            Err(e) => {
                let msg = format!("{why}, and its checkpoint failed to restore: {e}");
                self.enter_abort(d, &msg, chain);
                self.mark_chain_lost(chain);
                false
            }
        }
    }

    fn enter_abort(&mut self, d: Rank, why: &str, chain: &[Rank]) {
        self.lost_homes.insert(d);
        for c in self.layout.clients_of(d) {
            self.truncated.insert(c);
        }
        if !self.aborting {
            self.aborting = true;
            self.repl_targets.clear();
            self.outbound_syncs.clear();
            let chain_note = if chain.is_empty() {
                String::new()
            } else {
                let links: Vec<String> = chain.iter().map(|e| e.to_string()).collect();
                format!(
                    " (which had subsumed the shard{} of rank{} {})",
                    if chain.len() == 1 { "" } else { "s" },
                    if chain.len() == 1 { "" } else { "s" },
                    links.join(", ")
                )
            };
            let durable_note = if self.config.checkpoint.is_some() {
                // `why` already carries the last durable LSN when a
                // restore was attempted and failed.
                String::new()
            } else {
                "; no checkpoint configured".to_string()
            };
            let report = format!(
                "server rank {d} died and its shard{chain_note} is unrecoverable \
                 ({why}{durable_note}): queued tasks, leases and data futures on it are lost"
            );
            eprintln!("adlb server {}: {report}; winding down", self.comm.rank());
            self.abort_reason = Some(report.clone());
            self.quarantine_reports.push(report);
        }
        // Parked clients will never be served: tell them now.
        for p in std::mem::take(&mut self.parked) {
            self.finished.insert(p.rank);
            let quarantined = self.capped_reports();
            let aborted = self.abort_reason.clone();
            self.send_response(
                p.rank,
                p.seq,
                Response::NoMore {
                    quarantined,
                    aborted,
                },
                true,
            );
        }
    }

    // -- idle actions ------------------------------------------------------

    /// Returns true when the server should exit (abort-mode drain done).
    fn idle_actions(&mut self) -> bool {
        // An idle tick bounds the group-commit latency: whatever the WAL
        // buffer holds (and whatever sends it is holding back) goes
        // durable now, at most one poll interval after commit.
        if self.ckpt.as_ref().is_some_and(|c| c.buffered() > 0) {
            self.ckpt_flush(false);
        }
        // Fault handling first: dead peers and clients must be noticed
        // (and their work requeued or adopted) before quiescence is
        // evaluated, or termination would wait forever on a rank that
        // will never park.
        let now = Instant::now();
        let comm = self.comm.clone();
        let newly_dead = self.membership.tick(now, |r| comm.is_alive(r));
        for d in newly_dead {
            if self.handle_server_death(d) {
                // A Shutdown was sitting in the dead peer's mailbox.
                return true;
            }
        }
        self.detect_dead_clients();
        self.check_lease_timeouts();
        self.nudge_syncs(now);
        if self.aborting {
            // Done when every client of ours is finished or dead; they
            // all reach `finished` through NoMore, Finished, or death.
            return self
                .my_clients
                .iter()
                .all(|c| self.finished.contains(c) || !self.comm.is_alive(*c));
        }
        // Termination check next: a fresh steal attempt would otherwise
        // mark this server non-quiescent on every tick.
        if self.comm.rank() == self.master()
            && !self.check_in_flight
            && self.quiescent()
            && self.start_check_round()
        {
            return true;
        }
        if self.steal_backoff > 0 {
            self.steal_backoff -= 1;
            return false;
        }
        self.try_steal();
        false
    }

    fn try_steal(&mut self) {
        if !self.config.steal_enabled
            || self.aborting
            || self.steal_backoff > 0
            || self.outstanding_steal
            || self.parked.is_empty()
            || !self.queue.is_empty()
        {
            return;
        }
        let others = self.membership.live_peers();
        if others.is_empty() {
            return;
        }
        // Union of work types our parked clients want.
        let mut types: Vec<u32> = Vec::new();
        for p in &self.parked {
            for t in &p.work_types {
                if !types.contains(t) {
                    types.push(*t);
                }
            }
        }
        let victim = others[self.steal_victim_cursor % others.len()];
        self.outstanding_steal = true;
        self.steal_victim = Some(victim);
        self.steal_started_us = trace::now_us();
        self.stats.steals_attempted += 1;
        self.tx_sends.push((
            victim,
            TAG_SRV,
            ServerMsg::StealReq {
                thief: self.comm.rank(),
                work_types: types,
                // Sizing hint: at least one task per starved client.
                need: self.parked.len() as u32,
            }
            .encode(),
        ));
    }

    /// Poll the live peers for a termination round. Returns true when the
    /// round decided termination immediately (no peers to wait for).
    fn start_check_round(&mut self) -> bool {
        self.check_round += 1;
        self.check_responses.clear();
        self.check_members = self.membership.live_peers();
        self.check_in_flight = true;
        for &r in &self.check_members.clone() {
            self.tx_sends.push((
                r,
                TAG_SRV,
                ServerMsg::Check {
                    round: self.check_round,
                }
                .encode(),
            ));
        }
        if self.check_members.is_empty() {
            // No peers to wait for (single server, or every peer dead):
            // decide now.
            return self.evaluate_check_round();
        }
        false
    }

    /// All responses for the current round are in; decide.
    fn evaluate_check_round(&mut self) -> bool {
        self.check_in_flight = false;
        let mut all_quiescent = self.quiescent();
        let mut fwd_out_sum = self.fwd_out;
        let mut fwd_in_sum = self.fwd_in;
        let mut snapshot: Vec<u64> = Vec::with_capacity(self.check_members.len() + 1);
        snapshot.push(self.epoch);
        for r in self.check_members.clone() {
            let (q, e, fo, fi) = self.check_responses[&r];
            all_quiescent &= q;
            fwd_out_sum += fo;
            fwd_in_sum += fi;
            snapshot.push(e);
        }
        let stable = self.prev_snapshot.as_deref() == Some(&snapshot[..]);
        self.prev_snapshot = Some(snapshot);
        if all_quiescent && fwd_out_sum == fwd_in_sum && stable {
            let note = ServerMsg::Shutdown {
                reports: self.capped_reports(),
            }
            .encode();
            for r in self.membership.live_peers() {
                self.tx_sends.push((r, TAG_SRV, note.clone()));
            }
            return true;
        }
        false
    }

    fn capped_reports(&self) -> Vec<String> {
        // Cap the reports shipped per message; the full list stays in
        // `self.quarantine_reports` for post-mortem inspection.
        self.quarantine_reports.iter().take(8).cloned().collect()
    }

    fn finish_run(&mut self) -> ServerOutcome {
        // Everything committed so far goes durable before the shutdown
        // notices start flowing (and the final stats snapshot is taken).
        self.ckpt_flush(false);
        // Shutdown notices first, *replicated before they leave*
        // (`commit_tx` ships the ops ahead of the sends): if this server
        // dies between the sends below, the promoted successor re-pushes
        // the cached notices to whoever missed theirs.
        let reports = self.capped_reports();
        for p in std::mem::take(&mut self.parked) {
            self.finished.insert(p.rank);
            self.op(ReplOp::ClientFinished { client: p.rank });
            let resp = Response::NoMore {
                quarantined: reports.clone(),
                aborted: self.abort_reason.clone(),
            };
            self.send_response(p.rank, p.seq, resp, true);
        }
        self.commit_tx();
        // Group commit would otherwise hold the NoMore notices until the
        // next idle tick — but there is none after linger returns (with no
        // live peers it returns immediately), so force the final flush.
        self.ckpt_flush(false);
        // Goodbye receipt last on every peer link: sends complete in
        // program order, so a delivered `Bye` proves the notices above
        // left too. Then stay up until every live peer's own `Bye`
        // arrives — a peer that dies mid-shutdown instead would strand
        // its parked clients with nobody left to answer their retries.
        let bye = ServerMsg::Bye.encode();
        for p in self.membership.live_peers() {
            self.comm.send(p, TAG_SRV, bye.clone());
        }
        self.shutdown = true;
        self.repl_targets.clear();
        self.outbound_syncs.clear();
        self.linger();
        let mut streams: Vec<(Rank, u32, String)> =
            self.outputs.drain().map(|((r, t), s)| (r, t, s)).collect();
        streams.sort();
        let mut truncated: Vec<Rank> = self.truncated.iter().copied().collect();
        truncated.sort_unstable();
        ServerOutcome {
            stats: self.stats,
            streams,
            truncated,
            tenant_rows: self.tenants.stats_rows(),
        }
    }

    /// Post-termination linger: wait for every live peer's `Bye`,
    /// meanwhile answering retried client requests terminally (their
    /// server may have died mid-shutdown) and running failover for peers
    /// that die instead of saying goodbye — promotion re-pushes the dead
    /// peer's replicated shutdown notices to its stranded clients.
    ///
    /// The linger also outlives any client left stranded by such a death
    /// (adopted but not provably notified): a stranded client is either
    /// blocked retrying its request — it probes its dead home every
    /// retry interval and re-sends here, where the answer un-strands it —
    /// or was itself killed, in which case the membership tick drops it.
    ///
    /// This always terminates: every server sends `Bye` *before* it
    /// starts waiting (no circular wait), an exited peer's `Bye` was its
    /// last completed send, and a killed peer is confirmed dead by the
    /// membership tick and dropped from the wait set.
    fn linger(&mut self) {
        loop {
            if self
                .membership
                .live_peers()
                .iter()
                .all(|p| self.byes.contains(p))
                && self.stranded.is_empty()
            {
                return;
            }
            match self
                .comm
                .recv_timeout(Src::Any, TagSel::Any, self.config.poll_interval)
            {
                Some(m) if m.tag == TAG_REQ => {
                    // `shutdown` makes `Get` terminal (`NoMore`); dedup,
                    // cached-response replay and data ops work as usual
                    // over the merged state.
                    if let Ok((req, seq)) = Request::decode_shared(&m.data) {
                        self.handle_request(m.source, req, seq);
                    }
                    self.commit_tx();
                }
                Some(m) if m.tag == TAG_SRV => {
                    if self.membership.is_dead(m.source) {
                        continue;
                    }
                    self.membership.heard(m.source, Instant::now());
                    match ServerMsg::decode_shared(&m.data) {
                        Ok(ServerMsg::Bye) => {
                            self.byes.insert(m.source);
                        }
                        Ok(ServerMsg::Repl { ops }) => {
                            self.apply_repl_ops(m.source, ops);
                        }
                        Ok(ServerMsg::Snapshot { ledger }) => {
                            self.inbound_syncs.remove(&m.source);
                            self.ledgers.insert(m.source, *ledger);
                        }
                        Ok(ServerMsg::ReplSync {
                            sync_id,
                            cursor,
                            total,
                            data,
                        }) => {
                            // A peer may still be restoring R when
                            // termination lands; keep acking so its stream
                            // retires cleanly (and the ledger stays fresh
                            // in case the peer dies mid-linger).
                            self.absorb_sync_chunk(m.source, sync_id, cursor, total, &data, true);
                        }
                        Ok(ServerMsg::SyncAck { sync_id, cursor }) => {
                            self.handle_sync_ack(m.source, sync_id, cursor);
                        }
                        // Anything else is pre-shutdown traffic whose
                        // effects no longer matter: termination required
                        // global quiescence, so no transfer, steal or
                        // check round can still be live.
                        Ok(_) | Err(_) => {}
                    }
                }
                Some(_) => {}
                None => {
                    let now = Instant::now();
                    let comm = self.comm.clone();
                    let newly_dead = self.membership.tick(now, |r| comm.is_alive(r));
                    for d in newly_dead {
                        self.handle_server_death(d);
                    }
                    // A stranded client that was itself killed will never
                    // retry; stop waiting for it.
                    self.stranded.retain(|c| comm.is_alive(*c));
                    self.commit_tx();
                }
            }
        }
    }
}

/// The wire form of a write-ahead transfer: single non-steal tasks ride
/// the `Forward` variant, everything else a `StealResp`.
fn xfer_wire(origin: Rank, dest: Rank, fseq: u64, steal: bool, tasks: &[Task]) -> Bytes {
    if !steal && tasks.len() == 1 {
        ServerMsg::Forward {
            origin,
            dest,
            fseq,
            task: tasks[0].clone(),
        }
        .encode()
    } else {
        ServerMsg::StealResp {
            origin,
            dest,
            fseq,
            tasks: tasks.to_vec(),
        }
        .encode()
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    /// A stats value with every field distinct and nonzero, so a merge
    /// that drops or mis-routes any field changes an assertion below.
    fn distinct() -> ServerStats {
        // A struct literal (not `..Default::default()`) on purpose:
        // adding a `ServerStats` field without extending this test is a
        // compile error, which is the regression guard the issue asked
        // for — the old hand-maintained list silently dropped fields.
        ServerStats {
            tasks_accepted: 1,
            tasks_delivered: 2,
            steals_attempted: 3,
            steals_successful: 4,
            tasks_stolen: 5,
            tasks_donated: 6,
            data_ops: 7,
            notifications: 8,
            tasks_requeued: 9,
            tasks_retried: 10,
            tasks_quarantined: 11,
            protocol_errors: 12,
            ranks_failed: 13,
            tasks_prefetched: 14,
            failovers: 15,
            repl_ops: 16,
            repl_syncs: 17,
            repl_sync_bytes: 18,
            r_restore_micros: 19,
            ckpt_records: 20,
            ckpt_ops: 21,
            ckpt_segments: 22,
            ckpt_bytes: 23,
            pfs_restores: 24,
            ckpt_restore_micros: 25,
        }
    }

    #[test]
    fn merge_covers_every_field() {
        let mut total = ServerStats::default();
        total.merge(&distinct());
        assert_eq!(total, distinct());
        total.merge(&distinct());
        // Counters doubled; the recovery window is a duration and takes
        // the max, not the sum.
        let d = distinct();
        assert_eq!(total.tasks_accepted, 2 * d.tasks_accepted);
        assert_eq!(total.tasks_delivered, 2 * d.tasks_delivered);
        assert_eq!(total.steals_attempted, 2 * d.steals_attempted);
        assert_eq!(total.steals_successful, 2 * d.steals_successful);
        assert_eq!(total.tasks_stolen, 2 * d.tasks_stolen);
        assert_eq!(total.tasks_donated, 2 * d.tasks_donated);
        assert_eq!(total.data_ops, 2 * d.data_ops);
        assert_eq!(total.notifications, 2 * d.notifications);
        assert_eq!(total.tasks_requeued, 2 * d.tasks_requeued);
        assert_eq!(total.tasks_retried, 2 * d.tasks_retried);
        assert_eq!(total.tasks_quarantined, 2 * d.tasks_quarantined);
        assert_eq!(total.protocol_errors, 2 * d.protocol_errors);
        assert_eq!(total.ranks_failed, 2 * d.ranks_failed);
        assert_eq!(total.tasks_prefetched, 2 * d.tasks_prefetched);
        assert_eq!(total.failovers, 2 * d.failovers);
        assert_eq!(total.repl_ops, 2 * d.repl_ops);
        assert_eq!(total.repl_syncs, 2 * d.repl_syncs);
        assert_eq!(total.repl_sync_bytes, 2 * d.repl_sync_bytes);
        assert_eq!(total.r_restore_micros, d.r_restore_micros);
        assert_eq!(total.ckpt_records, 2 * d.ckpt_records);
        assert_eq!(total.ckpt_ops, 2 * d.ckpt_ops);
        assert_eq!(total.ckpt_segments, 2 * d.ckpt_segments);
        assert_eq!(total.ckpt_bytes, 2 * d.ckpt_bytes);
        assert_eq!(total.pfs_restores, 2 * d.pfs_restores);
        assert_eq!(total.ckpt_restore_micros, d.ckpt_restore_micros);
    }

    #[test]
    fn merge_takes_max_recovery_window() {
        let mut a = ServerStats {
            r_restore_micros: 500,
            ..Default::default()
        };
        let b = ServerStats {
            r_restore_micros: 200,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.r_restore_micros, 500, "a slower server must dominate");
        let mut c = ServerStats::default();
        c.merge(&a);
        assert_eq!(c.r_restore_micros, 500);
    }
}
