//! Durable pfs-backed checkpoint/WAL tier.
//!
//! Replication (PR 3–4) keeps a shard alive as long as *one* holder
//! survives a failure window. This module adds the layer below: every
//! server appends its replication op stream to a per-shard write-ahead
//! log on the simulated parallel filesystem, periodically compacted into
//! full checkpoint segments. Two recovery paths use it:
//!
//! * **Total replica loss.** When membership confirms a shard lost every
//!   holder, the would-be abort becomes a restore: the surviving
//!   successor reads the shard's latest segment, replays the WAL tail,
//!   and promotes the result exactly as it would a RAM replica.
//! * **Whole-world restart.** Kill every rank, relaunch with `--resume`:
//!   each server restores its own shard (following subsumption redirects
//!   left by earlier failovers) and clients re-execute from scratch,
//!   with the per-client seq dedup replaying durable responses
//!   byte-for-byte so effects stay exactly-once.
//!
//! **Group commit is the correctness core.** While ops sit unflushed in
//! the WAL buffer, *every* outbound send of the server (client responses
//! and server-to-server traffic alike) is held. Nothing observable
//! leaves the server before the ops it reflects are durable, so a
//! restore can never lose state that any other rank has acted on — the
//! same crash-consistency argument the write-through replication path
//! makes, extended to the durable tier. Batching `interval` ops per WAL
//! record (one metadata op + one data op per flush) is what keeps the
//! pfs metadata server from being stormed — the paper's §IV small-file
//! wall, measurable with `SWIFTT_CHECKPOINT=1` (per-task logging).
//!
//! On-disk layout under `/ckpt/<home>/`:
//!
//! * `seg-<k>` — magic, last covered LSN, full [`Ledger`], response
//!   history (per client, every sealed response by seq — whole-world
//!   resume replays these to restarted clients).
//! * `wal-<k>` — length-framed records appended since segment `k`; each
//!   record is `[lsn, n, op...]`.
//! * `latest` — pointer to the newest segment epoch, or a *redirect
//!   tombstone* naming the server that subsumed this shard in a
//!   failover (its checkpoint now covers this home's state).
//!
//! Replay sorts the tail by LSN and drops duplicates, so a WAL whose
//! tail was re-appended or reordered by a crashed writer restores to the
//! same state — the idempotence property the stress proptest pins down.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use mpisim::{Rank, Tag, WireReader, WireWriter};
use pfs::{Pfs, PfsClient};

use crate::layout::Layout;
use crate::replica::{Ledger, ReplOp};

/// Default ops per WAL record (the group-commit batch size).
pub const DEFAULT_INTERVAL: usize = 64;
/// Default WAL records between checkpoint segments.
pub const DEFAULT_SEGMENT_EVERY: usize = 32;

const SEG_MAGIC: u32 = 0x434b_5031; // "CKP1"

/// FNV-1a 64-bit over `bytes` — the integrity checksum appended to every
/// WAL record frame and checkpoint segment. Hand-rolled (no external
/// hash dependency); collision resistance is irrelevant here, this only
/// has to catch torn writes and bit rot in a durable image.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checkpointing knobs carried in [`crate::ServerConfig`].
#[derive(Clone)]
pub struct CheckpointConfig {
    /// The durable tier. All servers of one run share one filesystem.
    pub fs: Arc<Pfs>,
    /// Ops per WAL record: `1` logs (and pays the metadata server) per
    /// task-effect commit, larger values group-commit.
    pub interval: usize,
    /// WAL records between full checkpoint segments.
    pub segment_every: usize,
    /// Restore each server's shard from the filesystem before serving.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpointing to `fs` with default cadence, not resuming.
    pub fn new(fs: Arc<Pfs>) -> Self {
        CheckpointConfig {
            fs,
            interval: DEFAULT_INTERVAL,
            segment_every: DEFAULT_SEGMENT_EVERY,
            resume: false,
        }
    }

    /// Set the group-commit interval (clamped to at least 1).
    pub fn interval(mut self, ops: usize) -> Self {
        self.interval = ops.max(1);
        self
    }

    /// Set the segment compaction cadence (clamped to at least 1).
    pub fn segment_every(mut self, records: usize) -> Self {
        self.segment_every = records.max(1);
        self
    }

    /// Restore from the last durable checkpoint instead of starting empty.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }
}

impl fmt::Debug for CheckpointConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointConfig")
            .field("interval", &self.interval)
            .field("segment_every", &self.segment_every)
            .field("resume", &self.resume)
            .finish_non_exhaustive()
    }
}

fn seg_path(home: Rank, k: u64) -> String {
    format!("/ckpt/{home}/seg-{k}")
}

fn wal_path(home: Rank, k: u64) -> String {
    format!("/ckpt/{home}/wal-{k}")
}

fn latest_path(home: Rank) -> String {
    format!("/ckpt/{home}/latest")
}

/// Per-client sealed responses by seq, kept for whole-world resume.
pub type RespHistory = HashMap<Rank, HashMap<u64, Bytes>>;

fn absorb_history(history: &mut RespHistory, ops: &[ReplOp]) {
    for op in ops {
        if let ReplOp::SeqResp {
            client,
            seq,
            resp: Some(bytes),
        } = op
        {
            history
                .entry(*client)
                .or_default()
                .insert(*seq, bytes.clone());
        }
    }
}

/// Encode one WAL record: a length-framed `[lsn, n, op...]` batch,
/// followed by an FNV-1a checksum of the body.
pub fn encode_wal_record(lsn: u64, ops: &[ReplOp]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    w.put_u32(ops.len() as u32);
    for op in ops {
        op.encode_into(&mut w);
    }
    let body = w.finish();
    let mut out = Vec::with_capacity(4 + body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&fnv1a(&body).to_le_bytes());
    out
}

/// Decode a WAL file into `(lsn, ops)` records. Errors on a torn frame,
/// a checksum mismatch, or an undecodable op — corruption, not a
/// recoverable condition.
pub fn decode_wal(buf: &[u8]) -> Result<Vec<(u64, Vec<ReplOp>)>, String> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        let len_bytes = buf
            .get(at..at + 4)
            .ok_or("wal: torn frame header")?
            .try_into()
            .map_err(|_| "wal: torn frame header")?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        at += 4;
        let body = buf.get(at..at + len).ok_or("wal: torn frame body")?;
        at += len;
        let sum_bytes: [u8; 8] = buf
            .get(at..at + 8)
            .ok_or("wal: torn frame checksum")?
            .try_into()
            .map_err(|_| "wal: torn frame checksum")?;
        at += 8;
        if u64::from_le_bytes(sum_bytes) != fnv1a(body) {
            return Err(format!(
                "wal: record checksum mismatch at byte {}",
                at - len - 12
            ));
        }
        let mut r = WireReader::new(body);
        let lsn = r.get_u64().map_err(|e| format!("wal: {e:?}"))?;
        let n = r.get_u32().map_err(|e| format!("wal: {e:?}"))?;
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ops.push(ReplOp::decode_from(&mut r).map_err(|e| format!("wal: {e:?}"))?);
        }
        records.push((lsn, ops));
    }
    Ok(records)
}

/// Replay WAL records with LSN greater than `from_lsn` onto `ledger`,
/// in LSN order, ignoring duplicates. Duplicated or reordered tail
/// records — a crashed writer's re-appends — replay to the same state.
/// Returns the highest LSN applied (or `from_lsn` if none were).
pub fn replay_wal_records(
    ledger: &mut Ledger,
    owner: Rank,
    from_lsn: u64,
    mut records: Vec<(u64, Vec<ReplOp>)>,
) -> u64 {
    records.sort_by_key(|(lsn, _)| *lsn);
    let mut last = from_lsn;
    for (lsn, ops) in records {
        if lsn <= last {
            continue; // duplicate or already covered by the segment
        }
        for op in &ops {
            ledger.apply(owner, op);
        }
        last = lsn;
    }
    last
}

fn encode_segment(last_lsn: u64, ledger: &Ledger, history: &RespHistory) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(SEG_MAGIC);
    w.put_u64(last_lsn);
    ledger.encode_into(&mut w);
    let mut clients: Vec<&Rank> = history.keys().collect();
    clients.sort();
    w.put_u32(clients.len() as u32);
    for c in clients {
        w.put_u32(*c as u32);
        let by_seq = &history[c];
        let mut seqs: Vec<&u64> = by_seq.keys().collect();
        seqs.sort();
        w.put_u32(seqs.len() as u32);
        for s in seqs {
            w.put_u64(*s);
            w.put_bytes(&by_seq[s]);
        }
    }
    let mut out = w.finish().to_vec();
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn decode_segment(buf: &[u8]) -> Result<(u64, Ledger, RespHistory), String> {
    if buf.len() < 8 {
        return Err("segment: truncated (no checksum)".into());
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let sum: [u8; 8] = sum_bytes
        .try_into()
        .map_err(|_| "segment: truncated (no checksum)".to_string())?;
    if u64::from_le_bytes(sum) != fnv1a(body) {
        return Err("segment: checksum mismatch".into());
    }
    let mut r = WireReader::new(body);
    let err = |e: mpisim::WireError| format!("segment: {e:?}");
    if r.get_u32().map_err(err)? != SEG_MAGIC {
        return Err("segment: bad magic".into());
    }
    let last_lsn = r.get_u64().map_err(err)?;
    let ledger = Ledger::decode_from(&mut r).map_err(err)?;
    let nclients = r.get_u32().map_err(err)?;
    let mut history = RespHistory::new();
    for _ in 0..nclients {
        let client = r.get_u32().map_err(err)? as Rank;
        let n = r.get_u32().map_err(err)?;
        let by_seq = history.entry(client).or_default();
        for _ in 0..n {
            let seq = r.get_u64().map_err(err)?;
            let bytes = r.get_bytes_shared().map_err(err)?;
            by_seq.insert(seq, bytes);
        }
    }
    Ok((last_lsn, ledger, history))
}

const LATEST_SEGMENT: u8 = 0;
const LATEST_REDIRECT: u8 = 1;

fn encode_latest_segment(seg_no: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(LATEST_SEGMENT);
    w.put_u64(seg_no);
    w.finish().to_vec()
}

fn encode_latest_redirect(to: Rank) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(LATEST_REDIRECT);
    w.put_u32(to as u32);
    w.finish().to_vec()
}

/// What a shard restore found on the filesystem.
pub(crate) struct Restored {
    /// Segment base with the WAL tail replayed on top.
    pub ledger: Ledger,
    /// Durable sealed responses, for replaying to restarted clients.
    pub history: RespHistory,
    /// Highest durable LSN (0 when nothing was ever flushed).
    pub last_lsn: u64,
    /// Segment epoch the restore read (resumers continue after it).
    pub seg_no: u64,
    /// Redirect chain followed from the requested home to the covering
    /// checkpoint (empty when the home's own checkpoint was read).
    pub via: Vec<Rank>,
}

/// Read home `home`'s durable state: follow redirect tombstones to the
/// covering checkpoint, load its latest segment, replay the WAL tail.
/// An entirely absent checkpoint directory restores to an empty ledger —
/// under group commit that means nothing observable ever happened, so
/// empty *is* the correct durable state.
pub(crate) fn restore_home(client: &mut PfsClient, home: Rank) -> Result<Restored, String> {
    let mut at = home;
    let mut via = Vec::new();
    let mut seen = HashSet::new();
    let seg_no = loop {
        if !seen.insert(at) {
            return Err(format!("/ckpt/{home}: redirect cycle through rank {at}"));
        }
        if !client.exists(&latest_path(at)) {
            break 0; // never compacted: segment 0 is the empty base
        }
        let raw = client.read(&latest_path(at)).map_err(|e| format!("{e}"))?;
        let mut r = WireReader::new(&raw);
        match r.get_u8() {
            Ok(LATEST_SEGMENT) => {
                break r.get_u64().map_err(|e| format!("latest: {e:?}"))?;
            }
            Ok(LATEST_REDIRECT) => {
                let to = r.get_u32().map_err(|e| format!("latest: {e:?}"))? as Rank;
                via.push(to);
                at = to;
            }
            _ => return Err(format!("/ckpt/{at}/latest: corrupt pointer")),
        }
    };

    let (mut last_lsn, mut ledger, mut history) = if client.exists(&seg_path(at, seg_no)) {
        let raw = client
            .read(&seg_path(at, seg_no))
            .map_err(|e| format!("{e}"))?;
        decode_segment(&raw)?
    } else {
        (0, Ledger::default(), RespHistory::new())
    };

    if client.exists(&wal_path(at, seg_no)) {
        let raw = client
            .read(&wal_path(at, seg_no))
            .map_err(|e| format!("{e}"))?;
        let records = decode_wal(&raw)?;
        for (_, ops) in &records {
            absorb_history(&mut history, ops);
        }
        last_lsn = replay_wal_records(&mut ledger, at, last_lsn, records);
    }

    Ok(Restored {
        ledger,
        history,
        last_lsn,
        seg_no,
        via,
    })
}

/// Project the slice of a (possibly merged) checkpoint that belongs to
/// `home` under `layout`. After a failover, the subsuming server's
/// checkpoint covers several homes; on whole-world resume every server
/// restores the covering checkpoint and keeps only its own slice, so
/// the partition is disjoint and nothing restores twice:
///
/// * data ids go to `layout.data_owner(id)`,
/// * client-keyed state goes to `layout.server_of(client)`,
/// * targeted queue tasks go to the target's home,
/// * untargeted tasks and global flow state (pending transfers, fwd
///   counters, quarantine) stay with the checkpoint's owner `ckpt_owner`
///   — the global forward/in balance is preserved, which is all the
///   termination detector needs.
pub(crate) fn split_for_home(
    full: &Ledger,
    layout: &Layout,
    home: Rank,
    ckpt_owner: Rank,
) -> Ledger {
    let owner_slice = home == ckpt_owner;
    let mut out = Ledger::default();
    for (id, datum) in full.store.iter() {
        if layout.data_owner(*id) == home {
            out.store.insert_datum(*id, datum.clone());
        }
    }
    for task in &full.queue {
        let keep = match task.target {
            Some(t) => layout.server_of(t) == home,
            None => owner_slice,
        };
        if keep {
            out.queue.push(task.clone());
        }
    }
    let mine = |c: &Rank| layout.server_of(*c) == home;
    out.leases = full
        .leases
        .iter()
        .filter(|(c, _)| mine(c))
        .map(|(c, v)| (*c, v.clone()))
        .collect();
    out.credits = full
        .credits
        .iter()
        .filter(|(c, _)| mine(c))
        .map(|(c, v)| (*c, *v))
        .collect();
    out.seqs = full
        .seqs
        .iter()
        .filter(|(c, _)| mine(c))
        .map(|(c, v)| (*c, *v))
        .collect();
    out.resps = full
        .resps
        .iter()
        .filter(|(c, _)| mine(c))
        .map(|(c, v)| (*c, v.clone()))
        .collect();
    // Transfer numbering goes to EVERY restored home: after a failover
    // the owner's counters upper-bound the subsumed origins' too (see
    // `Server::promote`), and a resumed home reusing old fseq numbers
    // would get its fresh transfers dropped by receivers' durable
    // `xfer_applied` high-waters.
    out.next_fseq = full.next_fseq.clone();
    // Applied-transfer high-waters protect the *destination* home from
    // double-applying a redriven transfer; each entry follows its dest.
    out.xfer_applied = full
        .xfer_applied
        .iter()
        .filter(|((dest, _), _)| *dest == home)
        .map(|(k, v)| (*k, *v))
        .collect();
    if owner_slice {
        out.quarantine = full.quarantine.clone();
        out.pending_xfers = full.pending_xfers.clone();
        out.fwd_out = full.fwd_out;
        out.fwd_in = full.fwd_in;
    }
    // outputs/finished are deliberately dropped: on resume every client
    // is alive again and re-produces its stream from scratch; merges
    // restarts at 0 because the resumed world has seen no failovers.
    out
}

/// Keep only the history of clients homed at `home`.
pub(crate) fn split_history_for_home(
    full: &RespHistory,
    layout: &Layout,
    home: Rank,
) -> RespHistory {
    full.iter()
        .filter(|(c, _)| layout.server_of(**c) == home)
        .map(|(c, m)| (*c, m.clone()))
        .collect()
}

/// The write-behind durability sink one server owns while checkpointing.
pub(crate) struct CheckpointSink {
    client: PfsClient,
    home: Rank,
    interval: usize,
    segment_every: usize,
    /// Ops committed to live state but not yet durable.
    buf: Vec<ReplOp>,
    /// Outbound sends held until `buf` is durable (group commit).
    held: Vec<(Rank, Tag, Bytes)>,
    /// Next LSN to assign (first record is LSN 1).
    next_lsn: u64,
    seg_no: u64,
    records_since_seg: u64,
    history: RespHistory,
    /// WAL records written.
    pub records: u64,
    /// Ops made durable.
    pub ops_logged: u64,
    /// Checkpoint segments written.
    pub segments: u64,
    /// Bytes written to the durable tier (WAL + segments).
    pub bytes_written: u64,
}

impl CheckpointSink {
    pub(crate) fn new(cfg: &CheckpointConfig, home: Rank) -> Self {
        CheckpointSink {
            client: cfg.fs.client(),
            home,
            interval: cfg.interval.max(1),
            segment_every: cfg.segment_every.max(1),
            buf: Vec::new(),
            held: Vec::new(),
            next_lsn: 1,
            seg_no: 0,
            records_since_seg: 0,
            history: RespHistory::new(),
            records: 0,
            ops_logged: 0,
            segments: 0,
            bytes_written: 0,
        }
    }

    /// Continue after a restore: later records follow the restored LSN
    /// and the next segment supersedes the restored epoch.
    pub(crate) fn fast_forward(&mut self, last_lsn: u64, seg_no: u64) {
        self.next_lsn = last_lsn + 1;
        self.seg_no = seg_no;
    }

    /// Adopt durable response history (restore/promotion paths).
    pub(crate) fn adopt_history(&mut self, history: RespHistory) {
        for (client, by_seq) in history {
            self.history.entry(client).or_default().extend(by_seq);
        }
    }

    /// Buffer committed ops for the next WAL record.
    pub(crate) fn log(&mut self, ops: &[ReplOp]) {
        absorb_history(&mut self.history, ops);
        self.buf.extend_from_slice(ops);
    }

    /// [`CheckpointSink::log`] taking ownership: with no replica holders
    /// the op batch has no other consumer, so skip the per-op clone.
    pub(crate) fn log_owned(&mut self, mut ops: Vec<ReplOp>) {
        absorb_history(&mut self.history, &ops);
        self.buf.append(&mut ops);
    }

    /// Hold outbound sends until the buffered ops are durable.
    pub(crate) fn hold(&mut self, sends: &mut Vec<(Rank, Tag, Bytes)>) {
        self.held.append(sends);
    }

    pub(crate) fn buffered(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn due_flush(&self) -> bool {
        self.buf.len() >= self.interval
    }

    pub(crate) fn due_segment(&self) -> bool {
        self.records_since_seg >= self.segment_every as u64
    }

    /// Highest durable LSN so far (0 = nothing flushed yet).
    pub(crate) fn last_durable_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Flush buffered ops as one WAL record (one metadata op + one data
    /// op on the filesystem) and release every held send.
    pub(crate) fn flush_wal(&mut self) -> Vec<(Rank, Tag, Bytes)> {
        if !self.buf.is_empty() {
            let ops = std::mem::take(&mut self.buf);
            let lsn = self.next_lsn;
            self.next_lsn += 1;
            let record = encode_wal_record(lsn, &ops);
            let path = wal_path(self.home, self.seg_no);
            self.client.append(&path, &record);
            if let Ok(n) = self.client.flush(&path) {
                self.bytes_written += n as u64;
            }
            self.records += 1;
            self.ops_logged += ops.len() as u64;
            self.records_since_seg += 1;
        }
        std::mem::take(&mut self.held)
    }

    /// Compact the durable state into a fresh segment and retire the old
    /// epoch's files. Callers must [`CheckpointSink::flush_wal`] first so
    /// `ledger` (the live snapshot) contains no op newer than the WAL —
    /// otherwise the tail would replay on top of a base that already
    /// includes it.
    pub(crate) fn write_segment(&mut self, ledger: &Ledger) {
        debug_assert!(self.buf.is_empty(), "segment written over unflushed ops");
        let old = self.seg_no;
        self.seg_no += 1;
        let body = encode_segment(self.last_durable_lsn(), ledger, &self.history);
        let seg_bytes = body.len() as u64;
        if self
            .client
            .put(&seg_path(self.home, self.seg_no), &body)
            .is_ok()
        {
            self.segments += 1;
            self.bytes_written += seg_bytes;
        }
        let _ = self
            .client
            .put(&latest_path(self.home), &encode_latest_segment(self.seg_no));
        // Retire the superseded epoch (either file may not exist).
        let _ = self.client.unlink(&wal_path(self.home, old));
        let _ = self.client.unlink(&seg_path(self.home, old));
        self.records_since_seg = 0;
    }

    /// Leave a redirect tombstone in `from`'s checkpoint directory: this
    /// sink's checkpoint now covers that subsumed shard.
    pub(crate) fn write_redirect(&mut self, from: Rank) {
        let _ = self
            .client
            .put(&latest_path(from), &encode_latest_redirect(self.home));
        // The subsumed shard's old files are stale history now.
        let _ = self.client.unlink(&wal_path(from, 0));
    }

    /// Durable response for `(client, seq)`, if any — the whole-world
    /// resume dedup fallback for requests older than the cached last
    /// response.
    pub(crate) fn durable_resp(&self, client: Rank, seq: u64) -> Option<&Bytes> {
        self.history.get(&client).and_then(|m| m.get(&seq))
    }
}

/// One shard directory's offline-fsck summary (see [`verify_checkpoint`]).
#[derive(Debug, Clone, Default)]
pub struct ShardFsck {
    /// The home rank this `/ckpt/<home>/` directory belongs to.
    pub home: Rank,
    /// A redirect tombstone: this shard was subsumed into that rank's
    /// checkpoint after a failover. Redirected shards carry no files of
    /// their own.
    pub redirect_to: Option<Rank>,
    /// Segment epoch the latest pointer names (0 = never compacted).
    pub seg_no: u64,
    /// Decoded segment size in bytes (0 when the epoch has no segment).
    pub segment_bytes: usize,
    /// LSN the segment covers through.
    pub segment_lsn: u64,
    /// WAL tail records decoded (after crash-duplicate removal).
    pub wal_records: usize,
    /// Ops in those records.
    pub wal_ops: usize,
    /// WAL tail size in bytes.
    pub wal_bytes: usize,
    /// Highest durable LSN (segment + WAL tail).
    pub last_lsn: u64,
    /// Everything wrong with this shard. Empty = clean.
    pub errors: Vec<String>,
}

/// Whole-image fsck report: one row per `/ckpt/<home>/` directory.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Per-shard results, in home-rank order.
    pub shards: Vec<ShardFsck>,
}

impl FsckReport {
    /// No shard reported any corruption.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|s| s.errors.is_empty())
    }
}

/// Offline fsck for a durable checkpoint image: walk every shard
/// directory, follow redirect tombstones, decode the latest segment and
/// its WAL tail (both checksum-verified), and check LSN continuity —
/// after dropping a crashed writer's duplicate re-appends, the tail's
/// LSNs must run contiguously from the segment's covered LSN. Read-only;
/// never mutates the image.
pub fn verify_checkpoint(fs: &Arc<Pfs>) -> FsckReport {
    let mut client = fs.client();
    let mut homes: Vec<Rank> = client
        .readdir("/ckpt/")
        .iter()
        .filter_map(|p| p.strip_prefix("/ckpt/"))
        .filter_map(|rest| rest.split('/').next())
        .filter_map(|h| h.parse::<Rank>().ok())
        .collect();
    homes.sort_unstable();
    homes.dedup();

    let mut report = FsckReport::default();
    for home in homes {
        let mut shard = ShardFsck {
            home,
            ..ShardFsck::default()
        };
        // The latest pointer: absent means "never compacted", epoch 0.
        if client.exists(&latest_path(home)) {
            match client.read(&latest_path(home)) {
                Ok(raw) => {
                    let mut r = WireReader::new(&raw);
                    match r.get_u8() {
                        Ok(LATEST_SEGMENT) => match r.get_u64() {
                            Ok(k) => shard.seg_no = k,
                            Err(e) => shard.errors.push(format!("latest: {e:?}")),
                        },
                        Ok(LATEST_REDIRECT) => match r.get_u32() {
                            Ok(to) => shard.redirect_to = Some(to as Rank),
                            Err(e) => shard.errors.push(format!("latest: {e:?}")),
                        },
                        _ => shard.errors.push("latest: corrupt pointer".into()),
                    }
                }
                Err(e) => shard.errors.push(format!("latest: {e}")),
            }
        }
        if let Some(to) = shard.redirect_to {
            // The covering checkpoint is verified under its own home; a
            // dangling redirect (no such directory at all) is corruption.
            if !client.exists(&latest_path(to))
                && client.readdir(&format!("/ckpt/{to}/")).is_empty()
            {
                shard
                    .errors
                    .push(format!("redirect to rank {to}, which has no checkpoint"));
            }
            report.shards.push(shard);
            continue;
        }

        // Segment of the named epoch (epoch 0 legitimately has none).
        if client.exists(&seg_path(home, shard.seg_no)) {
            match client.read(&seg_path(home, shard.seg_no)) {
                Ok(raw) => {
                    shard.segment_bytes = raw.len();
                    match decode_segment(&raw) {
                        Ok((lsn, _, _)) => {
                            shard.segment_lsn = lsn;
                            shard.last_lsn = lsn;
                        }
                        Err(e) => shard.errors.push(e),
                    }
                }
                Err(e) => shard.errors.push(format!("segment: {e}")),
            }
        } else if shard.seg_no > 0 {
            shard.errors.push(format!(
                "latest names segment {} but it is missing",
                shard.seg_no
            ));
        }

        // WAL tail: checksums verify in decode; then LSN continuity.
        if client.exists(&wal_path(home, shard.seg_no)) {
            match client.read(&wal_path(home, shard.seg_no)) {
                Ok(raw) => {
                    shard.wal_bytes = raw.len();
                    match decode_wal(&raw) {
                        Ok(records) => {
                            let mut lsns: Vec<u64> = records.iter().map(|(lsn, _)| *lsn).collect();
                            lsns.sort_unstable();
                            lsns.dedup(); // crash re-appends are benign
                            shard.wal_records = lsns.len();
                            shard.wal_ops = records.iter().map(|(_, ops)| ops.len()).sum();
                            let mut expect = shard.segment_lsn + 1;
                            for lsn in &lsns {
                                match lsn.cmp(&expect) {
                                    std::cmp::Ordering::Less => {
                                        // Covered by the segment already;
                                        // replay skips it. Benign.
                                    }
                                    std::cmp::Ordering::Equal => expect += 1,
                                    std::cmp::Ordering::Greater => {
                                        shard.errors.push(format!(
                                            "wal: LSN gap — expected {expect}, found {lsn}"
                                        ));
                                        expect = lsn + 1;
                                    }
                                }
                            }
                            shard.last_lsn = shard.last_lsn.max(expect - 1);
                        }
                        Err(e) => shard.errors.push(e),
                    }
                }
                Err(e) => shard.errors.push(format!("wal: {e}")),
            }
        }
        report.shards.push(shard);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Task;
    use pfs::PfsConfig;

    fn fs() -> Arc<Pfs> {
        Arc::new(Pfs::new(PfsConfig::instant()))
    }

    fn op_store(id: u64, v: &[u8]) -> ReplOp {
        ReplOp::Store {
            id,
            value: Bytes::copy_from_slice(v),
        }
    }

    #[test]
    fn wal_record_round_trips() {
        let ops = vec![
            ReplOp::Create { id: 7, type_tag: 1 },
            op_store(7, b"v"),
            ReplOp::SeqResp {
                client: 2,
                seq: 5,
                resp: Some(Bytes::from_static(b"resp")),
            },
        ];
        let mut buf = encode_wal_record(1, &ops);
        buf.extend_from_slice(&encode_wal_record(2, &[op_store(9, b"w")]));
        let records = decode_wal(&buf).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 1);
        assert_eq!(records[0].1, ops);
        assert_eq!(records[1].0, 2);
    }

    #[test]
    fn decode_wal_rejects_torn_frames() {
        let buf = encode_wal_record(1, &[op_store(1, b"x")]);
        assert!(decode_wal(&buf[..buf.len() - 1]).is_err());
        assert!(decode_wal(&[0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn replay_ignores_duplicates_and_reordering() {
        let recs = vec![
            (
                1,
                vec![ReplOp::Create { id: 1, type_tag: 1 }, op_store(1, b"a")],
            ),
            (2, vec![ReplOp::Create { id: 2, type_tag: 1 }]),
            (3, vec![op_store(2, b"b")]),
        ];
        let mut clean = Ledger::default();
        let last = replay_wal_records(&mut clean, 0, 0, recs.clone());
        assert_eq!(last, 3);

        let mut messy_recs = recs.clone();
        messy_recs.reverse();
        messy_recs.push(recs[1].clone()); // duplicated tail record
        messy_recs.push(recs[2].clone());
        let mut messy = Ledger::default();
        assert_eq!(replay_wal_records(&mut messy, 0, 0, messy_recs), 3);
        assert_eq!(clean, messy);
    }

    #[test]
    fn sink_flush_and_segment_restore_round_trip() {
        let fs = fs();
        let cfg = CheckpointConfig::new(Arc::clone(&fs))
            .interval(2)
            .segment_every(2);
        let mut sink = CheckpointSink::new(&cfg, 3);
        let mut live = Ledger::default();
        let ops1 = vec![
            ReplOp::Create {
                id: 10,
                type_tag: 1,
            },
            op_store(10, b"ten"),
        ];
        for op in &ops1 {
            live.apply(3, op);
        }
        sink.log(&ops1);
        assert!(sink.due_flush());
        sink.flush_wal();
        assert_eq!(sink.records, 1);
        assert_eq!(sink.last_durable_lsn(), 1);

        // Restore from segment 0 base + WAL tail.
        let mut c = fs.client();
        let r = restore_home(&mut c, 3).unwrap();
        assert_eq!(r.ledger, live);
        assert_eq!(r.last_lsn, 1);
        assert!(r.via.is_empty());

        // Compact, keep appending, restore again.
        let ops2 = vec![ReplOp::SeqResp {
            client: 1,
            seq: 4,
            resp: Some(Bytes::from_static(b"sealed")),
        }];
        for op in &ops2 {
            live.apply(3, op);
        }
        sink.log(&ops2);
        sink.flush_wal();
        assert!(sink.due_segment());
        sink.write_segment(&live);
        let ops3 = vec![ReplOp::Create {
            id: 11,
            type_tag: 1,
        }];
        for op in &ops3 {
            live.apply(3, op);
        }
        sink.log(&ops3);
        sink.flush_wal();

        let r = restore_home(&mut c, 3).unwrap();
        assert_eq!(r.ledger, live);
        assert_eq!(r.last_lsn, 3);
        assert_eq!(r.seg_no, 1);
        assert_eq!(
            r.history.get(&1).and_then(|m| m.get(&4)),
            Some(&Bytes::from_static(b"sealed"))
        );
        // Old epoch files were retired.
        assert!(!c.exists("/ckpt/3/wal-0"));
        assert!(!c.exists("/ckpt/3/seg-0"));
    }

    #[test]
    fn restore_follows_redirect_tombstones() {
        let fs = fs();
        let cfg = CheckpointConfig::new(Arc::clone(&fs));
        let mut sink = CheckpointSink::new(&cfg, 5);
        let mut live = Ledger::default();
        let ops = vec![ReplOp::Create { id: 1, type_tag: 1 }];
        for op in &ops {
            live.apply(5, op);
        }
        sink.log(&ops);
        sink.flush_wal();
        sink.write_segment(&live);
        sink.write_redirect(4); // rank 5's checkpoint now covers home 4

        let mut c = fs.client();
        let r = restore_home(&mut c, 4).unwrap();
        assert_eq!(r.via, vec![5]);
        assert_eq!(r.ledger, live);
    }

    #[test]
    fn restore_of_untouched_home_is_empty() {
        let fs = fs();
        let mut c = fs.client();
        let r = restore_home(&mut c, 9).unwrap();
        assert_eq!(r.ledger, Ledger::default());
        assert_eq!(r.last_lsn, 0);
    }

    #[test]
    fn split_partitions_disjointly() {
        // Layout: 6 ranks, servers 4 and 5; clients 0,1 -> 4 and 2,3 -> 5
        // (whatever server_of says — derive membership from the layout).
        let layout = Layout::new(6, 2);
        let servers: Vec<Rank> = (0..6).filter(|r| layout.is_server(*r)).collect();
        let mut full = Ledger::default();
        for id in 0..16u64 {
            let _ = full.store.create(id, 1);
        }
        for client in (0..6).filter(|r| !layout.is_server(*r)) {
            full.seqs.insert(client, 10 + client as u64);
            full.resps.insert(client, (10, Bytes::from_static(b"r")));
        }
        full.queue
            .push(Task::new(1, 0, None, Bytes::from_static(b"untargeted")));
        full.queue
            .push(Task::new(1, 0, Some(0), Bytes::from_static(b"to-0")));
        full.fwd_out = 3;
        full.fwd_in = 2;
        full.quarantine.push("q".into());

        let owner = servers[0];
        let parts: Vec<Ledger> = servers
            .iter()
            .map(|s| split_for_home(&full, &layout, *s, owner))
            .collect();
        // Every datum lands in exactly one slice.
        let total: usize = parts.iter().map(|p| p.store.len()).sum();
        assert_eq!(total, 16);
        // Client state follows server_of.
        let total_seqs: usize = parts.iter().map(|p| p.seqs.len()).sum();
        assert_eq!(total_seqs, full.seqs.len());
        // Untargeted task + flow state stay with the checkpoint owner.
        assert!(parts[0]
            .queue
            .iter()
            .any(|t| t.payload.as_ref() == b"untargeted"));
        assert_eq!(parts[0].fwd_out, 3);
        assert_eq!(parts[0].fwd_in, 2);
        assert_eq!(parts[0].quarantine.len(), 1);
        assert_eq!(parts[1].fwd_out, 0);
        assert!(parts[1].quarantine.is_empty());
        // Targeted task lands at its target's home.
        let t_home = layout.server_of(0);
        let idx = servers.iter().position(|s| *s == t_home).unwrap();
        assert!(parts[idx]
            .queue
            .iter()
            .any(|t| t.payload.as_ref() == b"to-0"));
    }

    #[test]
    fn fsck_passes_a_clean_image_and_flags_flipped_bits() {
        let fs = fs();
        let cfg = CheckpointConfig::new(Arc::clone(&fs))
            .interval(1)
            .segment_every(2);
        let mut sink = CheckpointSink::new(&cfg, 3);
        let mut live = Ledger::default();
        for i in 0..5u64 {
            let ops = vec![ReplOp::Create { id: i, type_tag: 1 }];
            for op in &ops {
                live.apply(3, op);
            }
            sink.log(&ops);
            sink.flush_wal();
            if sink.due_segment() {
                sink.write_segment(&live);
            }
        }
        let report = verify_checkpoint(&fs);
        assert!(report.is_clean(), "{:?}", report.shards);
        let shard = &report.shards[0];
        assert_eq!(shard.home, 3);
        assert_eq!(shard.seg_no, 2);
        assert!(shard.segment_bytes > 0);
        assert_eq!(shard.segment_lsn, 4);
        assert_eq!(shard.wal_records, 1);
        assert_eq!(shard.last_lsn, 5);

        // Flip one byte mid-WAL: the record checksum must catch it.
        let mut c = fs.client();
        let mut wal = c.read("/ckpt/3/wal-2").unwrap();
        let mid = wal.len() / 2;
        wal[mid] ^= 0x40;
        c.put("/ckpt/3/wal-2", &wal).unwrap();
        let report = verify_checkpoint(&fs);
        assert!(!report.is_clean());
        assert!(
            report.shards[0].errors.iter().any(|e| e.contains("wal")),
            "{:?}",
            report.shards[0].errors
        );

        // Same for the segment body.
        c.put("/ckpt/3/wal-2", &[]).unwrap();
        let mut seg = c.read("/ckpt/3/seg-2").unwrap();
        let mid = seg.len() / 2;
        seg[mid] ^= 0x40;
        c.put("/ckpt/3/seg-2", &seg).unwrap();
        let report = verify_checkpoint(&fs);
        assert!(report.shards[0]
            .errors
            .iter()
            .any(|e| e.contains("segment")));
    }

    #[test]
    fn fsck_flags_lsn_gaps_but_not_crash_duplicates() {
        let fs = fs();
        let mut c = fs.client();
        // A crashed writer's duplicated tail record is benign...
        let mut wal = encode_wal_record(1, &[op_store(1, b"a")]);
        wal.extend_from_slice(&encode_wal_record(2, &[op_store(2, b"b")]));
        wal.extend_from_slice(&encode_wal_record(2, &[op_store(2, b"b")]));
        c.put("/ckpt/0/wal-0", &wal).unwrap();
        let report = verify_checkpoint(&fs);
        assert!(report.is_clean(), "{:?}", report.shards);
        assert_eq!(report.shards[0].wal_records, 2);
        assert_eq!(report.shards[0].last_lsn, 2);

        // ...but a hole in the LSN sequence is corruption.
        let mut wal = encode_wal_record(1, &[op_store(1, b"a")]);
        wal.extend_from_slice(&encode_wal_record(4, &[op_store(4, b"d")]));
        c.put("/ckpt/0/wal-0", &wal).unwrap();
        let report = verify_checkpoint(&fs);
        assert!(report.shards[0]
            .errors
            .iter()
            .any(|e| e.contains("LSN gap")));
    }

    #[test]
    fn fsck_flags_dangling_redirects() {
        let fs = fs();
        let mut c = fs.client();
        c.put("/ckpt/2/latest", &encode_latest_redirect(7)).unwrap();
        let report = verify_checkpoint(&fs);
        assert_eq!(report.shards[0].redirect_to, Some(7));
        assert!(!report.is_clean());

        // Give rank 7 a checkpoint and the redirect becomes valid.
        c.put("/ckpt/7/latest", &encode_latest_segment(0)).unwrap();
        let report = verify_checkpoint(&fs);
        assert!(report.is_clean(), "{:?}", report.shards);
    }
}
