//! The client-side API: what engines and workers call.

use std::collections::{HashSet, VecDeque};
use std::time::Duration;

use bytes::Bytes;
use mpisim::{trace, Comm, Rank, Src, TagSel};

use crate::datastore::DataError;
use crate::layout::Layout;
use crate::msg::{seal_seq, Request, Response, Task, TAG_REQ, TAG_RESP};

/// How long an awaited request waits for its response before checking
/// whether the serving rank died. While the server is alive the client
/// just keeps waiting — the timeout is a liveness probe, not a deadline.
const RETRY_PROBE: Duration = Duration::from_millis(20);

/// Pause between re-offers of admission-rejected puts. Quota headroom
/// opens when the tenant's queued tasks are delivered, so a short wait
/// beats hammering the server.
const ADMISSION_BACKOFF: Duration = Duration::from_millis(2);

/// Client-side batching knobs for the pipelined wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Maximum tasks requested per `Get` round trip. Tasks beyond the
    /// first land in a local prefetch deque and are handed out with no
    /// further server traffic; their lease acknowledgements batch into
    /// one message on the next server trip. 1 disables prefetch (one
    /// task per round trip).
    pub prefetch: u32,
    /// Buffer up to this many puts and ship them as one `PutBatch` with a
    /// single ack. 0 (the default) keeps puts eager — each put is its own
    /// acknowledged round trip — which preserves the externally visible
    /// submission order interactive callers rely on. Buffered puts are
    /// always flushed before any other server round trip, so a client
    /// never parks or reads data while holding unsubmitted work.
    pub put_buffer: usize,
    /// Flush the buffered stdout stream to the server once it exceeds
    /// this many bytes (it also flushes before every awaited round trip
    /// and at `finish`). 0 ships every [`AdlbClient::send_output`]
    /// immediately.
    pub output_buffer: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            prefetch: 8,
            put_buffer: 0,
            output_buffer: 0,
        }
    }
}

impl ClientConfig {
    /// PR 1 wire behavior: one task per round trip, eager puts. The E5
    /// ablation knob.
    pub fn unbatched() -> Self {
        ClientConfig {
            prefetch: 1,
            put_buffer: 0,
            output_buffer: 0,
        }
    }
}

/// A client (engine or worker) handle onto the ADLB subsystem.
///
/// All operations are synchronous request/response with a server, exactly
/// like the real ADLB C API (`ADLB_Put`, `ADLB_Get`, `ADLB_Store`, ...).
/// Unlike the one-message-per-task PR 1 protocol, gets prefetch batches of
/// tasks and lease acknowledgements ride back in batches (see
/// [`ClientConfig`]); `DESIGN.md` documents the batched wire protocol.
///
/// ## Failover
///
/// Every request carries a per-client sequence number; servers replicate
/// a per-client high-water mark and the last awaited response, so the
/// protocol is exactly-once across server failures. When the server a
/// request targets dies mid-wait, the client re-routes to the dead
/// server's ring successor (which has promoted the replica), re-sends
/// any unconfirmed fire-and-forget messages, and repeats the request;
/// duplicates are dropped (or re-answered from the response cache) on
/// the server side.
pub struct AdlbClient {
    comm: Comm,
    layout: Layout,
    my_server: Rank,
    config: ClientConfig,
    shutdown_seen: bool,
    finished_sent: bool,
    /// A task was handed to the caller and its outcome not yet recorded.
    /// `get`/`finish` record success; [`AdlbClient::task_failed`] records
    /// a contained failure.
    handed_out: bool,
    /// Tasks delivered by the server but not yet handed to the caller.
    /// Invariant: the server's lease deque for this rank is exactly [the
    /// handed-out task if any] + [unsent `pending_acks`]... followed by
    /// this deque, so acks flushed in order always release the oldest
    /// lease first.
    prefetch: VecDeque<Task>,
    /// Recorded task outcomes not yet shipped to the server. Flushed (as
    /// one `TaskDoneBatch`) before any server round trip.
    pending_acks: Vec<(bool, String)>,
    /// Buffered puts awaiting a flush (only when `config.put_buffer > 0`).
    put_buf: Vec<Task>,
    /// Buffered stdout awaiting a flush (see `ClientConfig::output_buffer`).
    out_buf: String,
    /// Tenant stamped onto every put and output this client ships.
    /// Engines set it to their program's tenant; workers set it to the
    /// tenant of the task they are executing, so child tasks are
    /// accounted to the right program.
    tenant: u32,
    /// When set, `get` only accepts untargeted tasks of this tenant
    /// (targeted tasks are always deliverable). Engines run with their
    /// own tenant here; workers leave it `None` and serve everyone.
    get_filter: Option<u32>,
    /// Cached encoding of the last `Get` request body; work types are
    /// almost always identical call-to-call, so this skips both the
    /// `to_vec` and the re-encode on the hot path (the 8-byte seq seal is
    /// appended per send).
    cached_get: Option<(Vec<u32>, Option<u32>, Bytes)>,
    /// Quarantine reports the server attached to its shutdown notice:
    /// tasks that exhausted their retry budget, with the error that
    /// killed the last attempt.
    quarantine_reports: Vec<String>,
    /// Set when the shutdown notice carried a shard-loss diagnosis: the
    /// run was aborted, not completed, and callers should fail loudly.
    abort_reason: Option<String>,
    next_id: u64,
    /// Last request sequence number used (seq 0 is never sent).
    next_seq: u64,
    /// Servers this client observed to be dead (its own view; servers
    /// confirm independently via the membership protocol).
    dead: HashSet<Rank>,
    /// Sealed fire-and-forget messages (acks, output) sent to the home
    /// server since its last awaited response. If the home dies, these
    /// may not have reached the replica and are re-sent to the successor
    /// ahead of the repeated request; the server-side seq dedup drops the
    /// ones that did make it.
    unconfirmed: Vec<Bytes>,
}

impl AdlbClient {
    /// Create the handle for this rank with default batching.
    ///
    /// # Panics
    /// Panics if called on a server rank.
    pub fn new(comm: Comm, layout: Layout) -> Self {
        Self::with_config(comm, layout, ClientConfig::default())
    }

    /// Create the handle with explicit batching knobs.
    ///
    /// # Panics
    /// Panics if called on a server rank.
    pub fn with_config(comm: Comm, layout: Layout, config: ClientConfig) -> Self {
        let my_server = layout.server_of(comm.rank());
        AdlbClient {
            comm,
            layout,
            my_server,
            config,
            shutdown_seen: false,
            finished_sent: false,
            handed_out: false,
            prefetch: VecDeque::new(),
            pending_acks: Vec::new(),
            put_buf: Vec::new(),
            out_buf: String::new(),
            tenant: 0,
            get_filter: None,
            cached_get: None,
            quarantine_reports: Vec::new(),
            abort_reason: None,
            next_id: 0,
            next_seq: 0,
            dead: HashSet::new(),
            unconfirmed: Vec::new(),
        }
    }

    /// This rank.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// The machine layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Set the tenant stamped onto subsequent puts and output. Workers
    /// call this before executing each task, with the task's tenant, so
    /// downstream puts inherit the right accounting.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
    }

    /// The tenant currently stamped onto puts and output.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Restrict `get` to untargeted tasks of one tenant (`None` serves
    /// every tenant). Targeted tasks — notifications pinned to this rank —
    /// are delivered regardless of the filter.
    pub fn set_get_filter(&mut self, tenant: Option<u32>) {
        if self.get_filter != tenant {
            self.get_filter = tenant;
            self.cached_get = None;
        }
    }

    /// Allocate a globally unique datum id (disjoint per client rank).
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.next_id * self.layout.size as u64 + self.comm.rank() as u64;
        self.next_id += 1;
        id
    }

    /// Seal a request body with the next sequence number.
    fn seal(&mut self, body: &[u8]) -> Bytes {
        self.next_seq += 1;
        seal_seq(body, self.next_seq)
    }

    /// The rank currently serving home server `home`.
    fn host_of(&self, home: Rank) -> Rank {
        self.layout.route(home, &self.dead)
    }

    /// Send a sealed fire-and-forget message to the home server and
    /// remember it for re-send on failover.
    fn send_ff(&mut self, body: Bytes) {
        let sealed = self.seal(&body);
        self.unconfirmed.push(sealed.clone());
        let host = self.host_of(self.my_server);
        self.comm.send(host, TAG_REQ, sealed);
    }

    /// One awaited round trip against home server `home`, surviving the
    /// death of the rank serving it: on death, re-route to the ring
    /// successor, replay unconfirmed fire-and-forget traffic (home server
    /// only), and repeat the request under its original seq — the
    /// server-side dedup makes the retry exactly-once.
    ///
    /// Responses are received from any rank and matched by their sealed
    /// seq: after a failover the answer may arrive from the promoted
    /// successor rather than the rank the request was sent to (the
    /// successor pushes a dead server's cached responses unprompted), and
    /// stale duplicates of already-consumed responses must be dropped.
    fn exchange(&mut self, home: Rank, sealed: Bytes, seq: u64) -> Response {
        let mut host = self.host_of(home);
        self.comm.send(host, TAG_REQ, sealed.clone());
        loop {
            match self
                .comm
                .recv_timeout(Src::Any, TagSel::Of(TAG_RESP), RETRY_PROBE)
            {
                Some(m) => {
                    // A malformed response must not take the client rank
                    // down: log, drop, and keep waiting — the retry loop
                    // re-sends the request if nothing valid ever lands.
                    let Ok((resp, rseq)) = Response::decode_sealed(&m.data) else {
                        eprintln!(
                            "adlb client {}: undecodable response from rank {}; dropped",
                            self.comm.rank(),
                            m.source
                        );
                        continue;
                    };
                    if rseq != seq {
                        // A re-sent copy of a response this client already
                        // consumed (failover duplicate): drop it.
                        continue;
                    }
                    if home == self.my_server {
                        // The response proves the serving rank processed
                        // (and replicated) everything we sent before this
                        // request — per-pair FIFO delivery.
                        self.unconfirmed.clear();
                    }
                    return resp;
                }
                None => {
                    if self.comm.is_alive(host) {
                        continue; // slow, not dead: keep waiting
                    }
                    self.dead.insert(host);
                    let next = self.host_of(home);
                    eprintln!(
                        "adlb client {}: server rank {host} died; retrying with rank {next}",
                        self.comm.rank()
                    );
                    if home == self.my_server {
                        for b in &self.unconfirmed {
                            self.comm.send(next, TAG_REQ, b.clone());
                        }
                    }
                    self.comm.send(next, TAG_REQ, sealed.clone());
                    host = next;
                }
            }
        }
    }

    /// One acknowledged round trip. Buffered puts, output and pending
    /// acks are flushed first so the server observes this client's
    /// operations in program order (non-overtaking delivery makes the
    /// flushed messages land before `req`).
    fn request(&mut self, home: Rank, req: &Request) -> Response {
        self.flush_puts();
        self.flush_output();
        self.flush_acks();
        let sealed = self.seal(&req.encode());
        self.exchange(home, sealed, self.next_seq)
    }

    fn data_request(&mut self, id: u64, req: &Request) -> Response {
        let t0 = trace::now_us();
        let resp = self.request(self.layout.data_owner(id), req);
        trace::record_since(trace::KIND_DATA_OP, id, t0);
        resp
    }

    // -- work -------------------------------------------------------------

    /// Submit a task. `target` pins it to a rank; `priority` is
    /// higher-runs-first. With `put_buffer > 0` the task may sit in the
    /// local buffer until the next flush point (buffer full, any other
    /// server round trip, or [`AdlbClient::flush`]).
    pub fn put(&mut self, work_type: u32, priority: i32, target: Option<Rank>, payload: Vec<u8>) {
        let task =
            Task::new(work_type, priority, target, Bytes::from(payload)).with_tenant(self.tenant);
        if self.config.put_buffer == 0 {
            let t0 = trace::now_us();
            let resp = self.request(self.my_server, &Request::Put(task));
            trace::record_since(trace::KIND_TASK_PUT, 1, t0);
            self.complete_put(resp);
        } else {
            self.put_buf.push(task);
            if self.put_buf.len() >= self.config.put_buffer {
                self.flush_puts();
            }
        }
    }

    /// Submit many tasks as one pipelined wire message with a single ack —
    /// one round trip no matter how many tasks. Every task is stamped
    /// with this client's current tenant.
    pub fn put_batch(&mut self, mut tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        for t in &mut tasks {
            t.tenant = self.tenant;
        }
        let n = tasks.len() as u64;
        let t0 = trace::now_us();
        let resp = self.request(self.my_server, &Request::PutBatch(tasks));
        trace::record_since(trace::KIND_TASK_PUT, n, t0);
        self.complete_put(resp);
    }

    /// Force out any buffered puts now.
    pub fn flush(&mut self) {
        self.flush_puts();
    }

    fn flush_puts(&mut self) {
        if self.put_buf.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.put_buf);
        let req = match batch.pop() {
            Some(t) if batch.is_empty() => Request::Put(t),
            Some(t) => {
                batch.push(t);
                Request::PutBatch(batch)
            }
            None => return, // guarded above; never panic on a race
        };
        // Sealed exchange directly: request() would recurse into this
        // flush.
        let n = match &req {
            Request::PutBatch(b) => b.len() as u64,
            _ => 1,
        };
        let t0 = trace::now_us();
        let sealed = self.seal(&req.encode());
        let resp = self.exchange(self.my_server, sealed, self.next_seq);
        trace::record_since(trace::KIND_TASK_PUT, n, t0);
        self.complete_put(resp);
    }

    /// Finish a put round trip, absorbing admission backpressure: when the
    /// server rejects tasks for an over-quota tenant, hold them locally and
    /// re-offer until the quota drains. The client stays mid-put (never
    /// parked), so termination detection keeps waiting on it — the work
    /// cannot be lost, only delayed.
    fn complete_put(&mut self, first: Response) {
        let mut resp = first;
        loop {
            match resp {
                Response::Ok => return,
                Response::Rejected(mut tasks) => {
                    if tasks.is_empty() {
                        return;
                    }
                    std::thread::sleep(ADMISSION_BACKOFF);
                    let req = match tasks.pop() {
                        Some(t) if tasks.is_empty() => Request::Put(t),
                        Some(t) => {
                            tasks.push(t);
                            Request::PutBatch(tasks)
                        }
                        None => return,
                    };
                    let sealed = self.seal(&req.encode());
                    resp = self.exchange(self.my_server, sealed, self.next_seq);
                }
                other => {
                    eprintln!(
                        "adlb client {}: put got unexpected response {other:?}; task may be lost",
                        self.comm.rank()
                    );
                    return;
                }
            }
        }
    }

    // -- output streaming -------------------------------------------------

    /// Stream a chunk of this rank's stdout to the server tier, where it
    /// is accumulated (and replicated) per rank. Output shipped before a
    /// rank dies survives it — the run's report can include everything
    /// the dead rank managed to say.
    pub fn send_output(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.out_buf.push_str(text);
        if self.out_buf.len() >= self.config.output_buffer {
            self.flush_output();
        }
    }

    /// Force out any buffered output now (fire-and-forget).
    pub fn flush_output(&mut self) {
        if self.out_buf.is_empty() {
            return;
        }
        let text = std::mem::take(&mut self.out_buf);
        let tenant = self.tenant;
        self.send_ff(Request::Output { text, tenant }.encode());
    }

    // -- leases -----------------------------------------------------------

    /// Record the outcome of the task currently handed to the caller, if
    /// any. The ack ships (batched) on the next server trip;
    /// non-overtaking delivery guarantees the server sees it before
    /// whatever request follows it on the same connection.
    fn resolve_delivered(&mut self, ok: bool, error: &str) {
        if !self.handed_out {
            return;
        }
        self.handed_out = false;
        self.pending_acks.push((ok, error.to_string()));
    }

    /// Ship pending lease acknowledgements: one `TaskDoneBatch` (or a
    /// plain `TaskDone` for a single result) releasing the oldest leases
    /// first. Fire-and-forget, like PR 1's `TaskDone`.
    fn flush_acks(&mut self) {
        if self.pending_acks.is_empty() {
            return;
        }
        let mut results = std::mem::take(&mut self.pending_acks);
        let req = match results.pop() {
            Some((ok, error)) if results.is_empty() => Request::TaskDone { ok, error },
            Some(r) => {
                results.push(r);
                Request::TaskDoneBatch { results }
            }
            None => return, // guarded above; never panic on a race
        };
        self.send_ff(req.encode());
    }

    /// Report that the most recently delivered task failed in a contained
    /// way (its execution errored with `error` but this rank survives).
    /// The server will retry the task elsewhere or quarantine it per its
    /// [`crate::RetryPolicy`]. Failure acks flush immediately so the
    /// retry starts without waiting for this client's next server trip.
    pub fn task_failed(&mut self, error: &str) {
        self.resolve_delivered(false, error);
        self.flush_acks();
    }

    /// Quarantine reports this client's server attached to its shutdown
    /// notice (empty before [`AdlbClient::get`] has returned `None`, and
    /// when no task was quarantined). Each entry describes one task that
    /// exhausted its retry budget and the error of its final attempt.
    pub fn quarantine_reports(&self) -> &[String] {
        &self.quarantine_reports
    }

    /// The shard-loss diagnosis from the server's shutdown notice, if the
    /// run was aborted by an unrecoverable server death (replication too
    /// low to promote a replica). `None` after a clean shutdown — and
    /// before [`AdlbClient::get`] has returned `None`.
    pub fn run_aborted(&self) -> Option<&str> {
        self.abort_reason.as_deref()
    }

    /// Encoded `Get` body for `work_types`, reusing the cached encoding
    /// when the types match the previous call (cloning [`Bytes`] is an
    /// `Arc` bump, not a copy).
    fn encoded_get(&mut self, work_types: &[u32]) -> Bytes {
        match &self.cached_get {
            Some((cached, filter, enc)) if cached == work_types && *filter == self.get_filter => {
                enc.clone()
            }
            _ => {
                let enc = Request::Get {
                    work_types: work_types.to_vec(),
                    max_tasks: self.config.prefetch.max(1),
                    tenant: self.get_filter,
                }
                .encode();
                self.cached_get = Some((work_types.to_vec(), self.get_filter, enc.clone()));
                enc
            }
        }
    }

    /// Block until a task of one of `work_types` is available, or global
    /// termination (`None`). Calling `get` acknowledges success of the
    /// previously delivered task; call [`AdlbClient::task_failed`] first
    /// if it failed.
    ///
    /// A prefetched task (from an earlier `DeliverBatch`) is handed out
    /// with no server traffic at all; the accumulated acks flush as one
    /// message when the deque runs dry and the client returns to the
    /// server.
    pub fn get(&mut self, work_types: &[u32]) -> Option<Task> {
        self.resolve_delivered(true, "");
        if let Some(t) = self.prefetch.pop_front() {
            self.handed_out = true;
            return Some(t);
        }
        if self.shutdown_seen {
            return None;
        }
        loop {
            self.flush_puts();
            self.flush_output();
            self.flush_acks();
            let body = self.encoded_get(work_types);
            let sealed = self.seal(&body);
            // Zero-copy decode: task payloads alias the arrival buffer.
            let resp = self.exchange(self.my_server, sealed, self.next_seq);
            match resp {
                Response::DeliverTask(t) => {
                    self.handed_out = true;
                    return Some(t);
                }
                Response::DeliverBatch(tasks) => {
                    let mut it = tasks.into_iter();
                    match it.next() {
                        Some(first) => {
                            self.prefetch.extend(it);
                            self.handed_out = true;
                            return Some(first);
                        }
                        None => {
                            // An empty batch is a server bug; ask again.
                            eprintln!(
                                "adlb client {}: empty DeliverBatch; retrying",
                                self.comm.rank()
                            );
                        }
                    }
                }
                Response::NoMore {
                    quarantined,
                    aborted,
                } => {
                    self.shutdown_seen = true;
                    self.quarantine_reports = quarantined;
                    self.abort_reason = aborted;
                    return None;
                }
                other => {
                    // A confused server response must not take this rank
                    // down; log it and ask again.
                    eprintln!(
                        "adlb client {}: unexpected get response {other:?}; retrying",
                        self.comm.rank()
                    );
                }
            }
        }
    }

    /// Declare that this client will issue no further requests. Must be
    /// called by clients that stop calling [`AdlbClient::get`] before
    /// shutdown, or termination detection would wait on them forever.
    /// Awaited, so a server failover during the handshake is survived
    /// like any other request.
    pub fn finish(&mut self) {
        if self.shutdown_seen || self.finished_sent {
            return;
        }
        self.resolve_delivered(true, "");
        // Prefetched-but-unexecuted tasks are handed back as contained
        // failures so the server reruns them on a surviving client
        // instead of waiting forever on their leases.
        while self.prefetch.pop_front().is_some() {
            self.pending_acks
                .push((false, "returned unexecuted: client finished".to_string()));
        }
        self.finished_sent = true;
        match self.request(self.my_server, &Request::Finished) {
            Response::Ok | Response::NoMore { .. } => {}
            other => eprintln!(
                "adlb client {}: finish got unexpected response {other:?}",
                self.comm.rank()
            ),
        }
    }

    // -- data -------------------------------------------------------------

    fn unexpected(op: &str, resp: Response) -> DataError {
        DataError {
            message: format!("{op}: unexpected response {resp:?}"),
        }
    }

    fn expect_ok(resp: Response, op: &str) -> Result<(), DataError> {
        match resp {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected(op, other)),
        }
    }

    /// Create a datum of the given Turbine type tag.
    pub fn create(&mut self, id: u64, type_tag: u8) -> Result<(), DataError> {
        Self::expect_ok(
            self.data_request(id, &Request::DataCreate { id, type_tag }),
            "create",
        )
    }

    /// Store a scalar value, closing the datum and releasing subscribers.
    pub fn store(&mut self, id: u64, value: Vec<u8>) -> Result<(), DataError> {
        Self::expect_ok(
            self.data_request(
                id,
                &Request::DataStore {
                    id,
                    value: Bytes::from(value),
                },
            ),
            "store",
        )
    }

    /// Fetch a closed scalar's value (`None` while still open).
    pub fn retrieve(&mut self, id: u64) -> Result<Option<Bytes>, DataError> {
        match self.data_request(id, &Request::DataRetrieve { id }) {
            Response::MaybeBytes(v) => Ok(v),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected("retrieve", other)),
        }
    }

    /// Subscribe `notify_rank` to the close of `id`. Returns `true` if the
    /// datum is already closed (no notification will arrive).
    pub fn subscribe(&mut self, id: u64, notify_rank: Rank) -> Result<bool, DataError> {
        match self.data_request(
            id,
            &Request::DataSubscribe {
                id,
                rank: notify_rank,
            },
        ) {
            Response::Bool(closed) => Ok(closed),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected("subscribe", other)),
        }
    }

    /// Insert a member into an open container.
    pub fn insert(&mut self, id: u64, key: &str, value: Vec<u8>) -> Result<(), DataError> {
        Self::expect_ok(
            self.data_request(
                id,
                &Request::DataInsert {
                    id,
                    key: key.to_string(),
                    value: Bytes::from(value),
                },
            ),
            "insert",
        )
    }

    /// Look up a container member.
    pub fn lookup(&mut self, id: u64, key: &str) -> Result<Option<Bytes>, DataError> {
        match self.data_request(
            id,
            &Request::DataLookup {
                id,
                key: key.to_string(),
            },
        ) {
            Response::MaybeBytes(v) => Ok(v),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected("lookup", other)),
        }
    }

    /// Enumerate a container's members in subscript order.
    pub fn enumerate(&mut self, id: u64) -> Result<Vec<(String, Bytes)>, DataError> {
        match self.data_request(id, &Request::DataEnumerate { id }) {
            Response::Pairs(p) => Ok(p),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected("enumerate", other)),
        }
    }

    /// Close a container, releasing subscribers.
    pub fn close(&mut self, id: u64) -> Result<(), DataError> {
        Self::expect_ok(self.data_request(id, &Request::DataClose { id }), "close")
    }

    /// Adjust a container's writer slot count (Swift/T slot counting); a
    /// drop to zero closes it.
    pub fn incr_writers(&mut self, id: u64, delta: i64) -> Result<(), DataError> {
        Self::expect_ok(
            self.data_request(id, &Request::DataIncrWriters { id, delta }),
            "incr_writers",
        )
    }

    /// Whether the datum exists and is closed.
    pub fn exists(&mut self, id: u64) -> Result<bool, DataError> {
        match self.data_request(id, &Request::DataExists { id }) {
            Response::Bool(b) => Ok(b),
            Response::Error(e) => Err(DataError { message: e }),
            other => Err(Self::unexpected("exists", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{WORK_TYPE_NOTIFY, WORK_TYPE_WORK};
    use crate::server::{serve, ServerConfig};
    use mpisim::World;

    fn with_runtime<T: Send>(
        size: usize,
        servers: usize,
        body: impl Fn(AdlbClient) -> T + Sync,
    ) -> Vec<Option<T>> {
        let layout = Layout::new(size, servers);
        World::run(size, move |comm| {
            if layout.is_server(comm.rank()) {
                serve(comm, layout, ServerConfig::default());
                None
            } else {
                Some(body(AdlbClient::new(comm, layout)))
            }
        })
    }

    #[test]
    fn empty_world_terminates() {
        // Clients that immediately finish: termination must still fire.
        let out = with_runtime(4, 1, |mut c| {
            c.finish();
            true
        });
        assert_eq!(out.iter().flatten().count(), 3);
    }

    #[test]
    fn tasks_flow_from_putter_to_getter() {
        let out = with_runtime(3, 1, |mut c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.put(WORK_TYPE_WORK, 0, None, vec![i]);
                }
                c.finish();
                return 0u64;
            }
            let mut sum = 0u64;
            while let Some(t) = c.get(&[WORK_TYPE_WORK]) {
                sum += t.payload[0] as u64;
            }
            sum
        });
        let total: u64 = out.iter().flatten().sum();
        assert_eq!(total, (0..10).sum::<u64>());
    }

    #[test]
    fn targeted_task_reaches_only_target() {
        let out = with_runtime(4, 1, |mut c| {
            if c.rank() == 0 {
                c.put(WORK_TYPE_WORK, 0, Some(2), b"for-two".to_vec());
                c.finish();
                return None;
            }
            let mut got = None;
            while let Some(t) = c.get(&[WORK_TYPE_WORK]) {
                got = Some((c.rank(), t.payload.to_vec()));
            }
            got
        });
        let hits: Vec<_> = out.into_iter().flatten().flatten().collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
    }

    #[test]
    fn priorities_order_delivery() {
        // One submitter, one consumer: consumer must see high priority
        // first even though it was put last.
        let out = with_runtime(3, 1, |mut c| {
            if c.rank() == 0 {
                c.put(WORK_TYPE_WORK, 1, Some(1), b"low".to_vec());
                c.put(WORK_TYPE_WORK, 9, Some(1), b"high".to_vec());
                // Give the server a beat so both tasks are queued before
                // the consumer's first get.
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.put(WORK_TYPE_WORK, 5, Some(1), b"mid".to_vec());
                c.finish();
                return vec![];
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            let mut order = vec![];
            while let Some(t) = c.get(&[WORK_TYPE_WORK]) {
                order.push(String::from_utf8(t.payload.to_vec()).unwrap());
            }
            order
        });
        let order = &out[1].as_ref().unwrap()[..2];
        assert_eq!(order, &["high".to_string(), "low".to_string()]);
    }

    #[test]
    fn work_stealing_balances_across_servers() {
        // 2 servers; all work is put by a client of server 0, but a client
        // of server 1 must still receive tasks via stealing.
        let layout = Layout::new(4, 2);
        let out = World::run(4, move |comm| {
            if layout.is_server(comm.rank()) {
                let stats = serve(comm, layout, ServerConfig::default());
                return stats.tasks_donated + stats.tasks_stolen;
            }
            let mut c = AdlbClient::new(comm, layout);
            if c.rank() == 0 {
                // Client 0 is served by server 2 (0 % 2 == 0).
                for i in 0..20 {
                    c.put(WORK_TYPE_WORK, 0, None, vec![i]);
                }
                c.finish();
                return 0;
            }
            // Client 1 is served by server 3: no local puts at all.
            let mut count = 0u64;
            while c.get(&[WORK_TYPE_WORK]).is_some() {
                count += 1;
            }
            count
        });
        assert_eq!(out[1], 20, "all tasks must reach the stealing side");
        assert!(out[2] + out[3] > 0, "steal traffic must have occurred");
    }

    #[test]
    fn data_store_round_trip() {
        let out = with_runtime(2, 1, |mut c| {
            if c.rank() == 0 {
                let id = c.alloc_id();
                c.create(id, 0).unwrap();
                assert_eq!(c.retrieve(id).unwrap(), None);
                c.store(id, b"payload".to_vec()).unwrap();
                let v = c.retrieve(id).unwrap().unwrap();
                c.finish();
                return v.to_vec();
            }
            c.finish();
            vec![]
        });
        assert_eq!(out[0].as_ref().unwrap(), b"payload");
    }

    #[test]
    fn subscribe_produces_notify_task() {
        let out = with_runtime(3, 1, |mut c| {
            // Rank 1 subscribes, rank 0 stores; rank 1 gets a NOTIFY task.
            let id = 7u64; // fixed id shared by convention
            match c.rank() {
                0 => {
                    c.create(id, 0).unwrap();
                    // Let rank 1 subscribe first.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    c.store(id, b"v".to_vec()).unwrap();
                    c.finish();
                    u64::MAX
                }
                1 => {
                    // Retry subscribe until rank 0's create lands.
                    loop {
                        match c.subscribe(id, 1) {
                            Ok(false) => break,
                            Ok(true) => return id, // already closed
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                        }
                    }
                    let t = c.get(&[WORK_TYPE_NOTIFY]).expect("notify task");
                    let got = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                    while c.get(&[WORK_TYPE_NOTIFY]).is_some() {}
                    got
                }
                _ => {
                    c.finish();
                    u64::MAX
                }
            }
        });
        assert_eq!(out[1], Some(7));
    }

    #[test]
    fn double_store_is_reported() {
        let out = with_runtime(2, 1, |mut c| {
            if c.rank() == 0 {
                let id = c.alloc_id();
                c.create(id, 0).unwrap();
                c.store(id, b"a".to_vec()).unwrap();
                let err = c.store(id, b"b".to_vec()).unwrap_err();
                c.finish();
                return err.message;
            }
            c.finish();
            String::new()
        });
        assert!(out[0].as_ref().unwrap().contains("double assignment"));
    }

    #[test]
    fn containers_work_across_ranks() {
        let out = with_runtime(4, 2, |mut c| {
            let id = 42u64;
            if c.rank() == 0 {
                c.create(id, crate::datastore::TYPE_TAG_CONTAINER).unwrap();
                c.insert(id, "0", b"zero".to_vec()).unwrap();
                c.insert(id, "1", b"one".to_vec()).unwrap();
                c.close(id).unwrap();
                c.finish();
                return vec![];
            }
            // Wait until the container exists and is closed.
            while !c.exists(id).unwrap_or(false) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let pairs = c.enumerate(id).unwrap();
            c.finish();
            pairs.into_iter().map(|(k, _)| k).collect()
        });
        assert_eq!(out[1].as_ref().unwrap(), &["0", "1"]);
    }

    #[test]
    fn many_workers_drain_queue() {
        let n = 9;
        let out = with_runtime(n + 2, 2, move |mut c| {
            if c.rank() == 0 {
                for i in 0..200u32 {
                    c.put(
                        WORK_TYPE_WORK,
                        (i % 3) as i32,
                        None,
                        i.to_le_bytes().to_vec(),
                    );
                }
                c.finish();
                return 0u64;
            }
            let mut count = 0u64;
            while c.get(&[WORK_TYPE_WORK]).is_some() {
                count += 1;
            }
            count
        });
        let total: u64 = out.iter().flatten().sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn output_streams_accumulate_on_the_server() {
        let layout = Layout::new(3, 1);
        let out = World::run(3, move |comm| {
            if layout.is_server(comm.rank()) {
                let outcome = crate::server::serve_ext(comm, layout, ServerConfig::default());
                return outcome
                    .streams
                    .iter()
                    .map(|(r, _t, s)| format!("{r}:{s}"))
                    .collect::<Vec<_>>()
                    .join(" ");
            }
            let mut c = AdlbClient::new(comm, layout);
            c.send_output(&format!("hello from {}", c.rank()));
            c.send_output("!");
            c.finish();
            String::new()
        });
        assert_eq!(out[2], "0:hello from 0! 1:hello from 1!");
    }
}
