//! Server-side work queues: per-type priority queues plus targeted queues.

use std::collections::{BinaryHeap, HashMap};

use mpisim::Rank;

use crate::msg::Task;

/// Heap entry ordered by (priority desc, arrival asc).
struct Entry {
    priority: i32,
    seq: u64,
    /// Accept time on this server's clock (µs), for queue-wait tracing.
    /// 0 when tracing is disabled; never ordered on.
    accepted_us: u64,
    task: Task,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier arrival (lower seq).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// All queued work on one server.
#[derive(Default)]
pub struct WorkQueue {
    untargeted: HashMap<u32, BinaryHeap<Entry>>,
    targeted: HashMap<(Rank, u32), BinaryHeap<Entry>>,
    seq: u64,
    len: usize,
}

impl WorkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queued tasks.
    #[allow(dead_code)] // diagnostics / tests
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of untargeted tasks (the stealable pool).
    #[allow(dead_code)] // diagnostics / tests
    pub fn stealable(&self) -> usize {
        self.untargeted.values().map(BinaryHeap::len).sum()
    }

    /// Enqueue a task, stamping its accept time for queue-wait tracing.
    pub fn push(&mut self, task: Task) {
        let e = Entry {
            priority: task.priority,
            seq: self.seq,
            accepted_us: mpisim::trace::now_us(),
            task,
        };
        self.seq += 1;
        self.len += 1;
        match e.task.target {
            Some(r) => self
                .targeted
                .entry((r, e.task.work_type))
                .or_default()
                .push(e),
            None => self.untargeted.entry(e.task.work_type).or_default().push(e),
        }
    }

    /// Best task a requester may run: targeted-to-it first (across its
    /// requested types, by priority), then untargeted.
    #[allow(dead_code)] // tests and model-checking; prod uses pop_for_timed
    pub fn pop_for(&mut self, rank: Rank, work_types: &[u32]) -> Option<Task> {
        self.pop_for_timed(rank, work_types).map(|(t, _)| t)
    }

    /// [`WorkQueue::pop_for`] plus the popped task's accept timestamp
    /// (µs on this server's clock; 0 when it was pushed untraced).
    pub fn pop_for_timed(&mut self, rank: Rank, work_types: &[u32]) -> Option<(Task, u64)> {
        // Pick the best (priority, -seq) among matching targeted heaps.
        let best_targeted = work_types
            .iter()
            .filter_map(|wt| {
                self.targeted
                    .get(&(rank, *wt))
                    .and_then(|h| h.peek().map(|e| (e.priority, e.seq, *wt)))
            })
            .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));
        let best_untargeted = work_types
            .iter()
            .filter_map(|wt| {
                self.untargeted
                    .get(wt)
                    .and_then(|h| h.peek().map(|e| (e.priority, e.seq, *wt)))
            })
            .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));

        // Targeted wins ties: it can only run here. `Ok` carries the
        // winning targeted work type, `Err` the untargeted one.
        let pick = match (best_targeted, best_untargeted) {
            (Some(t), Some(u)) => {
                if t.0 >= u.0 {
                    Ok(t.2)
                } else {
                    Err(u.2)
                }
            }
            (Some(t), None) => Ok(t.2),
            (None, Some(u)) => Err(u.2),
            (None, None) => return None,
        };
        let popped = match pick {
            Ok(wt) => {
                let e = self.targeted.get_mut(&(rank, wt)).and_then(BinaryHeap::pop);
                if self
                    .targeted
                    .get(&(rank, wt))
                    .is_some_and(BinaryHeap::is_empty)
                {
                    self.targeted.remove(&(rank, wt));
                }
                e
            }
            Err(wt) => {
                let e = self.untargeted.get_mut(&wt).and_then(BinaryHeap::pop);
                if self.untargeted.get(&wt).is_some_and(BinaryHeap::is_empty) {
                    self.untargeted.remove(&wt);
                }
                e
            }
        };
        // The winning heap was just peeked non-empty, so this always pops;
        // written defensively (no unwrap) so a future race degrades to
        // "no task" instead of a server panic.
        let e = popped?;
        self.len -= 1;
        Some((e.task, e.accepted_us))
    }

    /// Every queued task, cloned, in no particular order (the replica
    /// ledger stores the queue as a multiset; promotion re-pushes and the
    /// priority heaps re-sort).
    pub fn snapshot(&self) -> Vec<Task> {
        let mut out = Vec::with_capacity(self.len);
        for heap in self.untargeted.values() {
            out.extend(heap.iter().map(|e| e.task.clone()));
        }
        for heap in self.targeted.values() {
            out.extend(heap.iter().map(|e| e.task.clone()));
        }
        out
    }

    /// Remove every task targeted at `rank` (all work types). Used when a
    /// rank dies: its pinned tasks must be dropped or retargeted, or they
    /// would sit in the queue forever and block termination.
    pub fn drain_targeted(&mut self, rank: Rank) -> Vec<Task> {
        let keys: Vec<(Rank, u32)> = self
            .targeted
            .keys()
            .filter(|(r, _)| *r == rank)
            .copied()
            .collect();
        let mut out = Vec::new();
        for k in keys {
            if let Some(heap) = self.targeted.remove(&k) {
                self.len -= heap.len();
                out.extend(heap.into_iter().map(|e| e.task));
            }
        }
        out
    }

    /// The work-stealing donation: half the untargeted tasks of the given
    /// types per request (at least one if any exist), raised to the
    /// thief's `need` hint when more clients are starved than half covers.
    pub fn steal(&mut self, work_types: &[u32], need: usize) -> Vec<Task> {
        let available: usize = work_types
            .iter()
            .filter_map(|wt| self.untargeted.get(wt).map(BinaryHeap::len))
            .sum();
        if available == 0 {
            return Vec::new();
        }
        let take = (available / 2).max(need.min(available)).max(1);
        let mut out = Vec::with_capacity(take);
        // Round-robin across types, taking lowest-priority tasks is
        // complex; take from the largest heap first (they queue longest).
        while out.len() < take {
            let wt = work_types
                .iter()
                .filter(|wt| {
                    self.untargeted
                        .get(wt)
                        .map(|h| !h.is_empty())
                        .unwrap_or(false)
                })
                .max_by_key(|wt| self.untargeted.get(wt).map(BinaryHeap::len).unwrap_or(0));
            let Some(&wt) = wt else { break };
            let Some(heap) = self.untargeted.get_mut(&wt) else {
                break; // selected key vanished: nothing left to take
            };
            if let Some(e) = heap.pop() {
                out.push(e.task);
                self.len -= 1;
            }
            if heap.is_empty() {
                self.untargeted.remove(&wt);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn task(wt: u32, prio: i32, target: Option<Rank>, tag: u8) -> Task {
        Task::new(wt, prio, target, Bytes::from(vec![tag]))
    }

    #[test]
    fn priority_then_fifo() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        q.push(task(1, 5, None, 2));
        q.push(task(1, 0, None, 3));
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 2);
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 1);
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 3);
        assert!(q.pop_for(0, &[1]).is_none());
    }

    #[test]
    fn work_types_are_separate() {
        let mut q = WorkQueue::new();
        q.push(task(0, 0, None, 1));
        q.push(task(1, 0, None, 2));
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 2);
        assert!(q.pop_for(0, &[1]).is_none());
        assert_eq!(q.pop_for(0, &[0]).unwrap().payload[0], 1);
    }

    #[test]
    fn targeted_only_to_target() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, Some(3), 1));
        assert!(q.pop_for(0, &[1]).is_none());
        assert_eq!(q.pop_for(3, &[1]).unwrap().payload[0], 1);
    }

    #[test]
    fn targeted_beats_untargeted_at_same_priority() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        q.push(task(1, 0, Some(5), 2));
        assert_eq!(q.pop_for(5, &[1]).unwrap().payload[0], 2);
    }

    #[test]
    fn higher_priority_untargeted_beats_targeted() {
        let mut q = WorkQueue::new();
        q.push(task(1, 10, None, 1));
        q.push(task(1, 0, Some(5), 2));
        assert_eq!(q.pop_for(5, &[1]).unwrap().payload[0], 1);
    }

    #[test]
    fn steal_takes_half_untargeted_only() {
        let mut q = WorkQueue::new();
        for i in 0..10 {
            q.push(task(1, 0, None, i));
        }
        q.push(task(1, 0, Some(2), 99));
        let stolen = q.steal(&[1], 1);
        assert_eq!(stolen.len(), 5);
        assert_eq!(q.len(), 6); // 5 untargeted + 1 targeted
        assert!(stolen.iter().all(|t| t.target.is_none()));
    }

    #[test]
    fn steal_from_empty_is_empty() {
        let mut q = WorkQueue::new();
        assert!(q.steal(&[0, 1], 1).is_empty());
        q.push(task(1, 0, Some(4), 1));
        assert!(
            q.steal(&[1], 1).is_empty(),
            "targeted tasks are not stealable"
        );
    }

    #[test]
    fn steal_single_task() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        assert_eq!(q.steal(&[1], 1).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_targeted_takes_all_types_for_rank() {
        let mut q = WorkQueue::new();
        q.push(task(0, 0, Some(2), 1));
        q.push(task(1, 5, Some(2), 2));
        q.push(task(1, 0, Some(3), 3));
        q.push(task(1, 0, None, 4));
        let drained = q.drain_targeted(2);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|t| t.target == Some(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_for(3, &[1]).unwrap().payload[0], 3);
        assert_eq!(q.pop_for(9, &[1]).unwrap().payload[0], 4);
    }

    #[test]
    fn multi_type_get_prefers_best_priority() {
        let mut q = WorkQueue::new();
        q.push(task(0, 1, None, 1));
        q.push(task(1, 9, None, 2));
        assert_eq!(q.pop_for(0, &[0, 1]).unwrap().payload[0], 2);
        assert_eq!(q.pop_for(0, &[0, 1]).unwrap().payload[0], 1);
    }
}

#[cfg(test)]
mod queue_properties {
    //! Property test: the queue agrees with a naive model on delivery
    //! order (priority desc, FIFO within priority, targeted-only-to-
    //! target with ties won by targeted).

    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Op {
        push: bool,
        prio: i32,
        target: Option<Rank>,
        wt: u32,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (
            any::<bool>(),
            -3i32..4,
            prop_oneof![Just(None), (0usize..3).prop_map(Some)],
            0u32..2,
        )
            .prop_map(|(push, prio, target, wt)| Op {
                push,
                prio,
                target,
                wt,
            })
    }

    /// Naive reference: linear scan for the best candidate.
    fn model_pop(
        model: &mut Vec<(i32, u64, Option<Rank>, u32, u64)>,
        rank: Rank,
        wts: &[u32],
    ) -> Option<u64> {
        let mut best: Option<usize> = None;
        for (idx, (prio, seq, target, wt, _id)) in model.iter().enumerate() {
            if !wts.contains(wt) {
                continue;
            }
            if target.is_some() && *target != Some(rank) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (bp, bs, bt, _, _) = model[b];
                    // Higher priority first; then targeted beats
                    // untargeted; then FIFO.
                    (*prio, target.is_some(), std::cmp::Reverse(*seq))
                        > (bp, bt.is_some(), std::cmp::Reverse(bs))
                }
            };
            if better {
                best = Some(idx);
            }
        }
        best.map(|b| model.remove(b).4)
    }

    proptest! {
        #[test]
        fn queue_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let mut q = WorkQueue::new();
            let mut model: Vec<(i32, u64, Option<Rank>, u32, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut id = 0u64;
            for op in &ops {
                if op.push {
                    q.push(Task::new(
                        op.wt,
                        op.prio,
                        op.target,
                        Bytes::from(id.to_le_bytes().to_vec()),
                    ));
                    model.push((op.prio, seq, op.target, op.wt, id));
                    seq += 1;
                    id += 1;
                } else {
                    let rank = op.target.unwrap_or(0);
                    let wts = [op.wt];
                    let got = q
                        .pop_for(rank, &wts)
                        .map(|t| u64::from_le_bytes(t.payload[..8].try_into().unwrap()));
                    let want = model_pop(&mut model, rank, &wts);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }
}
