//! Server-side work queues: per-type priority queues plus targeted queues.
//!
//! Untargeted heaps are keyed by `(tenant, work_type)` so the fair
//! scheduler ([`crate::tenant::TenantSched`]) can elect a tenant and pop
//! that tenant's best task without disturbing the (priority desc, arrival
//! asc) order *within* any tenant. Targeted heaps stay keyed by
//! `(rank, work_type)` — a pinned task can only ever run on its target, so
//! tenant fairness never withholds it.

use std::collections::{BinaryHeap, HashMap};

use mpisim::Rank;

use crate::msg::Task;

/// Heap entry ordered by (priority desc, arrival asc).
struct Entry {
    priority: i32,
    seq: u64,
    /// Accept time on this server's clock (µs), for queue-wait tracing.
    /// 0 when tracing is disabled; never ordered on.
    accepted_us: u64,
    task: Task,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier arrival (lower seq).
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A peeked candidate: (priority, seq) — compare with
/// [`better_candidate`].
type Peek = (i32, u64);

/// Whether candidate `a` beats `b` under (priority desc, arrival asc).
fn better_candidate(a: Peek, b: Peek) -> bool {
    (a.0, std::cmp::Reverse(a.1)) > (b.0, std::cmp::Reverse(b.1))
}

/// All queued work on one server.
#[derive(Default)]
pub struct WorkQueue {
    untargeted: HashMap<(u32, u32), BinaryHeap<Entry>>,
    targeted: HashMap<(Rank, u32), BinaryHeap<Entry>>,
    /// Untargeted *leaf work* (`WORK_TYPE_WORK`) count per tenant —
    /// the quantity admission quotas cap and queue peaks report.
    /// Control/notify tasks are internal dataflow: only the producing
    /// engine can consume them, so counting them against a quota would
    /// let a capped tenant deadlock itself.
    per_tenant: HashMap<u32, usize>,
    seq: u64,
    len: usize,
}

impl WorkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queued tasks.
    #[allow(dead_code)] // diagnostics / tests
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of untargeted tasks (the stealable pool).
    #[allow(dead_code)] // diagnostics / tests
    pub fn stealable(&self) -> usize {
        self.untargeted.values().map(BinaryHeap::len).sum()
    }

    /// Untargeted leaf (`WORK_TYPE_WORK`) tasks queued for one tenant —
    /// the quantity quotas cap.
    pub fn untargeted_of(&self, tenant: u32) -> usize {
        self.per_tenant.get(&tenant).copied().unwrap_or(0)
    }

    /// Enqueue a task, stamping its accept time for queue-wait tracing.
    pub fn push(&mut self, task: Task) {
        let e = Entry {
            priority: task.priority,
            seq: self.seq,
            accepted_us: mpisim::trace::now_us(),
            task,
        };
        self.seq += 1;
        self.len += 1;
        match e.task.target {
            Some(r) => self
                .targeted
                .entry((r, e.task.work_type))
                .or_default()
                .push(e),
            None => {
                if e.task.work_type == crate::msg::WORK_TYPE_WORK {
                    *self.per_tenant.entry(e.task.tenant).or_default() += 1;
                }
                self.untargeted
                    .entry((e.task.tenant, e.task.work_type))
                    .or_default()
                    .push(e);
            }
        }
    }

    /// Tenants that currently have untargeted work queued in any of the
    /// given types, sorted ascending (deterministic round-robin input).
    pub fn tenants_with_work(&self, work_types: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .untargeted
            .iter()
            .filter(|((_, wt), h)| work_types.contains(wt) && !h.is_empty())
            .map(|((t, _), _)| *t)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Best targeted candidate for `rank` across `work_types`.
    pub fn peek_targeted(&self, rank: Rank, work_types: &[u32]) -> Option<Peek> {
        work_types
            .iter()
            .filter_map(|wt| {
                self.targeted
                    .get(&(rank, *wt))
                    .and_then(|h| h.peek().map(|e| (e.priority, e.seq)))
            })
            .max_by(|a, b| (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1))))
    }

    /// Best untargeted candidate of one tenant across `work_types`.
    pub fn peek_untargeted(&self, tenant: u32, work_types: &[u32]) -> Option<Peek> {
        work_types
            .iter()
            .filter_map(|wt| {
                self.untargeted
                    .get(&(tenant, *wt))
                    .and_then(|h| h.peek().map(|e| (e.priority, e.seq)))
            })
            .max_by(|a, b| (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1))))
    }

    /// Pop the best task targeted at `rank` across `work_types`, with its
    /// accept timestamp.
    pub fn pop_targeted_timed(&mut self, rank: Rank, work_types: &[u32]) -> Option<(Task, u64)> {
        let (_, wt) = work_types
            .iter()
            .filter_map(|wt| {
                self.targeted
                    .get(&(rank, *wt))
                    .and_then(|h| h.peek().map(|e| ((e.priority, e.seq), *wt)))
            })
            .max_by(|a, b| {
                (a.0 .0, std::cmp::Reverse(a.0 .1)).cmp(&(b.0 .0, std::cmp::Reverse(b.0 .1)))
            })?;
        let e = self
            .targeted
            .get_mut(&(rank, wt))
            .and_then(BinaryHeap::pop)?;
        if self
            .targeted
            .get(&(rank, wt))
            .is_some_and(BinaryHeap::is_empty)
        {
            self.targeted.remove(&(rank, wt));
        }
        self.len -= 1;
        Some((e.task, e.accepted_us))
    }

    /// Pop one tenant's best untargeted task across `work_types`, with
    /// its accept timestamp.
    pub fn pop_untargeted_timed(&mut self, tenant: u32, work_types: &[u32]) -> Option<(Task, u64)> {
        let (_, wt) = work_types
            .iter()
            .filter_map(|wt| {
                self.untargeted
                    .get(&(tenant, *wt))
                    .and_then(|h| h.peek().map(|e| ((e.priority, e.seq), *wt)))
            })
            .max_by(|a, b| {
                (a.0 .0, std::cmp::Reverse(a.0 .1)).cmp(&(b.0 .0, std::cmp::Reverse(b.0 .1)))
            })?;
        let e = self
            .untargeted
            .get_mut(&(tenant, wt))
            .and_then(BinaryHeap::pop)?;
        if self
            .untargeted
            .get(&(tenant, wt))
            .is_some_and(BinaryHeap::is_empty)
        {
            self.untargeted.remove(&(tenant, wt));
        }
        if wt == crate::msg::WORK_TYPE_WORK {
            self.note_untargeted_removed(tenant, 1);
        }
        self.len -= 1;
        Some((e.task, e.accepted_us))
    }

    fn note_untargeted_removed(&mut self, tenant: u32, n: usize) {
        if let Some(c) = self.per_tenant.get_mut(&tenant) {
            *c = c.saturating_sub(n);
            if *c == 0 {
                self.per_tenant.remove(&tenant);
            }
        }
    }

    /// Best task a requester may run: targeted-to-it first (across its
    /// requested types, by priority), then untargeted.
    #[allow(dead_code)] // tests and model-checking; prod uses pop_for_timed
    pub fn pop_for(&mut self, rank: Rank, work_types: &[u32]) -> Option<Task> {
        self.pop_for_timed(rank, work_types).map(|(t, _)| t)
    }

    /// [`WorkQueue::pop_for`] plus the popped task's accept timestamp
    /// (µs on this server's clock; 0 when it was pushed untraced).
    ///
    /// This is the tenant-blind path: the untargeted candidate is the
    /// global best across all tenants. The server's fair-scheduling path
    /// composes [`WorkQueue::peek_targeted`] /
    /// [`WorkQueue::pop_untargeted_timed`] instead.
    pub fn pop_for_timed(&mut self, rank: Rank, work_types: &[u32]) -> Option<(Task, u64)> {
        let best_targeted = self.peek_targeted(rank, work_types);
        // Global best untargeted: max across every tenant's heaps.
        let best_untargeted: Option<(Peek, u32)> = self
            .untargeted
            .iter()
            .filter(|((_, wt), _)| work_types.contains(wt))
            .filter_map(|((tenant, _), h)| h.peek().map(|e| ((e.priority, e.seq), *tenant)))
            .max_by(|a, b| {
                (a.0 .0, std::cmp::Reverse(a.0 .1)).cmp(&(b.0 .0, std::cmp::Reverse(b.0 .1)))
            });

        // Targeted wins ties: it can only run here.
        match (best_targeted, best_untargeted) {
            (Some(t), Some((u, tenant))) => {
                if t.0 >= u.0 {
                    self.pop_targeted_timed(rank, work_types)
                } else {
                    self.pop_untargeted_timed(tenant, work_types)
                }
            }
            (Some(_), None) => self.pop_targeted_timed(rank, work_types),
            (None, Some((_, tenant))) => self.pop_untargeted_timed(tenant, work_types),
            (None, None) => None,
        }
    }

    /// Every queued task, cloned, in no particular order (the replica
    /// ledger stores the queue as a multiset; promotion re-pushes and the
    /// priority heaps re-sort).
    pub fn snapshot(&self) -> Vec<Task> {
        let mut out = Vec::with_capacity(self.len);
        for heap in self.untargeted.values() {
            out.extend(heap.iter().map(|e| e.task.clone()));
        }
        for heap in self.targeted.values() {
            out.extend(heap.iter().map(|e| e.task.clone()));
        }
        out
    }

    /// Remove every task targeted at `rank` (all work types). Used when a
    /// rank dies: its pinned tasks must be dropped or retargeted, or they
    /// would sit in the queue forever and block termination.
    pub fn drain_targeted(&mut self, rank: Rank) -> Vec<Task> {
        let keys: Vec<(Rank, u32)> = self
            .targeted
            .keys()
            .filter(|(r, _)| *r == rank)
            .copied()
            .collect();
        let mut out = Vec::new();
        for k in keys {
            if let Some(heap) = self.targeted.remove(&k) {
                self.len -= heap.len();
                out.extend(heap.into_iter().map(|e| e.task));
            }
        }
        out
    }

    /// The work-stealing donation: half the untargeted tasks of the given
    /// types per request (at least one if any exist), raised to the
    /// thief's `need` hint when more clients are starved than half covers.
    /// Takes across all tenants — stolen tasks keep their tenant tag, so
    /// fairness is re-applied wherever they land.
    pub fn steal(&mut self, work_types: &[u32], need: usize) -> Vec<Task> {
        let available: usize = self
            .untargeted
            .iter()
            .filter(|((_, wt), _)| work_types.contains(wt))
            .map(|(_, h)| h.len())
            .sum();
        if available == 0 {
            return Vec::new();
        }
        let take = (available / 2).max(need.min(available)).max(1);
        let mut out = Vec::with_capacity(take);
        // Round-robin across types, taking lowest-priority tasks is
        // complex; take from the largest heap first (they queue longest).
        while out.len() < take {
            let key = self
                .untargeted
                .iter()
                .filter(|((_, wt), h)| work_types.contains(wt) && !h.is_empty())
                .max_by_key(|(_, h)| h.len())
                .map(|(k, _)| *k);
            let Some(key) = key else { break };
            let (popped, empty) = match self.untargeted.get_mut(&key) {
                Some(heap) => (heap.pop(), heap.is_empty()),
                None => break, // selected key vanished: nothing left to take
            };
            if let Some(e) = popped {
                out.push(e.task);
                self.len -= 1;
                if key.1 == crate::msg::WORK_TYPE_WORK {
                    self.note_untargeted_removed(key.0, 1);
                }
            }
            if empty {
                self.untargeted.remove(&key);
            }
        }
        out
    }

    /// The better of two optional candidates under (priority desc,
    /// arrival asc); used by the server to compare a targeted peek with a
    /// tenant's untargeted peek.
    #[allow(dead_code)] // exercised via server scheduling
    pub fn prefer(a: Option<Peek>, b: Option<Peek>) -> Option<Peek> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if better_candidate(y, x) { y } else { x }),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn task(wt: u32, prio: i32, target: Option<Rank>, tag: u8) -> Task {
        Task::new(wt, prio, target, Bytes::from(vec![tag]))
    }

    #[test]
    fn priority_then_fifo() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        q.push(task(1, 5, None, 2));
        q.push(task(1, 0, None, 3));
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 2);
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 1);
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 3);
        assert!(q.pop_for(0, &[1]).is_none());
    }

    #[test]
    fn work_types_are_separate() {
        let mut q = WorkQueue::new();
        q.push(task(0, 0, None, 1));
        q.push(task(1, 0, None, 2));
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 2);
        assert!(q.pop_for(0, &[1]).is_none());
        assert_eq!(q.pop_for(0, &[0]).unwrap().payload[0], 1);
    }

    #[test]
    fn targeted_only_to_target() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, Some(3), 1));
        assert!(q.pop_for(0, &[1]).is_none());
        assert_eq!(q.pop_for(3, &[1]).unwrap().payload[0], 1);
    }

    #[test]
    fn targeted_beats_untargeted_at_same_priority() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        q.push(task(1, 0, Some(5), 2));
        assert_eq!(q.pop_for(5, &[1]).unwrap().payload[0], 2);
    }

    #[test]
    fn higher_priority_untargeted_beats_targeted() {
        let mut q = WorkQueue::new();
        q.push(task(1, 10, None, 1));
        q.push(task(1, 0, Some(5), 2));
        assert_eq!(q.pop_for(5, &[1]).unwrap().payload[0], 1);
    }

    #[test]
    fn steal_takes_half_untargeted_only() {
        let mut q = WorkQueue::new();
        for i in 0..10 {
            q.push(task(1, 0, None, i));
        }
        q.push(task(1, 0, Some(2), 99));
        let stolen = q.steal(&[1], 1);
        assert_eq!(stolen.len(), 5);
        assert_eq!(q.len(), 6); // 5 untargeted + 1 targeted
        assert!(stolen.iter().all(|t| t.target.is_none()));
    }

    #[test]
    fn steal_from_empty_is_empty() {
        let mut q = WorkQueue::new();
        assert!(q.steal(&[0, 1], 1).is_empty());
        q.push(task(1, 0, Some(4), 1));
        assert!(
            q.steal(&[1], 1).is_empty(),
            "targeted tasks are not stealable"
        );
    }

    #[test]
    fn steal_single_task() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1));
        assert_eq!(q.steal(&[1], 1).len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_targeted_takes_all_types_for_rank() {
        let mut q = WorkQueue::new();
        q.push(task(0, 0, Some(2), 1));
        q.push(task(1, 5, Some(2), 2));
        q.push(task(1, 0, Some(3), 3));
        q.push(task(1, 0, None, 4));
        let drained = q.drain_targeted(2);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|t| t.target == Some(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_for(3, &[1]).unwrap().payload[0], 3);
        assert_eq!(q.pop_for(9, &[1]).unwrap().payload[0], 4);
    }

    #[test]
    fn multi_type_get_prefers_best_priority() {
        let mut q = WorkQueue::new();
        q.push(task(0, 1, None, 1));
        q.push(task(1, 9, None, 2));
        assert_eq!(q.pop_for(0, &[0, 1]).unwrap().payload[0], 2);
        assert_eq!(q.pop_for(0, &[0, 1]).unwrap().payload[0], 1);
    }

    #[test]
    fn per_tenant_counts_track_untargeted_only() {
        let mut q = WorkQueue::new();
        q.push(task(1, 0, None, 1).with_tenant(7));
        q.push(task(1, 0, None, 2).with_tenant(7));
        q.push(task(1, 0, Some(3), 3).with_tenant(7));
        q.push(task(1, 0, None, 4)); // tenant 0
        assert_eq!(q.untargeted_of(7), 2);
        assert_eq!(q.untargeted_of(0), 1);
        assert_eq!(q.tenants_with_work(&[1]), vec![0, 7]);
        assert!(q.tenants_with_work(&[0]).is_empty());
        q.pop_untargeted_timed(7, &[1]).unwrap();
        assert_eq!(q.untargeted_of(7), 1);
        let stolen = q.steal(&[1], 4);
        assert!(!stolen.is_empty());
        assert_eq!(
            q.untargeted_of(7) + q.untargeted_of(0),
            2 - stolen.len().min(2)
        );
    }

    #[test]
    fn pop_untargeted_is_per_tenant_priority_order() {
        let mut q = WorkQueue::new();
        q.push(task(1, 1, None, 1).with_tenant(1));
        q.push(task(1, 9, None, 2).with_tenant(2));
        q.push(task(1, 5, None, 3).with_tenant(1));
        // Tenant 1's own best is the priority-5 task even though tenant 2
        // holds the global maximum.
        assert_eq!(q.pop_untargeted_timed(1, &[1]).unwrap().0.payload[0], 3);
        assert_eq!(q.pop_untargeted_timed(1, &[1]).unwrap().0.payload[0], 1);
        assert!(q.pop_untargeted_timed(1, &[1]).is_none());
        assert_eq!(q.pop_untargeted_timed(2, &[1]).unwrap().0.payload[0], 2);
    }

    #[test]
    fn pop_for_is_tenant_blind_global_best() {
        let mut q = WorkQueue::new();
        q.push(task(1, 1, None, 1).with_tenant(1));
        q.push(task(1, 9, None, 2).with_tenant(2));
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 2);
        assert_eq!(q.pop_for(0, &[1]).unwrap().payload[0], 1);
    }
}

#[cfg(test)]
mod queue_properties {
    //! Property test: the queue agrees with a naive model on delivery
    //! order (priority desc, FIFO within priority, targeted-only-to-
    //! target with ties won by targeted) under random interleavings of
    //! puts, gets, and steals.

    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Push {
            prio: i32,
            target: Option<Rank>,
            wt: u32,
            tenant: u32,
        },
        Pop {
            rank: Rank,
            wt: u32,
        },
        Steal {
            wt: u32,
            need: usize,
        },
    }

    fn push_strategy() -> impl Strategy<Value = Op> {
        (
            -3i32..4,
            prop_oneof![Just(None), (0usize..3).prop_map(Some)],
            0u32..2,
            0u32..3,
        )
            .prop_map(|(prio, target, wt, tenant)| Op::Push {
                prio,
                target,
                wt,
                tenant,
            })
    }

    fn pop_strategy() -> impl Strategy<Value = Op> {
        ((0usize..3), 0u32..2).prop_map(|(rank, wt)| Op::Pop { rank, wt })
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // The vendored proptest's `prop_oneof!` is unweighted; repeating
        // arms gets the intended 4:4:1 push/pop/steal mix.
        prop_oneof![
            push_strategy(),
            push_strategy(),
            push_strategy(),
            push_strategy(),
            pop_strategy(),
            pop_strategy(),
            pop_strategy(),
            pop_strategy(),
            ((0u32..2), 1usize..4).prop_map(|(wt, need)| Op::Steal { wt, need }),
        ]
    }

    /// Naive reference: linear scan for the best candidate.
    fn model_pop(
        model: &mut Vec<(i32, u64, Option<Rank>, u32, u64)>,
        rank: Rank,
        wts: &[u32],
    ) -> Option<u64> {
        let mut best: Option<usize> = None;
        for (idx, (prio, seq, target, wt, _id)) in model.iter().enumerate() {
            if !wts.contains(wt) {
                continue;
            }
            if target.is_some() && *target != Some(rank) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (bp, bs, bt, _, _) = model[b];
                    // Higher priority first; then targeted beats
                    // untargeted; then FIFO.
                    (*prio, target.is_some(), std::cmp::Reverse(*seq))
                        > (bp, bt.is_some(), std::cmp::Reverse(bs))
                }
            };
            if better {
                best = Some(idx);
            }
        }
        best.map(|b| model.remove(b).4)
    }

    proptest! {
        #[test]
        fn queue_matches_naive_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
            let mut q = WorkQueue::new();
            let mut model: Vec<(i32, u64, Option<Rank>, u32, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut id = 0u64;
            for op in &ops {
                match op {
                    Op::Push { prio, target, wt, tenant } => {
                        q.push(
                            Task::new(
                                *wt,
                                *prio,
                                *target,
                                Bytes::from(id.to_le_bytes().to_vec()),
                            )
                            .with_tenant(*tenant),
                        );
                        model.push((*prio, seq, *target, *wt, id));
                        seq += 1;
                        id += 1;
                    }
                    Op::Pop { rank, wt } => {
                        let wts = [*wt];
                        let got = q
                            .pop_for(*rank, &wts)
                            .map(|t| u64::from_le_bytes(t.payload[..8].try_into().unwrap()));
                        let want = model_pop(&mut model, *rank, &wts);
                        prop_assert_eq!(got, want);
                    }
                    Op::Steal { wt, need } => {
                        let stolen = q.steal(&[*wt], *need);
                        // Steals only take untargeted tasks of the
                        // requested type; mirror the removals in the
                        // model by task identity so subsequent pops
                        // keep checking order.
                        for t in &stolen {
                            prop_assert!(t.target.is_none());
                            prop_assert_eq!(t.work_type, *wt);
                            let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                            let at = model.iter().position(|(_, _, _, _, id)| *id == tid);
                            prop_assert!(at.is_some(), "stole a task the model didn't hold");
                            if let Some(at) = at {
                                model.remove(at);
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());

            // Drain everything that remains through untenanted pops and
            // check the tail also respects the ordering invariant.
            loop {
                let mut popped_any = false;
                for rank in 0..3 {
                    for wt in 0..2 {
                        let wts = [wt];
                        if let Some(t) = q.pop_for(rank, &wts) {
                            let tid = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                            let want = model_pop(&mut model, rank, &wts);
                            prop_assert_eq!(Some(tid), want);
                            popped_any = true;
                        }
                    }
                }
                if !popped_any {
                    break;
                }
            }
            prop_assert!(model.is_empty());
        }
    }
}
