//! Write-through replication: the ledger a server streams to its ring
//! successors so a successor can take over the shard when the primary
//! dies.
//!
//! Every server owns one [`Ledger`] worth of recoverable state — its data
//! shard, queued tasks, open leases, per-client request bookkeeping, and
//! write-ahead task transfers — and mirrors it on the first `R - 1` live
//! ring successors ([`crate::Layout::successors`]). Mutations are shipped
//! as [`ReplOp`] batches *before* any client-visible response leaves the
//! server (write-through), so at `R >= 2` the replica is always at least
//! as new as anything a client has observed. On a confirmed death the
//! first live successor merges the dead server's ledger into its own live
//! state and serves the shard in its place.
//!
//! What is deliberately *not* replicated: parked `Get`s (clients re-send
//! them on failover), steal/backoff heuristics, and monitoring counters —
//! all either reconstructible or harmless to lose.

use std::collections::{HashMap, HashSet, VecDeque};

use bytes::Bytes;
use mpisim::{Rank, WireError, WireReader, WireWriter};

#[cfg(test)]
use crate::datastore::TYPE_TAG_CONTAINER;
use crate::datastore::{DataStore, Datum, DatumValue};
use crate::msg::{decode_task_list, encode_task_list, Task};

/// One state-changing operation against a server's [`Ledger`], streamed
/// to its replica holders. The op stream from a primary is applied in
/// order; each handler's ops are shipped in one [`ServerMsg::Repl`]
/// batch, which the simulator delivers atomically — a kill can land
/// between messages, never inside one.
///
/// [`ServerMsg::Repl`]: crate::msg::ServerMsg::Repl
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOp {
    /// Datum created ([`DataStore::create`]).
    Create { id: u64, type_tag: u8 },
    /// Scalar stored and closed. Drained subscribers are not carried
    /// here: their notify tasks are replicated as task ops in the same
    /// batch.
    Store { id: u64, value: Bytes },
    /// Container member inserted.
    Insert { id: u64, key: String, value: Bytes },
    /// Datum closed.
    CloseDatum { id: u64 },
    /// Writer slot count adjusted (may close the datum).
    IncrWriters { id: u64, delta: i64 },
    /// Rank subscribed to an open datum.
    Subscribe { id: u64, rank: Rank },
    /// Tasks entered the work queue.
    Push { tasks: Vec<Task> },
    /// Tasks left the work queue (delivery or donation). Always explicit —
    /// a [`ReplOp::LeaseOpen`] alone does *not* imply removal, because
    /// direct deliveries to a parked client never touch the queue.
    Remove { tasks: Vec<Task> },
    /// Tasks leased to a client (delivered, awaiting ack).
    LeaseOpen { client: Rank, tasks: Vec<Task> },
    /// The client's `n` oldest leases were acknowledged.
    LeaseDrop { client: Rank, n: u32 },
    /// Every lease of `client` was revoked (timeout); the client earns
    /// that many stale-ack credits.
    LeaseRevoke { client: Rank },
    /// `n` stale-ack credits of `client` were consumed.
    CreditUse { client: Rank, n: u32 },
    /// `client` was detected dead: permanently parked, leases and credits
    /// dropped (its requeued tasks arrive as separate task ops).
    ClientDead { client: Rank },
    /// `client`'s request `seq` was fully processed; `resp` caches the
    /// encoded response when the request was awaited, so a promoted
    /// successor can answer a re-sent duplicate byte-for-byte.
    SeqResp {
        client: Rank,
        seq: u64,
        resp: Option<Bytes>,
    },
    /// Streamed stdout from `client` on behalf of `tenant`.
    Out {
        client: Rank,
        text: String,
        tenant: u32,
    },
    /// `client` reported it will issue no further requests.
    ClientFinished { client: Rank },
    /// Write-ahead record of a task transfer toward home server `dest`
    /// (forward or steal donation), logged *before* the tasks are sent.
    XferOut {
        dest: Rank,
        fseq: u64,
        steal: bool,
        tasks: Vec<Task>,
    },
    /// Transfer acknowledged by the receiver; the write-ahead entry is
    /// retired. `origin` is explicit because a promoted server also
    /// retires entries it inherited from the dead primary.
    XferDone { origin: Rank, dest: Rank, fseq: u64 },
    /// The ledger owner applied transfer `fseq` from `origin`'s ledger
    /// toward home `dest` (`n` tasks; the tasks themselves ride in
    /// adjacent task ops of the same batch).
    XferIn {
        origin: Rank,
        dest: Rank,
        fseq: u64,
        n: u64,
    },
    /// A task was quarantined with this report.
    Quarantine { report: String },
}

/// A write-ahead task transfer entry: `origin`'s ledger still owes the
/// tasks to home server `dest` until the receiver acknowledges `fseq`.
#[derive(Debug, Clone, PartialEq)]
pub struct Xfer {
    /// Server whose ledger carries the entry (the original sender, which
    /// may be dead by the time the entry is re-driven).
    pub origin: Rank,
    /// Home server the tasks belong to (may itself be dead — the wire
    /// message is then addressed to its promoted successor).
    pub dest: Rank,
    /// Per-`(origin, dest)` transfer sequence number, from 1.
    pub fseq: u64,
    /// Whether the transfer answers a steal request (wire variant).
    pub steal: bool,
    /// The tasks in flight.
    pub tasks: Vec<Task>,
}

/// The replicable state of one ADLB server. Replicas hold one `Ledger`
/// per peer they back; a server's own live state is snapshotted into this
/// form when a (re)synced successor needs the full picture.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Ledger {
    /// The data shard (futures and containers).
    pub store: DataStore,
    /// Queued tasks, as a multiset (order is rebuilt on promotion; the
    /// priority queue re-sorts).
    pub queue: Vec<Task>,
    /// Open leases per client, oldest first.
    pub leases: HashMap<Rank, VecDeque<Task>>,
    /// Stale-ack credits per client (whole-deque revocations).
    pub credits: HashMap<Rank, u32>,
    /// Per-client request dedup high-water mark.
    pub seqs: HashMap<Rank, u64>,
    /// Cached encoded response for a client's last awaited request.
    pub resps: HashMap<Rank, (u64, Bytes)>,
    /// Accumulated stdout stream per `(client, tenant)`.
    pub outputs: HashMap<(Rank, u32), String>,
    /// Clients that are permanently parked (finished or dead).
    pub finished: HashSet<Rank>,
    /// Quarantine reports.
    pub quarantine: Vec<String>,
    /// Unacknowledged outbound task transfers.
    pub pending_xfers: Vec<Xfer>,
    /// Next outbound transfer seq per destination home (last used; next
    /// is `+ 1`).
    pub next_fseq: HashMap<Rank, u64>,
    /// Applied inbound transfer high-water per `(dest home, origin)`.
    pub xfer_applied: HashMap<(Rank, Rank), u64>,
    /// Tasks forwarded/donated away (termination-detection flow counter).
    pub fwd_out: u64,
    /// Tasks received from peers (termination-detection flow counter).
    pub fwd_in: u64,
    /// How many dead peers' ledgers the owning server has merged into this
    /// state (its failover count). This is the replica freshness version:
    /// a copy is promotable only if its `merges` covers every promotion
    /// the holder has observed the owner perform, because the bulk merged
    /// during a promotion never flows through the incremental op stream —
    /// only a full (re)sync carries it. Comparing versions makes
    /// staleness a property of the data rather than of message arrival
    /// order.
    pub merges: u64,
}

impl Ledger {
    /// Apply one op from `owner`'s replication stream. Must mirror
    /// exactly what the primary did to its live state.
    pub fn apply(&mut self, owner: Rank, op: &ReplOp) {
        match op {
            ReplOp::Create { id, type_tag } => {
                let _ = self.store.create(*id, *type_tag);
            }
            ReplOp::Store { id, value } => {
                let _ = self.store.store(*id, value.clone());
            }
            ReplOp::Insert { id, key, value } => {
                let _ = self.store.insert(*id, key, value.clone());
            }
            ReplOp::CloseDatum { id } => {
                let _ = self.store.close(*id);
            }
            ReplOp::IncrWriters { id, delta } => {
                let _ = self.store.incr_writers(*id, *delta);
            }
            ReplOp::Subscribe { id, rank } => {
                let _ = self.store.subscribe(*id, *rank);
            }
            ReplOp::Push { tasks } => {
                self.queue.extend(tasks.iter().cloned());
            }
            ReplOp::Remove { tasks } => {
                for t in tasks {
                    if let Some(i) = self.queue.iter().position(|q| q == t) {
                        self.queue.swap_remove(i);
                    }
                }
            }
            ReplOp::LeaseOpen { client, tasks } => {
                self.leases
                    .entry(*client)
                    .or_default()
                    .extend(tasks.iter().cloned());
            }
            ReplOp::LeaseDrop { client, n } => {
                if let Some(deque) = self.leases.get_mut(client) {
                    for _ in 0..*n {
                        deque.pop_front();
                    }
                    if deque.is_empty() {
                        self.leases.remove(client);
                    }
                }
            }
            ReplOp::LeaseRevoke { client } => {
                if let Some(deque) = self.leases.remove(client) {
                    *self.credits.entry(*client).or_default() += deque.len() as u32;
                }
            }
            ReplOp::CreditUse { client, n } => {
                if let Some(c) = self.credits.get_mut(client) {
                    *c = c.saturating_sub(*n);
                    if *c == 0 {
                        self.credits.remove(client);
                    }
                }
            }
            ReplOp::ClientDead { client } => {
                self.finished.insert(*client);
                self.leases.remove(client);
                self.credits.remove(client);
            }
            ReplOp::SeqResp { client, seq, resp } => {
                let hw = self.seqs.entry(*client).or_default();
                *hw = (*hw).max(*seq);
                if let Some(bytes) = resp {
                    self.resps.insert(*client, (*seq, bytes.clone()));
                }
            }
            ReplOp::Out {
                client,
                text,
                tenant,
            } => {
                self.outputs
                    .entry((*client, *tenant))
                    .or_default()
                    .push_str(text);
            }
            ReplOp::ClientFinished { client } => {
                self.finished.insert(*client);
            }
            ReplOp::XferOut {
                dest,
                fseq,
                steal,
                tasks,
            } => {
                let next = self.next_fseq.entry(*dest).or_default();
                *next = (*next).max(*fseq);
                self.fwd_out += tasks.len() as u64;
                self.pending_xfers.push(Xfer {
                    origin: owner,
                    dest: *dest,
                    fseq: *fseq,
                    steal: *steal,
                    tasks: tasks.clone(),
                });
            }
            ReplOp::XferDone { origin, dest, fseq } => {
                self.pending_xfers
                    .retain(|x| !(x.origin == *origin && x.dest == *dest && x.fseq == *fseq));
            }
            ReplOp::XferIn {
                origin,
                dest,
                fseq,
                n,
            } => {
                let hw = self.xfer_applied.entry((*dest, *origin)).or_default();
                *hw = (*hw).max(*fseq);
                self.fwd_in += n;
            }
            ReplOp::Quarantine { report } => {
                self.quarantine.push(report.clone());
            }
        }
    }

    /// Serialize the full ledger (a `Snapshot` payload).
    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        let datums: Vec<_> = self.store.iter().collect();
        w.put_u32(datums.len() as u32);
        for (id, d) in datums {
            w.put_u64(*id);
            encode_datum(w, d);
        }
        encode_task_list(w, &self.queue);
        w.put_u32(self.leases.len() as u32);
        for (client, deque) in &self.leases {
            w.put_u64(*client as u64);
            let tasks: Vec<Task> = deque.iter().cloned().collect();
            encode_task_list(w, &tasks);
        }
        w.put_u32(self.credits.len() as u32);
        for (client, n) in &self.credits {
            w.put_u64(*client as u64);
            w.put_u32(*n);
        }
        w.put_u32(self.seqs.len() as u32);
        for (client, seq) in &self.seqs {
            w.put_u64(*client as u64);
            w.put_u64(*seq);
        }
        w.put_u32(self.resps.len() as u32);
        for (client, (seq, bytes)) in &self.resps {
            w.put_u64(*client as u64);
            w.put_u64(*seq);
            w.put_bytes(bytes);
        }
        w.put_u32(self.outputs.len() as u32);
        for ((client, tenant), text) in &self.outputs {
            w.put_u64(*client as u64);
            w.put_u32(*tenant);
            w.put_str(text);
        }
        w.put_u32(self.finished.len() as u32);
        for client in &self.finished {
            w.put_u64(*client as u64);
        }
        w.put_u32(self.quarantine.len() as u32);
        for q in &self.quarantine {
            w.put_str(q);
        }
        w.put_u32(self.pending_xfers.len() as u32);
        for x in &self.pending_xfers {
            w.put_u64(x.origin as u64);
            w.put_u64(x.dest as u64);
            w.put_u64(x.fseq);
            w.put_u8(x.steal as u8);
            encode_task_list(w, &x.tasks);
        }
        w.put_u32(self.next_fseq.len() as u32);
        for (dest, fseq) in &self.next_fseq {
            w.put_u64(*dest as u64);
            w.put_u64(*fseq);
        }
        w.put_u32(self.xfer_applied.len() as u32);
        for ((dest, origin), fseq) in &self.xfer_applied {
            w.put_u64(*dest as u64);
            w.put_u64(*origin as u64);
            w.put_u64(*fseq);
        }
        w.put_u64(self.fwd_out);
        w.put_u64(self.fwd_in);
        w.put_u64(self.merges);
    }

    /// Deserialize a full ledger.
    pub(crate) fn decode_from(r: &mut WireReader) -> Result<Ledger, WireError> {
        let mut ledger = Ledger::default();
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let id = r.get_u64()?;
            let d = decode_datum(r)?;
            ledger.store.insert_datum(id, d);
        }
        ledger.queue = decode_task_list(r)?;
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let client = r.get_u64()? as Rank;
            let tasks = decode_task_list(r)?;
            ledger.leases.insert(client, tasks.into());
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let client = r.get_u64()? as Rank;
            ledger.credits.insert(client, r.get_u32()?);
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let client = r.get_u64()? as Rank;
            ledger.seqs.insert(client, r.get_u64()?);
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let client = r.get_u64()? as Rank;
            let seq = r.get_u64()?;
            let bytes = Bytes::copy_from_slice(r.get_bytes()?);
            ledger.resps.insert(client, (seq, bytes));
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let client = r.get_u64()? as Rank;
            let tenant = r.get_u32()?;
            ledger
                .outputs
                .insert((client, tenant), r.get_str()?.to_string());
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            ledger.finished.insert(r.get_u64()? as Rank);
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            ledger.quarantine.push(r.get_str()?.to_string());
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            ledger.pending_xfers.push(Xfer {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
                steal: r.get_u8()? != 0,
                tasks: decode_task_list(r)?,
            });
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let dest = r.get_u64()? as Rank;
            ledger.next_fseq.insert(dest, r.get_u64()?);
        }
        let n = r.get_u32()? as usize;
        for _ in 0..n {
            let dest = r.get_u64()? as Rank;
            let origin = r.get_u64()? as Rank;
            ledger.xfer_applied.insert((dest, origin), r.get_u64()?);
        }
        ledger.fwd_out = r.get_u64()?;
        ledger.fwd_in = r.get_u64()?;
        ledger.merges = r.get_u64()?;
        Ok(ledger)
    }
}

fn encode_datum(w: &mut WireWriter, d: &Datum) {
    w.put_u8(d.type_tag);
    w.put_u8(d.closed as u8);
    match &d.value {
        DatumValue::Unset => {
            w.put_u8(0);
        }
        DatumValue::Scalar(b) => {
            w.put_u8(1);
            w.put_bytes(b);
        }
        DatumValue::Container(map) => {
            w.put_u8(2);
            w.put_u32(map.len() as u32);
            for (k, v) in map {
                w.put_str(k);
                w.put_bytes(v);
            }
        }
    }
    w.put_u32(d.subscribers.len() as u32);
    for s in &d.subscribers {
        w.put_u64(*s as u64);
    }
    w.put_i64(d.write_refs);
}

fn decode_datum(r: &mut WireReader) -> Result<Datum, WireError> {
    let type_tag = r.get_u8()?;
    let closed = r.get_u8()? != 0;
    let value = match r.get_u8()? {
        0 => DatumValue::Unset,
        1 => DatumValue::Scalar(Bytes::copy_from_slice(r.get_bytes()?)),
        2 => {
            let n = r.get_u32()? as usize;
            let mut map = HashMap::with_capacity(n.min(4096));
            for _ in 0..n {
                let k = r.get_str()?.to_string();
                let v = Bytes::copy_from_slice(r.get_bytes()?);
                map.insert(k, v);
            }
            DatumValue::Container(map)
        }
        _ => {
            return Err(WireError {
                context: "unknown datum value kind",
                offset: 0,
            })
        }
    };
    let n = r.get_u32()? as usize;
    let mut subscribers = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        subscribers.push(r.get_u64()? as Rank);
    }
    let write_refs = r.get_i64()?;
    Ok(Datum {
        type_tag,
        value,
        closed,
        subscribers,
        write_refs,
    })
}

impl ReplOp {
    pub(crate) fn encode_into(&self, w: &mut WireWriter) {
        match self {
            ReplOp::Create { id, type_tag } => {
                w.put_u8(0);
                w.put_u64(*id);
                w.put_u8(*type_tag);
            }
            ReplOp::Store { id, value } => {
                w.put_u8(1);
                w.put_u64(*id);
                w.put_bytes(value);
            }
            ReplOp::Insert { id, key, value } => {
                w.put_u8(2);
                w.put_u64(*id);
                w.put_str(key);
                w.put_bytes(value);
            }
            ReplOp::CloseDatum { id } => {
                w.put_u8(3);
                w.put_u64(*id);
            }
            ReplOp::IncrWriters { id, delta } => {
                w.put_u8(4);
                w.put_u64(*id);
                w.put_i64(*delta);
            }
            ReplOp::Subscribe { id, rank } => {
                w.put_u8(5);
                w.put_u64(*id);
                w.put_u64(*rank as u64);
            }
            ReplOp::Push { tasks } => {
                w.put_u8(6);
                encode_task_list(w, tasks);
            }
            ReplOp::Remove { tasks } => {
                w.put_u8(7);
                encode_task_list(w, tasks);
            }
            ReplOp::LeaseOpen { client, tasks } => {
                w.put_u8(8);
                w.put_u64(*client as u64);
                encode_task_list(w, tasks);
            }
            ReplOp::LeaseDrop { client, n } => {
                w.put_u8(9);
                w.put_u64(*client as u64);
                w.put_u32(*n);
            }
            ReplOp::LeaseRevoke { client } => {
                w.put_u8(10);
                w.put_u64(*client as u64);
            }
            ReplOp::CreditUse { client, n } => {
                w.put_u8(11);
                w.put_u64(*client as u64);
                w.put_u32(*n);
            }
            ReplOp::ClientDead { client } => {
                w.put_u8(12);
                w.put_u64(*client as u64);
            }
            ReplOp::SeqResp { client, seq, resp } => {
                w.put_u8(13);
                w.put_u64(*client as u64);
                w.put_u64(*seq);
                match resp {
                    Some(b) => {
                        w.put_u8(1);
                        w.put_bytes(b);
                    }
                    None => {
                        w.put_u8(0);
                    }
                }
            }
            ReplOp::Out {
                client,
                text,
                tenant,
            } => {
                w.put_u8(14);
                w.put_u64(*client as u64);
                w.put_str(text);
                w.put_u32(*tenant);
            }
            ReplOp::ClientFinished { client } => {
                w.put_u8(15);
                w.put_u64(*client as u64);
            }
            ReplOp::XferOut {
                dest,
                fseq,
                steal,
                tasks,
            } => {
                w.put_u8(16);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
                w.put_u8(*steal as u8);
                encode_task_list(w, tasks);
            }
            ReplOp::XferDone { origin, dest, fseq } => {
                w.put_u8(17);
                w.put_u64(*origin as u64);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
            }
            ReplOp::XferIn {
                origin,
                dest,
                fseq,
                n,
            } => {
                w.put_u8(18);
                w.put_u64(*origin as u64);
                w.put_u64(*dest as u64);
                w.put_u64(*fseq);
                w.put_u64(*n);
            }
            ReplOp::Quarantine { report } => {
                w.put_u8(19);
                w.put_str(report);
            }
        }
    }

    pub(crate) fn decode_from(r: &mut WireReader) -> Result<ReplOp, WireError> {
        Ok(match r.get_u8()? {
            0 => ReplOp::Create {
                id: r.get_u64()?,
                type_tag: r.get_u8()?,
            },
            1 => ReplOp::Store {
                id: r.get_u64()?,
                value: Bytes::copy_from_slice(r.get_bytes()?),
            },
            2 => ReplOp::Insert {
                id: r.get_u64()?,
                key: r.get_str()?.to_string(),
                value: Bytes::copy_from_slice(r.get_bytes()?),
            },
            3 => ReplOp::CloseDatum { id: r.get_u64()? },
            4 => ReplOp::IncrWriters {
                id: r.get_u64()?,
                delta: r.get_i64()?,
            },
            5 => ReplOp::Subscribe {
                id: r.get_u64()?,
                rank: r.get_u64()? as Rank,
            },
            6 => ReplOp::Push {
                tasks: decode_task_list(r)?,
            },
            7 => ReplOp::Remove {
                tasks: decode_task_list(r)?,
            },
            8 => ReplOp::LeaseOpen {
                client: r.get_u64()? as Rank,
                tasks: decode_task_list(r)?,
            },
            9 => ReplOp::LeaseDrop {
                client: r.get_u64()? as Rank,
                n: r.get_u32()?,
            },
            10 => ReplOp::LeaseRevoke {
                client: r.get_u64()? as Rank,
            },
            11 => ReplOp::CreditUse {
                client: r.get_u64()? as Rank,
                n: r.get_u32()?,
            },
            12 => ReplOp::ClientDead {
                client: r.get_u64()? as Rank,
            },
            13 => {
                let client = r.get_u64()? as Rank;
                let seq = r.get_u64()?;
                let resp = if r.get_u8()? == 1 {
                    Some(Bytes::copy_from_slice(r.get_bytes()?))
                } else {
                    None
                };
                ReplOp::SeqResp { client, seq, resp }
            }
            14 => {
                let client = r.get_u64()? as Rank;
                let text = r.get_str()?.to_string();
                ReplOp::Out {
                    client,
                    text,
                    tenant: r.get_u32()?,
                }
            }
            15 => ReplOp::ClientFinished {
                client: r.get_u64()? as Rank,
            },
            16 => ReplOp::XferOut {
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
                steal: r.get_u8()? != 0,
                tasks: decode_task_list(r)?,
            },
            17 => ReplOp::XferDone {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
            },
            18 => ReplOp::XferIn {
                origin: r.get_u64()? as Rank,
                dest: r.get_u64()? as Rank,
                fseq: r.get_u64()?,
                n: r.get_u64()?,
            },
            19 => ReplOp::Quarantine {
                report: r.get_str()?.to_string(),
            },
            _ => {
                return Err(WireError {
                    context: "unknown repl op kind",
                    offset: 0,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(p: i32) -> Task {
        Task::new(1, p, None, Bytes::from_static(b"work"))
    }

    fn sample_ledger() -> Ledger {
        let mut l = Ledger::default();
        l.store.create(3, 0).unwrap();
        l.store.create(10, TYPE_TAG_CONTAINER).unwrap();
        l.store.subscribe(3, 1).unwrap();
        l.store
            .insert(10, "0", Bytes::from_static(b"member"))
            .unwrap();
        l.queue.push(task(1));
        l.queue.push(task(2));
        l.leases.insert(0, vec![task(3), task(4)].into());
        l.credits.insert(2, 1);
        l.seqs.insert(0, 17);
        l.resps.insert(0, (17, Bytes::from_static(b"resp")));
        l.outputs.insert((1, 0), "line\n".into());
        l.outputs.insert((1, 3), "tenant three\n".into());
        l.finished.insert(4);
        l.quarantine.push("bad task".into());
        l.pending_xfers.push(Xfer {
            origin: 8,
            dest: 9,
            fseq: 2,
            steal: false,
            tasks: vec![task(5)],
        });
        l.next_fseq.insert(9, 2);
        l.xfer_applied.insert((8, 9), 4);
        l.fwd_out = 3;
        l.fwd_in = 2;
        l.merges = 1;
        l
    }

    #[test]
    fn ledger_round_trips() {
        let l = sample_ledger();
        let mut w = WireWriter::new();
        l.encode_into(&mut w);
        let wire = w.finish();
        let mut r = WireReader::new(&wire);
        let back = Ledger::decode_from(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn ops_round_trip() {
        let cases = vec![
            ReplOp::Create { id: 1, type_tag: 0 },
            ReplOp::Store {
                id: 1,
                value: Bytes::from_static(b"v"),
            },
            ReplOp::Insert {
                id: 2,
                key: "7".into(),
                value: Bytes::new(),
            },
            ReplOp::CloseDatum { id: 2 },
            ReplOp::IncrWriters { id: 2, delta: -1 },
            ReplOp::Subscribe { id: 1, rank: 3 },
            ReplOp::Push {
                tasks: vec![task(1)],
            },
            ReplOp::Remove {
                tasks: vec![task(1), task(2)],
            },
            ReplOp::LeaseOpen {
                client: 0,
                tasks: vec![task(1)],
            },
            ReplOp::LeaseDrop { client: 0, n: 2 },
            ReplOp::LeaseRevoke { client: 1 },
            ReplOp::CreditUse { client: 1, n: 1 },
            ReplOp::ClientDead { client: 2 },
            ReplOp::SeqResp {
                client: 0,
                seq: 9,
                resp: Some(Bytes::from_static(b"ok")),
            },
            ReplOp::SeqResp {
                client: 0,
                seq: 10,
                resp: None,
            },
            ReplOp::Out {
                client: 1,
                text: "hello\n".into(),
                tenant: 2,
            },
            ReplOp::ClientFinished { client: 1 },
            ReplOp::XferOut {
                dest: 9,
                fseq: 1,
                steal: true,
                tasks: vec![task(8)],
            },
            ReplOp::XferDone {
                origin: 8,
                dest: 9,
                fseq: 1,
            },
            ReplOp::XferIn {
                origin: 9,
                dest: 8,
                fseq: 1,
                n: 4,
            },
            ReplOp::Quarantine {
                report: "poison".into(),
            },
        ];
        for c in cases {
            let mut w = WireWriter::new();
            c.encode_into(&mut w);
            let wire = w.finish();
            let mut r = WireReader::new(&wire);
            let back = ReplOp::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn apply_mirrors_primary_mutations() {
        let mut l = Ledger::default();
        let owner = 8;
        // Data ops.
        l.apply(owner, &ReplOp::Create { id: 5, type_tag: 0 });
        l.apply(owner, &ReplOp::Subscribe { id: 5, rank: 2 });
        l.apply(
            owner,
            &ReplOp::Store {
                id: 5,
                value: Bytes::from_static(b"42"),
            },
        );
        assert_eq!(l.store.retrieve(5).unwrap().unwrap(), &b"42"[..]);
        // Store drains subscribers on the replica too (notify tasks are
        // replicated separately as task ops).
        l.apply(owner, &ReplOp::Create { id: 6, type_tag: 0 });

        // Queue + lease ops.
        l.apply(
            owner,
            &ReplOp::Push {
                tasks: vec![task(1), task(2)],
            },
        );
        l.apply(
            owner,
            &ReplOp::Remove {
                tasks: vec![task(1)],
            },
        );
        assert_eq!(l.queue, vec![task(2)]);
        l.apply(
            owner,
            &ReplOp::LeaseOpen {
                client: 0,
                tasks: vec![task(1), task(3)],
            },
        );
        l.apply(owner, &ReplOp::LeaseDrop { client: 0, n: 1 });
        assert_eq!(l.leases[&0], VecDeque::from(vec![task(3)]));
        l.apply(owner, &ReplOp::LeaseRevoke { client: 0 });
        assert!(l.leases.is_empty());
        assert_eq!(l.credits[&0], 1);
        l.apply(owner, &ReplOp::CreditUse { client: 0, n: 1 });
        assert!(l.credits.is_empty());

        // Request bookkeeping.
        l.apply(
            owner,
            &ReplOp::SeqResp {
                client: 0,
                seq: 3,
                resp: Some(Bytes::from_static(b"r")),
            },
        );
        l.apply(
            owner,
            &ReplOp::SeqResp {
                client: 0,
                seq: 5,
                resp: None,
            },
        );
        assert_eq!(l.seqs[&0], 5);
        assert_eq!(l.resps[&0].0, 3);

        // Transfers.
        l.apply(
            owner,
            &ReplOp::XferOut {
                dest: 9,
                fseq: 1,
                steal: false,
                tasks: vec![task(7)],
            },
        );
        assert_eq!(l.pending_xfers.len(), 1);
        assert_eq!(l.pending_xfers[0].origin, owner);
        assert_eq!(l.fwd_out, 1);
        l.apply(
            owner,
            &ReplOp::XferDone {
                origin: owner,
                dest: 9,
                fseq: 1,
            },
        );
        assert!(l.pending_xfers.is_empty());
        l.apply(
            owner,
            &ReplOp::XferIn {
                origin: 9,
                dest: owner,
                fseq: 2,
                n: 3,
            },
        );
        assert_eq!(l.xfer_applied[&(owner, 9)], 2);
        assert_eq!(l.fwd_in, 3);
    }
}
