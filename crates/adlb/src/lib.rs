//! # adlb — the Asynchronous Dynamic Load Balancer
//!
//! Swift/T programs are MPI programs whose ranks split into a few *control*
//! processes and a sea of *workers*: "ADLB servers, shown as an opaque
//! subsystem, distribute tasks to workers" (Wozniak et al., CLUSTER 2015,
//! §II.B, Fig. 2). This crate reproduces that subsystem over the `mpisim`
//! substrate, following the design of Lusk, Pieper & Butler's ADLB
//! ("More scalability, less pain") and the Swift/T-era extensions:
//!
//! * **Typed work queues with priorities.** Clients [`AdlbClient::put`]
//!   tasks of a work type; idle clients park in [`AdlbClient::get`] until a
//!   matching task arrives. Higher priority runs first; FIFO within a
//!   priority.
//! * **Targeted tasks.** A task may be pinned to a specific rank — this is
//!   how data-close notifications reach the engine that subscribed.
//! * **Work stealing.** A server whose queues are empty while clients are
//!   parked steals half a victim's queue, giving the load balancing the
//!   paper's `foreach` throughput depends on.
//! * **A distributed data store.** Turbine's typed futures live *in the
//!   servers*, sharded by id; `store` both writes and closes a datum, and
//!   `subscribe` converts the eventual close into a high-priority targeted
//!   task — the mechanism that lets dataflow rules fire with no central
//!   bottleneck.
//! * **Distributed termination detection.** A master server runs a
//!   double-poll epoch protocol (in the spirit of Safra's algorithm) and
//!   broadcasts shutdown when every client is parked, every queue is
//!   empty, and no tasks are in flight between servers.
//!
//! ```
//! use mpisim::World;
//! use adlb::{Layout, AdlbClient, serve, WORK_TYPE_WORK};
//!
//! // 3 ranks: 2 clients + 1 server. Client 0 puts a task, client 1 runs it.
//! let layout = Layout::new(3, 1);
//! let out = World::run(3, |comm| {
//!     let rank = comm.rank();
//!     if layout.is_server(rank) {
//!         serve(comm, layout, adlb::ServerConfig::default());
//!         return String::new();
//!     }
//!     let mut client = AdlbClient::new(comm, layout);
//!     if rank == 0 {
//!         client.put(WORK_TYPE_WORK, 0, None, b"hello task".to_vec());
//!     }
//!     let mut got = String::new();
//!     while let Some(task) = client.get(&[WORK_TYPE_WORK]) {
//!         got = String::from_utf8(task.payload.to_vec()).unwrap();
//!         if rank == 0 { break; }   // rank 0 only submits
//!     }
//!     client.finish();
//!     got
//! });
//! assert!(out.iter().any(|s| s == "hello task"));
//! ```

mod checkpoint;
mod client;
mod datastore;
mod layout;
mod membership;
mod msg;
mod queue;
mod replica;
mod server;
mod tenant;

pub use checkpoint::{
    decode_wal, encode_wal_record, replay_wal_records, verify_checkpoint, CheckpointConfig,
    FsckReport, RespHistory, ShardFsck, DEFAULT_INTERVAL as CHECKPOINT_DEFAULT_INTERVAL,
};
pub use client::{AdlbClient, ClientConfig};
pub use datastore::{DataError, Datum, DatumValue, TYPE_TAG_CONTAINER};
pub use layout::Layout;
pub use membership::{MemberState, Membership};
pub use msg::{Task, WORK_TYPE_CONTROL, WORK_TYPE_NOTIFY, WORK_TYPE_WORK};
pub use replica::{Ledger, ReplOp};
pub use server::{serve, serve_ext, RetryPolicy, ServerConfig, ServerOutcome, ServerStats};
pub use tenant::{merge_tenant_rows, TenantQuota, TenantSched, TenantSpec, TenantStats};
