//! Server-tier membership: heartbeat-based failure detection among the
//! ADLB servers.
//!
//! Every server beacons [`ServerMsg::Heartbeat`] to its peers on a short
//! interval (any message counts as a heartbeat, so busy links never pay
//! extra traffic). A peer silent past `suspect_after` becomes *suspect*;
//! a suspect is confirmed against the transport's liveness oracle
//! ([`mpisim::Comm::is_alive`] — the stand-in for MPI's error handler
//! callbacks) and either rehabilitated or declared *dead*. Death is
//! permanent and drives failover: ledger promotion, client re-routing,
//! and termination-detection reconfiguration.
//!
//! The struct is pure logic (no communicator handle) so the protocol's
//! state machine is unit-testable without a simulated world.
//!
//! [`ServerMsg::Heartbeat`]: crate::msg::ServerMsg::Heartbeat

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use mpisim::Rank;

/// Failure-detector verdict for one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Heard from recently.
    Alive,
    /// Silent past the suspicion window; pending confirmation.
    Suspect,
    /// Confirmed dead (permanent).
    Dead,
}

/// Failure detector over a fixed peer set.
#[derive(Debug)]
pub struct Membership {
    state: HashMap<Rank, MemberState>,
    last_heard: HashMap<Rank, Instant>,
    suspect_after: std::time::Duration,
    dead: HashSet<Rank>,
}

impl Membership {
    /// Track `peers`, all initially alive as of `now`.
    pub fn new(
        peers: impl IntoIterator<Item = Rank>,
        suspect_after: std::time::Duration,
        now: Instant,
    ) -> Self {
        let mut state = HashMap::new();
        let mut last_heard = HashMap::new();
        for p in peers {
            state.insert(p, MemberState::Alive);
            last_heard.insert(p, now);
        }
        Membership {
            state,
            last_heard,
            suspect_after,
            dead: HashSet::new(),
        }
    }

    /// Record traffic from `peer` (any message is a liveness proof).
    ///
    /// A `Suspect` whose traffic resumes returns to `Alive` here, without
    /// consulting the oracle and without any failover side effect: only
    /// an oracle-confirmed death (in [`Membership::tick`] or
    /// [`Membership::mark_dead`]) is permanent. A peer flapping between
    /// silence and bursts of traffic therefore oscillates
    /// Alive ⇄ Suspect but is never declared dead while the transport
    /// still reads it alive.
    pub fn heard(&mut self, peer: Rank, now: Instant) {
        if let Some(s) = self.state.get_mut(&peer) {
            if *s != MemberState::Dead {
                *s = MemberState::Alive;
                self.last_heard.insert(peer, now);
            }
        }
    }

    /// Advance the detector: silent peers become suspect, suspects are
    /// checked against the liveness oracle. Returns peers newly confirmed
    /// dead this tick.
    pub fn tick(&mut self, now: Instant, is_alive: impl Fn(Rank) -> bool) -> Vec<Rank> {
        let mut newly_dead = Vec::new();
        for (&peer, s) in self.state.iter_mut() {
            match *s {
                MemberState::Alive => {
                    if now.duration_since(self.last_heard[&peer]) >= self.suspect_after {
                        *s = MemberState::Suspect;
                    }
                }
                MemberState::Suspect => {
                    if is_alive(peer) {
                        // False alarm (slow peer): rehabilitate.
                        *s = MemberState::Alive;
                        self.last_heard.insert(peer, now);
                    } else {
                        *s = MemberState::Dead;
                        self.dead.insert(peer);
                        newly_dead.push(peer);
                    }
                }
                MemberState::Dead => {}
            }
        }
        newly_dead.sort_unstable();
        newly_dead
    }

    /// Declare `peer` dead out-of-band (a request already implicated it
    /// and the oracle confirmed). Returns `true` if this is news.
    pub fn mark_dead(&mut self, peer: Rank) -> bool {
        match self.state.get_mut(&peer) {
            Some(s) if *s != MemberState::Dead => {
                *s = MemberState::Dead;
                self.dead.insert(peer);
                true
            }
            _ => false,
        }
    }

    /// Current verdict for `peer` (peers not tracked read as alive).
    pub fn state_of(&self, peer: Rank) -> MemberState {
        self.state.get(&peer).copied().unwrap_or(MemberState::Alive)
    }

    /// The confirmed-dead set.
    pub fn dead(&self) -> &HashSet<Rank> {
        &self.dead
    }

    /// Whether `peer` is confirmed dead.
    pub fn is_dead(&self, peer: Rank) -> bool {
        self.dead.contains(&peer)
    }

    /// Peers not confirmed dead, sorted.
    pub fn live_peers(&self) -> Vec<Rank> {
        let mut live: Vec<Rank> = self
            .state
            .keys()
            .copied()
            .filter(|p| !self.dead.contains(p))
            .collect();
        live.sort_unstable();
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const WINDOW: Duration = Duration::from_millis(10);

    #[test]
    fn silence_then_dead_oracle_confirms() {
        let t0 = Instant::now();
        let mut m = Membership::new([8, 9], WINDOW, t0);
        assert!(m.tick(t0, |_| true).is_empty());
        // Both silent past the window: suspect, then oracle says 9 died.
        let t1 = t0 + WINDOW;
        assert!(m.tick(t1, |_| true).is_empty(), "first tick only suspects");
        assert_eq!(m.state_of(8), MemberState::Suspect);
        let newly = m.tick(t1, |r| r != 9);
        assert_eq!(newly, vec![9]);
        assert_eq!(m.state_of(9), MemberState::Dead);
        assert!(m.is_dead(9));
        assert_eq!(m.live_peers(), vec![8]);
        // 8 was rehabilitated by the oracle.
        assert_eq!(m.state_of(8), MemberState::Alive);
        // Death is permanent: later traffic cannot resurrect 9.
        m.heard(9, t1);
        assert_eq!(m.state_of(9), MemberState::Dead);
        // And it is only reported once: 8 goes suspect, then dead, while
        // 9's death is never re-announced.
        assert!(m.tick(t1 + WINDOW, |_| false).is_empty());
        let again = m.tick(t1 + WINDOW, |_| false);
        assert!(again.contains(&8));
        assert!(!again.contains(&9));
    }

    #[test]
    fn traffic_resets_the_window() {
        let t0 = Instant::now();
        let mut m = Membership::new([8], WINDOW, t0);
        for i in 1..10 {
            m.heard(8, t0 + WINDOW / 2 * i);
            assert!(m.tick(t0 + WINDOW / 2 * i, |_| false).is_empty());
        }
        assert_eq!(m.state_of(8), MemberState::Alive);
    }

    #[test]
    fn suspect_whose_heartbeat_resumes_recovers_without_failover() {
        let t0 = Instant::now();
        let mut m = Membership::new([9], WINDOW, t0);
        let t1 = t0 + WINDOW;
        assert!(m.tick(t1, |_| true).is_empty());
        assert_eq!(m.state_of(9), MemberState::Suspect);
        // The late heartbeat lands before the confirming tick: back to
        // Alive purely on traffic — no oracle consult, no death report.
        m.heard(9, t1);
        assert_eq!(m.state_of(9), MemberState::Alive);
        // The recovery also reset the silence window: a tick right after
        // must not re-suspect, even with a pessimistic oracle.
        assert!(m.tick(t1 + WINDOW / 2, |_| false).is_empty());
        assert_eq!(m.state_of(9), MemberState::Alive);
        assert_eq!(m.live_peers(), vec![9]);
    }

    #[test]
    fn flapping_peer_is_never_confirmed_dead_by_a_truthful_oracle() {
        let t0 = Instant::now();
        let mut m = Membership::new([9], WINDOW, t0);
        // Alternate long silences (full suspicion window) with resumed
        // traffic for many cycles; the peer is alive throughout, so no
        // tick may ever upgrade Suspect to Dead.
        let mut now = t0;
        for cycle in 0..50 {
            now += WINDOW;
            assert!(
                m.tick(now, |_| true).is_empty(),
                "cycle {cycle}: flapping peer declared dead"
            );
            assert_ne!(m.state_of(9), MemberState::Dead);
            // Traffic resumes; sometimes only after a second suspect tick.
            if cycle % 3 == 0 {
                assert!(m.tick(now, |_| true).is_empty());
            }
            m.heard(9, now);
            assert_eq!(m.state_of(9), MemberState::Alive);
        }
        assert_eq!(m.live_peers(), vec![9]);
    }

    #[test]
    fn mark_dead_is_idempotent_news() {
        let t0 = Instant::now();
        let mut m = Membership::new([8, 9], WINDOW, t0);
        assert!(m.mark_dead(9));
        assert!(!m.mark_dead(9), "second report is not news");
        assert!(m.is_dead(9));
        // tick never re-reports an out-of-band death.
        assert!(m.tick(t0 + WINDOW * 3, |r| r == 8).is_empty());
    }
}
