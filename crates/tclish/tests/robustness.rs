//! The interpreter must never panic on arbitrary scripts: errors are
//! values (`TclError`), not crashes.

use proptest::prelude::*;
use tclish::Interp;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn eval_never_panics_on_arbitrary_input(src in ".{0,160}") {
        let mut interp = Interp::new();
        let _ = interp.eval(&src);
    }

    #[test]
    fn eval_never_panics_on_tclish_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("set"), Just("x"), Just("$x"), Just("${"), Just("}"),
                Just("{"), Just("["), Just("]"), Just("\""), Just("expr"),
                Just("puts"), Just("1"), Just("+"), Just(";"), Just("\\"),
                Just("foreach"), Just("proc"), Just("if"), Just("\n"),
                Just("{*}"), Just("list"), Just("switch"),
            ],
            0..30,
        )
    ) {
        let src: String = tokens.join(" ");
        let mut interp = Interp::new();
        let _ = interp.eval(&src);
    }

    #[test]
    fn expr_never_panics(src in "[-+*/%()0-9a-z $.\\[\\]{}\"]{0,60}") {
        let mut interp = Interp::new();
        let _ = interp.eval(&format!("expr {{{src}}}"));
        let _ = interp.eval(&format!("expr {src}"));
    }

    #[test]
    fn parse_list_never_panics(src in ".{0,120}") {
        let _ = tclish::parse_list(&src);
    }
}
