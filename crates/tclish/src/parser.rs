//! Tcl script parser: splits a script into commands and each command into
//! words, recording where variable and command substitution must happen.
//!
//! Parsing is separated from evaluation so parsed scripts can be cached:
//! Turbine re-evaluates the same generated fragments for every task, and the
//! cache makes the hot path a walk over pre-tokenized words.

use crate::error::Exception;

/// One piece of a word, after tokenization but before substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Part {
    /// Literal text (no substitution).
    Lit(String),
    /// `$name` / `${name}` variable substitution.
    Var(String),
    /// `[script]` command substitution; holds the raw inner script.
    Script(String),
}

/// One word of a command: a sequence of parts concatenated after
/// substitution. A fully braced word is a single `Lit` part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    pub parts: Vec<Part>,
    /// True when the word came from `{...}`: control-flow commands use this
    /// to recover raw bodies, and it suppresses further substitution.
    pub braced: bool,
}

impl Word {
    /// If the word is a single literal, return it without evaluation.
    #[cfg(test)]
    pub fn as_lit(&self) -> Option<&str> {
        match self.parts.as_slice() {
            [Part::Lit(s)] => Some(s),
            [] => Some(""),
            _ => None,
        }
    }
}

/// A parsed command: one word per argument, `words[0]` is the command name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    pub words: Vec<Word>,
    /// Source text of the command, for error traces.
    pub source: String,
}

/// A fully parsed script.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Script {
    pub commands: Vec<Command>,
}

fn err<T>(msg: impl Into<String>) -> Result<T, Exception> {
    Err(Exception::error(msg))
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }
    fn starts(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

/// Parse a full script into commands.
pub fn parse_script(src: &str) -> Result<Script, Exception> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut commands = Vec::new();
    loop {
        skip_blank(&mut cur);
        if cur.peek().is_none() {
            break;
        }
        if cur.peek() == Some(b'#') {
            skip_comment(&mut cur);
            continue;
        }
        let start = cur.pos;
        let words = parse_command(&mut cur)?;
        let end = cur.pos;
        if !words.is_empty() {
            commands.push(Command {
                words,
                source: src[start..end].trim().to_string(),
            });
        }
    }
    Ok(Script { commands })
}

/// Skip whitespace, command separators, and escaped newlines between
/// commands.
fn skip_blank(cur: &mut Cursor) {
    loop {
        match cur.peek() {
            Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') | Some(b';') => {
                cur.pos += 1;
            }
            Some(b'\\') if cur.src.get(cur.pos + 1) == Some(&b'\n') => {
                cur.pos += 2;
            }
            _ => return,
        }
    }
}

fn skip_comment(cur: &mut Cursor) {
    // A comment runs to end of line; a backslash-newline continues it.
    while let Some(c) = cur.bump() {
        if c == b'\\' && cur.peek() == Some(b'\n') {
            cur.pos += 1;
            continue;
        }
        if c == b'\n' {
            return;
        }
    }
}

/// Parse one command (words up to an unescaped newline or `;`).
fn parse_command(cur: &mut Cursor) -> Result<Vec<Word>, Exception> {
    let mut words = Vec::new();
    loop {
        // Skip intra-command whitespace.
        while matches!(cur.peek(), Some(b' ') | Some(b'\t')) {
            cur.pos += 1;
        }
        // Line continuation joins physical lines.
        if cur.peek() == Some(b'\\') && cur.src.get(cur.pos + 1) == Some(&b'\n') {
            cur.pos += 2;
            continue;
        }
        match cur.peek() {
            None | Some(b'\n') | Some(b';') | Some(b'\r') => {
                if matches!(cur.peek(), Some(b'\n') | Some(b';') | Some(b'\r')) {
                    cur.pos += 1;
                }
                return Ok(words);
            }
            _ => {}
        }
        words.push(parse_word(cur)?);
    }
}

fn parse_word(cur: &mut Cursor) -> Result<Word, Exception> {
    match cur.peek() {
        Some(b'{') if cur.starts("{*}") => {
            // `{*}` argument expansion marker: treat the remainder as a
            // normal word but flag it. The interpreter expands the
            // resulting list into multiple arguments.
            cur.pos += 3;
            let mut w = parse_word(cur)?;
            w.parts.insert(0, Part::Lit("\u{1}EXPAND\u{1}".into()));
            Ok(w)
        }
        Some(b'{') => parse_braced(cur),
        Some(b'"') => parse_quoted(cur),
        _ => parse_bare(cur),
    }
}

fn parse_braced(cur: &mut Cursor) -> Result<Word, Exception> {
    debug_assert_eq!(cur.peek(), Some(b'{'));
    cur.pos += 1;
    let start = cur.pos;
    let mut depth = 1usize;
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                // A backslash protects the following char from brace
                // counting (Tcl rule); content is otherwise literal.
                cur.pos += 1;
            }
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    let inner = &cur.src[start..cur.pos - 1];
                    let text = std::str::from_utf8(inner)
                        .map_err(|_| Exception::error("invalid utf8 in braces"))?;
                    return Ok(Word {
                        parts: vec![Part::Lit(unescape_brace_continuations(text))],
                        braced: true,
                    });
                }
            }
            _ => {}
        }
    }
    err("missing close-brace")
}

/// Inside braces, the only transformation Tcl applies is backslash-newline
/// (plus following whitespace) → single space.
fn unescape_brace_continuations(s: &str) -> String {
    if !s.contains("\\\n") {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
            out.push(' ');
            i += 2;
            while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\t') {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    // Round-trip through char boundaries: the byte-wise loop above is only
    // correct for ASCII; redo with chars when non-ASCII present.
    if s.is_ascii() {
        out
    } else {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            if c == '\\' && chars.peek() == Some(&'\n') {
                chars.next();
                out.push(' ');
                while matches!(chars.peek(), Some(' ') | Some('\t')) {
                    chars.next();
                }
            } else {
                out.push(c);
            }
        }
        out
    }
}

fn parse_quoted(cur: &mut Cursor) -> Result<Word, Exception> {
    debug_assert_eq!(cur.peek(), Some(b'"'));
    cur.pos += 1;
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        match cur.peek() {
            None => return err("missing close-quote"),
            Some(b'"') => {
                cur.pos += 1;
                break;
            }
            Some(b'$') => {
                flush(&mut parts, &mut lit);
                parts.push(parse_var_ref(cur)?);
            }
            Some(b'[') => {
                flush(&mut parts, &mut lit);
                parts.push(parse_bracket(cur)?);
            }
            Some(b'\\') => {
                cur.pos += 1;
                lit.push_str(&backslash_subst(cur));
            }
            Some(_) => {
                lit.push(next_char(cur));
            }
        }
    }
    flush(&mut parts, &mut lit);
    Ok(Word {
        parts,
        braced: false,
    })
}

fn parse_bare(cur: &mut Cursor) -> Result<Word, Exception> {
    let mut parts = Vec::new();
    let mut lit = String::new();
    loop {
        match cur.peek() {
            None | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b';') => break,
            Some(b'$') => {
                flush(&mut parts, &mut lit);
                parts.push(parse_var_ref(cur)?);
            }
            Some(b'[') => {
                flush(&mut parts, &mut lit);
                parts.push(parse_bracket(cur)?);
            }
            Some(b'\\') => {
                if cur.src.get(cur.pos + 1) == Some(&b'\n') {
                    break; // line continuation: word ends here
                }
                cur.pos += 1;
                lit.push_str(&backslash_subst(cur));
            }
            Some(_) => {
                lit.push(next_char(cur));
            }
        }
    }
    flush(&mut parts, &mut lit);
    Ok(Word {
        parts,
        braced: false,
    })
}

fn next_char(cur: &mut Cursor) -> char {
    // Decode one UTF-8 char starting at pos.
    let s = std::str::from_utf8(&cur.src[cur.pos..]).unwrap_or("?");
    let c = s.chars().next().unwrap_or('?');
    cur.pos += c.len_utf8();
    c
}

fn flush(parts: &mut Vec<Part>, lit: &mut String) {
    if !lit.is_empty() {
        parts.push(Part::Lit(std::mem::take(lit)));
    }
}

/// Parse `$name`, `${name}`; a lone `$` is literal.
fn parse_var_ref(cur: &mut Cursor) -> Result<Part, Exception> {
    debug_assert_eq!(cur.peek(), Some(b'$'));
    cur.pos += 1;
    if cur.peek() == Some(b'{') {
        cur.pos += 1;
        let start = cur.pos;
        while let Some(c) = cur.peek() {
            if c == b'}' {
                let name = std::str::from_utf8(&cur.src[start..cur.pos])
                    .map_err(|_| Exception::error("invalid utf8 in variable name"))?;
                cur.pos += 1;
                return Ok(Part::Var(name.to_string()));
            }
            cur.pos += 1;
        }
        return err("missing close-brace for variable name");
    }
    let start = cur.pos;
    while let Some(c) = cur.peek() {
        let ok = c.is_ascii_alphanumeric() || c == b'_' || (c == b':' && cur.starts("::"));
        if !ok {
            break;
        }
        if c == b':' {
            cur.pos += 2;
        } else {
            cur.pos += 1;
        }
    }
    if cur.pos == start {
        return Ok(Part::Lit("$".to_string()));
    }
    let name = std::str::from_utf8(&cur.src[start..cur.pos]).unwrap();
    Ok(Part::Var(name.to_string()))
}

/// Parse `[script]` with nesting.
fn parse_bracket(cur: &mut Cursor) -> Result<Part, Exception> {
    debug_assert_eq!(cur.peek(), Some(b'['));
    cur.pos += 1;
    let start = cur.pos;
    let mut depth = 1usize;
    let mut in_brace = 0usize;
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.pos += 1;
            }
            b'{' => in_brace += 1,
            b'}' if in_brace > 0 => in_brace -= 1,
            b'[' if in_brace == 0 => depth += 1,
            b']' if in_brace == 0 => {
                depth -= 1;
                if depth == 0 {
                    let inner = std::str::from_utf8(&cur.src[start..cur.pos - 1])
                        .map_err(|_| Exception::error("invalid utf8 in brackets"))?;
                    return Ok(Part::Script(inner.to_string()));
                }
            }
            _ => {}
        }
    }
    err("missing close-bracket")
}

/// Standard Tcl backslash substitution; cursor sits after the backslash.
fn backslash_subst(cur: &mut Cursor) -> String {
    let c = match cur.peek() {
        Some(c) => c,
        None => return "\\".to_string(),
    };
    cur.pos += 1;
    match c {
        b'n' => "\n".into(),
        b't' => "\t".into(),
        b'r' => "\r".into(),
        b'a' => "\x07".into(),
        b'b' => "\x08".into(),
        b'f' => "\x0c".into(),
        b'v' => "\x0b".into(),
        b'\n' => {
            while matches!(cur.peek(), Some(b' ') | Some(b'\t')) {
                cur.pos += 1;
            }
            " ".into()
        }
        b'x' => {
            let mut v: u32 = 0;
            let mut any = false;
            while let Some(h) = cur.peek() {
                if let Some(d) = (h as char).to_digit(16) {
                    v = (v << 4 | d) & 0xFF;
                    cur.pos += 1;
                    any = true;
                } else {
                    break;
                }
            }
            if any {
                char::from_u32(v).map(String::from).unwrap_or_default()
            } else {
                "x".into()
            }
        }
        b'u' => {
            let mut v: u32 = 0;
            let mut n = 0;
            while n < 4 {
                match cur.peek().and_then(|h| (h as char).to_digit(16)) {
                    Some(d) => {
                        v = v << 4 | d;
                        cur.pos += 1;
                        n += 1;
                    }
                    None => break,
                }
            }
            if n > 0 {
                char::from_u32(v).map(String::from).unwrap_or_default()
            } else {
                "u".into()
            }
        }
        other => {
            // Everything else (including \\ \" \$ \[ \] \{ \} \;) maps to
            // the character itself.
            cur.pos -= 1;
            let ch = next_char(cur);
            let _ = other;
            ch.to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_of(src: &str) -> Vec<Word> {
        let s = parse_script(src).unwrap();
        assert_eq!(s.commands.len(), 1, "expected 1 command in {src:?}");
        s.commands[0].words.clone()
    }

    #[test]
    fn splits_commands_on_newline_and_semicolon() {
        let s = parse_script("set a 1\nset b 2; set c 3").unwrap();
        assert_eq!(s.commands.len(), 3);
    }

    #[test]
    fn braced_word_is_literal() {
        let w = words_of("set x {a $b [c]}");
        assert_eq!(w[2].as_lit(), Some("a $b [c]"));
        assert!(w[2].braced);
    }

    #[test]
    fn nested_braces_balance() {
        let w = words_of("proc f {x} { if {$x} { g } }");
        assert_eq!(w[3].as_lit(), Some(" if {$x} { g } "));
    }

    #[test]
    fn bare_word_with_var() {
        let w = words_of("puts pre$x/post");
        assert_eq!(
            w[1].parts,
            vec![
                Part::Lit("pre".into()),
                Part::Var("x".into()),
                Part::Lit("/post".into())
            ]
        );
    }

    #[test]
    fn braced_var_name() {
        let w = words_of("puts ${a b}");
        assert_eq!(w[1].parts, vec![Part::Var("a b".into())]);
    }

    #[test]
    fn namespace_var_name() {
        let w = words_of("puts $turbine::rank");
        assert_eq!(w[1].parts, vec![Part::Var("turbine::rank".into())]);
    }

    #[test]
    fn bracket_nesting() {
        let w = words_of("set x [f [g 1] 2]");
        assert_eq!(w[2].parts, vec![Part::Script("f [g 1] 2".into())]);
    }

    #[test]
    fn comments_skipped() {
        let s = parse_script("# a comment\nset a 1\n  # another\nset b 2").unwrap();
        assert_eq!(s.commands.len(), 2);
    }

    #[test]
    fn backslash_escapes_in_quotes() {
        let w = words_of(r#"puts "a\tb\n\$x""#);
        assert_eq!(w[1].parts, vec![Part::Lit("a\tb\n$x".into())]);
    }

    #[test]
    fn line_continuation_joins_words() {
        let s = parse_script("set a \\\n   5").unwrap();
        assert_eq!(s.commands.len(), 1);
        assert_eq!(s.commands[0].words.len(), 3);
    }

    #[test]
    fn unterminated_brace_is_error() {
        assert!(parse_script("set x {oops").is_err());
    }

    #[test]
    fn unterminated_bracket_is_error() {
        assert!(parse_script("set x [oops").is_err());
    }

    #[test]
    fn lone_dollar_is_literal() {
        let w = words_of("puts a$ b");
        assert_eq!(
            w[1].parts,
            vec![Part::Lit("a".into()), Part::Lit("$".into())]
        );
    }

    #[test]
    fn expand_marker_detected() {
        let w = words_of("cmd {*}$list");
        assert_eq!(w[1].parts[0], Part::Lit("\u{1}EXPAND\u{1}".into()));
    }
}
