//! `package` and a minimal `namespace`.
//!
//! Packages are the paper's "static packages" (§IV): instead of thousands
//! of small `pkgIndex.tcl` files hammering the parallel filesystem's
//! metadata servers, packages are registered in-memory with
//! [`crate::Interp::add_package`] and `package require` initializes them
//! in-process. Experiment E6 measures the difference against the simulated
//! filesystem.

use super::{arity, arity_range, ok};
use crate::error::{Exception, TclResult};
use crate::interp::Interp;

pub fn register(i: &mut Interp) {
    i.register("package", cmd_package);
    i.register("namespace", cmd_namespace);
}

fn cmd_package(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 4, "package subcommand ?arg ...?")?;
    match argv[1].as_str() {
        "require" => {
            arity_range(argv, 3, 4, "package require name ?version?")?;
            // The optional version argument is checked loosely: any
            // provided version satisfies, matching how Turbine packages
            // pin major versions only.
            i.require_package(&argv[2])
        }
        "provide" => {
            arity(argv, 4, "package provide name version")?;
            i.provide_package(&argv[2], &argv[3]);
            ok()
        }
        other => Err(Exception::error(format!(
            "unknown or unsupported subcommand \"package {other}\""
        ))),
    }
}

fn cmd_namespace(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 4, "namespace subcommand ?arg ...?")?;
    match argv[1].as_str() {
        // Commands and variables use qualified names directly, so
        // `namespace eval ns script` just evaluates the script; the ns
        // argument documents intent in generated code.
        "eval" => {
            arity(argv, 4, "namespace eval name script")?;
            i.eval_internal(&argv[3])
        }
        "current" => Ok("::".to_string()),
        "exists" => Ok("1".to_string()),
        other => Err(Exception::error(format!(
            "unknown or unsupported subcommand \"namespace {other}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::{Interp, PackageInit};
    use std::rc::Rc;

    #[test]
    fn provide_then_require() {
        let mut i = Interp::new();
        i.eval("package provide local 2.0").unwrap();
        assert_eq!(i.eval("package require local").unwrap(), "2.0");
    }

    #[test]
    fn native_package_init() {
        let mut i = Interp::new();
        i.add_package(
            "natpkg",
            "0.1",
            PackageInit::Native(Rc::new(|interp: &mut Interp| {
                interp.register("natpkg::hello", |_, _| Ok("hi".into()));
            })),
        );
        i.eval("package require natpkg").unwrap();
        assert_eq!(i.eval("natpkg::hello").unwrap(), "hi");
    }

    #[test]
    fn namespace_eval_runs() {
        let mut i = Interp::new();
        i.eval("namespace eval foo { proc foo::f {} { return 9 } }")
            .unwrap();
        assert_eq!(i.eval("foo::f").unwrap(), "9");
    }
}
