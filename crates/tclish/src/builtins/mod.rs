//! Standard command set registration.

mod control;
mod io;
mod lists;
mod package;
mod strings;

use crate::error::{Exception, TclResult};
use crate::interp::Interp;

pub fn register_all(interp: &mut Interp) {
    control::register(interp);
    strings::register(interp);
    lists::register(interp);
    io::register(interp);
    package::register(interp);
}

/// Check exact argument count (argv includes the command name).
pub(crate) fn arity(argv: &[String], n: usize, usage: &str) -> Result<(), Exception> {
    if argv.len() != n {
        return Err(Exception::error(format!(
            "wrong # args: should be \"{usage}\""
        )));
    }
    Ok(())
}

/// Check an argument count range (inclusive); `max = usize::MAX` for open.
pub(crate) fn arity_range(
    argv: &[String],
    min: usize,
    max: usize,
    usage: &str,
) -> Result<(), Exception> {
    if argv.len() < min || argv.len() > max {
        return Err(Exception::error(format!(
            "wrong # args: should be \"{usage}\""
        )));
    }
    Ok(())
}

/// Parse an integer argument with a Tcl-style error.
pub(crate) fn int_arg(s: &str) -> Result<i64, Exception> {
    s.trim()
        .parse::<i64>()
        .map_err(|_| Exception::error(format!("expected integer but got \"{s}\"")))
}

/// Parse a Tcl index (`N`, `end`, `end-N`) against a length.
pub(crate) fn index_arg(s: &str, len: usize) -> Result<i64, Exception> {
    let s = s.trim();
    if s == "end" {
        return Ok(len as i64 - 1);
    }
    if let Some(rest) = s.strip_prefix("end-") {
        let off = int_arg(rest)?;
        return Ok(len as i64 - 1 - off);
    }
    if let Some(rest) = s.strip_prefix("end+") {
        let off = int_arg(rest)?;
        return Ok(len as i64 - 1 + off);
    }
    int_arg(s)
}

/// The empty-string success result.
pub(crate) fn ok() -> TclResult {
    Ok(String::new())
}
