//! String commands: `string`, `append`, `format`, `split`, `join`.
//!
//! Swift/T's automatic type conversion between Swift values and Tcl is
//! "oriented toward string representations" (§III.A); these commands are
//! the workhorses of that conversion and of user Tcl fragments.

use super::{arity, arity_range, index_arg, int_arg, ok};
use crate::error::{Exception, TclResult};
use crate::interp::Interp;
use crate::list::{format_list, parse_list};

pub fn register(i: &mut Interp) {
    i.register("string", cmd_string);
    i.register("append", cmd_append);
    i.register("format", cmd_format);
    i.register("split", cmd_split);
    i.register("join", cmd_join);
}

fn chars(s: &str) -> Vec<char> {
    s.chars().collect()
}

fn cmd_string(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(Exception::error(
            "wrong # args: should be \"string subcommand arg ?arg ...?\"",
        ));
    }
    let sub = argv[1].as_str();
    match sub {
        "length" => {
            arity(argv, 3, "string length string")?;
            Ok(argv[2].chars().count().to_string())
        }
        "index" => {
            arity(argv, 4, "string index string charIndex")?;
            let cs = chars(&argv[2]);
            let idx = index_arg(&argv[3], cs.len())?;
            if idx < 0 || idx as usize >= cs.len() {
                Ok(String::new())
            } else {
                Ok(cs[idx as usize].to_string())
            }
        }
        "range" => {
            arity(argv, 5, "string range string first last")?;
            let cs = chars(&argv[2]);
            let a = index_arg(&argv[3], cs.len())?.max(0) as usize;
            let b = index_arg(&argv[4], cs.len())?;
            if b < 0 || a as i64 > b {
                return Ok(String::new());
            }
            let b = (b as usize).min(cs.len().saturating_sub(1));
            Ok(cs[a..=b].iter().collect())
        }
        "tolower" => {
            arity(argv, 3, "string tolower string")?;
            Ok(argv[2].to_lowercase())
        }
        "toupper" => {
            arity(argv, 3, "string toupper string")?;
            Ok(argv[2].to_uppercase())
        }
        "totitle" => {
            arity(argv, 3, "string totitle string")?;
            let mut cs = argv[2].chars();
            Ok(match cs.next() {
                Some(f) => f.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
                None => String::new(),
            })
        }
        "trim" | "trimleft" | "trimright" => {
            arity_range(argv, 3, 4, "string trim string ?chars?")?;
            let set: Vec<char> = argv
                .get(3)
                .map(|s| s.chars().collect())
                .unwrap_or_else(|| vec![' ', '\t', '\n', '\r']);
            let pred = |c: char| set.contains(&c);
            Ok(match sub {
                "trim" => argv[2].trim_matches(pred).to_string(),
                "trimleft" => argv[2].trim_start_matches(pred).to_string(),
                _ => argv[2].trim_end_matches(pred).to_string(),
            })
        }
        "repeat" => {
            arity(argv, 4, "string repeat string count")?;
            let n = int_arg(&argv[3])?.max(0) as usize;
            Ok(argv[2].repeat(n))
        }
        "equal" => {
            arity(argv, 4, "string equal string1 string2")?;
            Ok(((argv[2] == argv[3]) as i64).to_string())
        }
        "compare" => {
            arity(argv, 4, "string compare string1 string2")?;
            Ok(match argv[2].cmp(&argv[3]) {
                std::cmp::Ordering::Less => "-1",
                std::cmp::Ordering::Equal => "0",
                std::cmp::Ordering::Greater => "1",
            }
            .to_string())
        }
        "first" => {
            arity_range(argv, 4, 5, "string first needle haystack ?startIndex?")?;
            let hay = chars(&argv[3]);
            let start = if let Some(s) = argv.get(4) {
                index_arg(s, hay.len())?.max(0) as usize
            } else {
                0
            };
            let hay_str: String = hay.get(start..).unwrap_or(&[]).iter().collect();
            Ok(match hay_str.find(argv[2].as_str()) {
                Some(byte_idx) => {
                    let char_idx = hay_str[..byte_idx].chars().count();
                    (start + char_idx) as i64
                }
                None => -1,
            }
            .to_string())
        }
        "last" => {
            arity(argv, 4, "string last needle haystack")?;
            Ok(match argv[3].rfind(argv[2].as_str()) {
                Some(byte_idx) => argv[3][..byte_idx].chars().count() as i64,
                None => -1,
            }
            .to_string())
        }
        "match" => {
            arity(argv, 4, "string match pattern string")?;
            Ok((glob_match(&argv[2], &argv[3]) as i64).to_string())
        }
        "map" => {
            arity(argv, 4, "string map mapping string")?;
            let mapping = parse_list(&argv[2]).map_err(Exception::from)?;
            if mapping.len() % 2 != 0 {
                return Err(Exception::error("string map mapping must have even length"));
            }
            let mut out = String::new();
            let src = argv[3].as_str();
            let mut pos = 0;
            'outer: while pos < src.len() {
                for pair in mapping.chunks(2) {
                    let (k, v) = (&pair[0], &pair[1]);
                    if !k.is_empty() && src[pos..].starts_with(k.as_str()) {
                        out.push_str(v);
                        pos += k.len();
                        continue 'outer;
                    }
                }
                let c = src[pos..].chars().next().unwrap();
                out.push(c);
                pos += c.len_utf8();
            }
            Ok(out)
        }
        "replace" => {
            arity_range(argv, 5, 6, "string replace string first last ?newstring?")?;
            let cs = chars(&argv[2]);
            let a = index_arg(&argv[3], cs.len())?.max(0) as usize;
            let b = index_arg(&argv[4], cs.len())?;
            if b < 0 || a as i64 > b || a >= cs.len() {
                return Ok(argv[2].clone());
            }
            let b = (b as usize).min(cs.len() - 1);
            let mut out: String = cs[..a].iter().collect();
            if let Some(new) = argv.get(5) {
                out.push_str(new);
            }
            out.extend(&cs[b + 1..]);
            Ok(out)
        }
        "is" => {
            arity_range(argv, 4, 5, "string is class ?-strict? string")?;
            let (class, value) = if argv[3] == "-strict" {
                (&argv[2], argv.get(4).map(String::as_str).unwrap_or(""))
            } else {
                (&argv[2], argv[3].as_str())
            };
            let res = match class.as_str() {
                "integer" => value.parse::<i64>().is_ok(),
                "double" => value.parse::<f64>().is_ok(),
                "digit" => !value.is_empty() && value.chars().all(|c| c.is_ascii_digit()),
                "alpha" => !value.is_empty() && value.chars().all(|c| c.is_alphabetic()),
                "alnum" => !value.is_empty() && value.chars().all(|c| c.is_alphanumeric()),
                "space" => !value.is_empty() && value.chars().all(|c| c.is_whitespace()),
                "boolean" => matches!(
                    value.to_ascii_lowercase().as_str(),
                    "0" | "1" | "true" | "false" | "yes" | "no" | "on" | "off"
                ),
                other => {
                    return Err(Exception::error(format!(
                        "unknown string class \"{other}\""
                    )))
                }
            };
            Ok((res as i64).to_string())
        }
        other => Err(Exception::error(format!(
            "unknown or unsupported subcommand \"string {other}\""
        ))),
    }
}

/// Tcl glob matching: `*`, `?`, `[a-z]` sets, backslash escapes.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('*') => {
                for skip in 0..=t.len() {
                    if inner(&p[1..], &t[skip..]) {
                        return true;
                    }
                }
                false
            }
            Some('?') => !t.is_empty() && inner(&p[1..], &t[1..]),
            Some('[') => {
                let close = match p.iter().position(|&c| c == ']') {
                    Some(idx) if idx > 0 => idx,
                    _ => return !t.is_empty() && t[0] == '[' && inner(&p[1..], &t[1..]),
                };
                let set = &p[1..close];
                let Some(&c) = t.first() else { return false };
                let mut matched = false;
                let mut k = 0;
                while k < set.len() {
                    if k + 2 < set.len() && set[k + 1] == '-' {
                        if set[k] <= c && c <= set[k + 2] {
                            matched = true;
                        }
                        k += 3;
                    } else {
                        if set[k] == c {
                            matched = true;
                        }
                        k += 1;
                    }
                }
                matched && inner(&p[close + 1..], &t[1..])
            }
            Some('\\') if p.len() > 1 => !t.is_empty() && t[0] == p[1] && inner(&p[2..], &t[1..]),
            Some(&c) => !t.is_empty() && t[0] == c && inner(&p[1..], &t[1..]),
        }
    }
    inner(&chars(pattern), &chars(text))
}

fn cmd_append(i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"append varName ?value ...?\"",
        ));
    }
    let mut cur = if i.var_exists(&argv[1]) {
        i.get_var(&argv[1])?
    } else {
        String::new()
    };
    for v in &argv[2..] {
        cur.push_str(v);
    }
    i.set_var(&argv[1], cur.clone());
    Ok(cur)
}

/// `format` with the printf subset STC-generated code and user fragments
/// use: %d %i %s %f %e %g %x %X %o %c %% with flags `-`/`0`, width, and
/// precision.
fn cmd_format(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"format formatString ?arg ...?\"",
        ));
    }
    format_impl(&argv[1], &argv[2..])
}

pub(crate) fn format_impl(fmt: &str, args: &[String]) -> TclResult {
    let mut out = String::new();
    let mut ai = 0usize;
    let cs: Vec<char> = fmt.chars().collect();
    let mut i = 0usize;
    while i < cs.len() {
        if cs[i] != '%' {
            out.push(cs[i]);
            i += 1;
            continue;
        }
        i += 1;
        if i >= cs.len() {
            return Err(Exception::error("format string ended in %"));
        }
        if cs[i] == '%' {
            out.push('%');
            i += 1;
            continue;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        let mut plus = false;
        while i < cs.len() {
            match cs[i] {
                '-' => left = true,
                '0' => zero = true,
                '+' => plus = true,
                ' ' => {}
                _ => break,
            }
            i += 1;
        }
        // Width.
        let mut width = 0usize;
        while i < cs.len() && cs[i].is_ascii_digit() {
            width = width * 10 + cs[i].to_digit(10).unwrap() as usize;
            i += 1;
        }
        // Precision.
        let mut precision: Option<usize> = None;
        if i < cs.len() && cs[i] == '.' {
            i += 1;
            let mut p = 0usize;
            while i < cs.len() && cs[i].is_ascii_digit() {
                p = p * 10 + cs[i].to_digit(10).unwrap() as usize;
                i += 1;
            }
            precision = Some(p);
        }
        // Length modifiers: accepted and ignored.
        while i < cs.len() && matches!(cs[i], 'l' | 'h' | 'q' | 'L') {
            i += 1;
        }
        if i >= cs.len() {
            return Err(Exception::error("format string ended mid-specifier"));
        }
        let conv = cs[i];
        i += 1;
        let next_arg = |ai: &mut usize| -> Result<String, Exception> {
            let a = args
                .get(*ai)
                .cloned()
                .ok_or_else(|| Exception::error("not enough arguments for format string"))?;
            *ai += 1;
            Ok(a)
        };
        let body = match conv {
            'd' | 'i' => {
                let v = int_arg(&next_arg(&mut ai)?)?;
                let s = if plus && v >= 0 {
                    format!("+{v}")
                } else {
                    v.to_string()
                };
                pad_num(s, width, zero, left)
            }
            'u' => {
                let v = int_arg(&next_arg(&mut ai)?)?;
                pad_num((v as u64).to_string(), width, zero, left)
            }
            'x' => pad_num(
                format!("{:x}", int_arg(&next_arg(&mut ai)?)?),
                width,
                zero,
                left,
            ),
            'X' => pad_num(
                format!("{:X}", int_arg(&next_arg(&mut ai)?)?),
                width,
                zero,
                left,
            ),
            'o' => pad_num(
                format!("{:o}", int_arg(&next_arg(&mut ai)?)?),
                width,
                zero,
                left,
            ),
            'c' => {
                let v = int_arg(&next_arg(&mut ai)?)?;
                char::from_u32(v as u32)
                    .map(|c| c.to_string())
                    .unwrap_or_default()
            }
            'f' => {
                let v = dbl_arg(&next_arg(&mut ai)?)?;
                let p = precision.unwrap_or(6);
                pad_num(format!("{v:.p$}"), width, zero, left)
            }
            'e' => {
                let v = dbl_arg(&next_arg(&mut ai)?)?;
                let p = precision.unwrap_or(6);
                pad_num(format!("{v:.p$e}"), width, zero, left)
            }
            'g' => {
                let v = dbl_arg(&next_arg(&mut ai)?)?;
                pad_num(format_g(v, precision.unwrap_or(6)), width, zero, left)
            }
            's' => {
                let mut s = next_arg(&mut ai)?;
                if let Some(p) = precision {
                    s = s.chars().take(p).collect();
                }
                pad_str(s, width, left)
            }
            other => return Err(Exception::error(format!("bad field specifier \"{other}\""))),
        };
        out.push_str(&body);
    }
    Ok(out)
}

fn dbl_arg(s: &str) -> Result<f64, Exception> {
    s.trim()
        .parse::<f64>()
        .map_err(|_| Exception::error(format!("expected floating-point number but got \"{s}\"")))
}

fn format_g(v: f64, precision: usize) -> String {
    // %g: shortest of %e / %f at given significant digits.
    let p = precision.max(1);
    if v == 0.0 {
        return "0".to_string();
    }
    let exp = v.abs().log10().floor() as i32;
    if exp < -4 || exp >= p as i32 {
        let s = format!("{:.*e}", p - 1, v);
        trim_g_zeros(&s)
    } else {
        let decimals = (p as i32 - 1 - exp).max(0) as usize;
        let s = format!("{v:.decimals$}");
        trim_g_zeros(&s)
    }
}

fn trim_g_zeros(s: &str) -> String {
    if let Some(e_pos) = s.find(['e', 'E']) {
        let (mant, exp) = s.split_at(e_pos);
        let mant = if mant.contains('.') {
            mant.trim_end_matches('0').trim_end_matches('.')
        } else {
            mant
        };
        format!("{mant}{exp}")
    } else if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s.to_string()
    }
}

fn pad_num(s: String, width: usize, zero: bool, left: bool) -> String {
    if s.len() >= width {
        return s;
    }
    let pad = width - s.len();
    if left {
        s + &" ".repeat(pad)
    } else if zero {
        // Sign stays in front of the zeros.
        if let Some(rest) = s.strip_prefix('-') {
            format!("-{}{}", "0".repeat(pad), rest)
        } else {
            "0".repeat(pad) + &s
        }
    } else {
        " ".repeat(pad) + &s
    }
}

fn pad_str(s: String, width: usize, left: bool) -> String {
    let len = s.chars().count();
    if len >= width {
        return s;
    }
    let pad = width - len;
    if left {
        s + &" ".repeat(pad)
    } else {
        " ".repeat(pad) + &s
    }
}

fn cmd_split(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "split string ?splitChars?")?;
    let seps: Vec<char> = argv
        .get(2)
        .map(|s| s.chars().collect())
        .unwrap_or_else(|| vec![' ', '\t', '\n', '\r']);
    if seps.is_empty() {
        let parts: Vec<String> = argv[1].chars().map(|c| c.to_string()).collect();
        return Ok(format_list(&parts));
    }
    let parts: Vec<String> = argv[1]
        .split(|c: char| seps.contains(&c))
        .map(str::to_string)
        .collect();
    Ok(format_list(&parts))
}

fn cmd_join(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "join list ?joinString?")?;
    let sep = argv.get(2).map(String::as_str).unwrap_or(" ");
    let els = parse_list(&argv[1]).map_err(Exception::from)?;
    let _ = ok();
    Ok(els.join(sep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;

    fn ev(s: &str) -> String {
        Interp::new().eval(s).unwrap()
    }

    #[test]
    fn length_index_range() {
        assert_eq!(ev("string length héllo"), "5");
        assert_eq!(ev("string index abcdef 2"), "c");
        assert_eq!(ev("string index abcdef end"), "f");
        assert_eq!(ev("string range abcdef 1 3"), "bcd");
        assert_eq!(ev("string range abcdef 3 end"), "def");
        assert_eq!(ev("string range abcdef 4 2"), "");
    }

    #[test]
    fn case_ops() {
        assert_eq!(ev("string toupper aBc"), "ABC");
        assert_eq!(ev("string tolower aBc"), "abc");
        assert_eq!(ev("string totitle hELLO"), "Hello");
    }

    #[test]
    fn trims() {
        assert_eq!(ev("string trim {  hi  }"), "hi");
        assert_eq!(ev("string trimleft xxabxx x"), "abxx");
        assert_eq!(ev("string trimright xxabxx x"), "xxab");
    }

    #[test]
    fn first_last_repeat() {
        assert_eq!(ev("string first lo hello"), "3");
        assert_eq!(ev("string first zz hello"), "-1");
        assert_eq!(ev("string last l hello"), "3");
        assert_eq!(ev("string repeat ab 3"), "ababab");
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*.dat", "file.dat"));
        assert!(glob_match("f?le", "file"));
        assert!(!glob_match("f?le", "fle"));
        assert!(glob_match("[a-c]x", "bx"));
        assert!(!glob_match("[a-c]x", "dx"));
        assert!(glob_match("*", ""));
        assert_eq!(ev("string match {f*.txt} foo.txt"), "1");
    }

    #[test]
    fn string_map() {
        assert_eq!(ev("string map {ab X c Y} abcab"), "XYX");
    }

    #[test]
    fn string_replace() {
        assert_eq!(ev("string replace abcde 1 3 XY"), "aXYe");
        assert_eq!(ev("string replace abcde 1 3"), "ae");
    }

    #[test]
    fn string_is() {
        assert_eq!(ev("string is integer 42"), "1");
        assert_eq!(ev("string is integer 4.2"), "0");
        assert_eq!(ev("string is double 4.2"), "1");
        assert_eq!(ev("string is alpha abc"), "1");
        assert_eq!(ev("string is alpha ab1"), "0");
    }

    #[test]
    fn append_builds_strings() {
        assert_eq!(ev("append s a b c; set s"), "abc");
        assert_eq!(ev("set s x; append s y; set s"), "xy");
    }

    #[test]
    fn format_integers() {
        assert_eq!(ev("format %d 42"), "42");
        assert_eq!(ev("format %5d 42"), "   42");
        assert_eq!(ev("format %-5d| 42"), "42   |");
        assert_eq!(ev("format %05d 42"), "00042");
        assert_eq!(ev("format %05d -42"), "-0042");
        assert_eq!(ev("format %x 255"), "ff");
        assert_eq!(ev("format %+d 7"), "+7");
    }

    #[test]
    fn format_floats_and_strings() {
        assert_eq!(ev("format %.2f 3.14159"), "3.14");
        assert_eq!(ev("format %8.2f 3.14159"), "    3.14");
        assert_eq!(
            ev("format %s|%10s|%-10s| a b c"),
            "a|         b|c         |"
        );
        assert_eq!(ev("format %.3s abcdef"), "abc");
        assert_eq!(ev("format %g 0.0001"), "0.0001");
        assert_eq!(ev("format %g 100000000"), "1e8");
        assert_eq!(ev("format %c 65"), "A");
        assert_eq!(ev("format 100%%"), "100%");
    }

    #[test]
    fn format_errors() {
        assert!(Interp::new().eval("format %d").is_err());
        assert!(Interp::new().eval("format %d notanint").is_err());
    }

    #[test]
    fn split_and_join() {
        assert_eq!(ev("split a,b,c ,"), "a b c");
        assert_eq!(ev("split {a b  c}"), "a b {} c");
        assert_eq!(ev("join {a b c} -"), "a-b-c");
        assert_eq!(ev("split abc {}"), "a b c");
    }
}
