//! Core and control-flow commands: `set`, `proc`, `if`, `while`, `for`,
//! `foreach`, `expr`, `catch`, `error`, and friends.
//!
//! Control-flow commands receive their bodies as plain strings because the
//! parser leaves braced words unsubstituted; they then evaluate those bodies
//! with full exception semantics, exactly like Tcl's own C-coded commands.

use super::{arity, arity_range, int_arg, ok};
use crate::error::{Exception, TclResult};
use crate::interp::{Interp, ProcDef};
use crate::list::{format_list, parse_list};

pub fn register(i: &mut Interp) {
    i.register("set", cmd_set);
    i.register("unset", cmd_unset);
    i.register("incr", cmd_incr);
    i.register("expr", cmd_expr);
    i.register("eval", cmd_eval);
    i.register("if", cmd_if);
    i.register("while", cmd_while);
    i.register("for", cmd_for);
    i.register("foreach", cmd_foreach);
    i.register("break", |_, argv| {
        arity(argv, 1, "break")?;
        Err(Exception::Break)
    });
    i.register("continue", |_, argv| {
        arity(argv, 1, "continue")?;
        Err(Exception::Continue)
    });
    i.register("proc", cmd_proc);
    i.register("return", cmd_return);
    i.register("error", cmd_error);
    i.register("catch", cmd_catch);
    i.register("global", cmd_global);
    i.register("variable", cmd_variable);
    i.register("uplevel", cmd_uplevel);
    i.register("info", cmd_info);
    i.register("subst", cmd_subst);
    i.register("time", cmd_time);
    i.register("rename", cmd_rename);
    i.register("switch", cmd_switch);
    i.register("unknown_noop", |_, _| ok());
}

fn cmd_set(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "set varName ?newValue?")?;
    if argv.len() == 3 {
        i.set_var(&argv[1], argv[2].clone());
        Ok(argv[2].clone())
    } else {
        i.get_var(&argv[1])
    }
}

fn cmd_unset(i: &mut Interp, argv: &[String]) -> TclResult {
    let mut idx = 1;
    let mut nocomplain = false;
    if argv.get(1).map(String::as_str) == Some("-nocomplain") {
        nocomplain = true;
        idx = 2;
    }
    for name in &argv[idx..] {
        let existed = i.unset_var(name);
        if !existed && !nocomplain {
            return Err(Exception::error(format!(
                "can't unset \"{name}\": no such variable"
            )));
        }
    }
    ok()
}

fn cmd_incr(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "incr varName ?increment?")?;
    let delta = if argv.len() == 3 {
        int_arg(&argv[2])?
    } else {
        1
    };
    let cur = if i.var_exists(&argv[1]) {
        int_arg(&i.get_var(&argv[1])?)?
    } else {
        0
    };
    let next = cur
        .checked_add(delta)
        .ok_or_else(|| Exception::error("integer overflow in incr"))?;
    i.set_var(&argv[1], next.to_string());
    Ok(next.to_string())
}

fn cmd_expr(i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"expr arg ?arg ...?\"",
        ));
    }
    let src = argv[1..].join(" ");
    i.expr(&src)
}

fn cmd_eval(i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"eval arg ?arg ...?\"",
        ));
    }
    let src = argv[1..].join(" ");
    i.eval_internal(&src)
}

fn cmd_if(i: &mut Interp, argv: &[String]) -> TclResult {
    // if cond ?then? body ?elseif cond ?then? body?... ?else? body
    let mut idx = 1;
    loop {
        if idx >= argv.len() {
            return Err(Exception::error("wrong # args: no expression after \"if\""));
        }
        let cond = &argv[idx];
        idx += 1;
        if argv.get(idx).map(String::as_str) == Some("then") {
            idx += 1;
        }
        let body = argv
            .get(idx)
            .ok_or_else(|| Exception::error("wrong # args: no script after condition"))?;
        idx += 1;
        if i.expr_bool(cond)? {
            return i.eval_internal(body);
        }
        match argv.get(idx).map(String::as_str) {
            Some("elseif") => {
                idx += 1;
                continue;
            }
            Some("else") => {
                let body = argv
                    .get(idx + 1)
                    .ok_or_else(|| Exception::error("wrong # args: no script after \"else\""))?;
                return i.eval_internal(body);
            }
            // Bare trailing body acts as else (Tcl allows omitting "else").
            Some(b) if idx + 1 == argv.len() => return i.eval_internal(b),
            None => return ok(),
            Some(other) => {
                return Err(Exception::error(format!(
                    "invalid \"if\" clause \"{other}\""
                )))
            }
        }
    }
}

fn cmd_while(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 3, "while test command")?;
    while i.expr_bool(&argv[1])? {
        match i.eval_internal(&argv[2]) {
            Ok(_) => {}
            Err(Exception::Break) => break,
            Err(Exception::Continue) => continue,
            Err(e) => return Err(e),
        }
    }
    ok()
}

fn cmd_for(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 5, "for start test next command")?;
    i.eval_internal(&argv[1])?;
    while i.expr_bool(&argv[2])? {
        match i.eval_internal(&argv[4]) {
            Ok(_) => {}
            Err(Exception::Break) => break,
            Err(Exception::Continue) => {}
            Err(e) => return Err(e),
        }
        i.eval_internal(&argv[3])?;
    }
    ok()
}

fn cmd_foreach(i: &mut Interp, argv: &[String]) -> TclResult {
    // foreach varList list ?varList list ...? body
    if argv.len() < 4 || !argv.len().is_multiple_of(2) {
        return Err(Exception::error(
            "wrong # args: should be \"foreach varList list ?varList list ...? command\"",
        ));
    }
    let body = &argv[argv.len() - 1];
    let pairs = &argv[1..argv.len() - 1];
    let mut groups: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for chunk in pairs.chunks(2) {
        let vars = parse_list(&chunk[0]).map_err(Exception::from)?;
        if vars.is_empty() {
            return Err(Exception::error("foreach varlist is empty"));
        }
        let vals = parse_list(&chunk[1]).map_err(Exception::from)?;
        groups.push((vars, vals));
    }
    // Number of iterations: max over groups of ceil(len/vars).
    let iters = groups
        .iter()
        .map(|(vars, vals)| vals.len().div_ceil(vars.len()))
        .max()
        .unwrap_or(0);
    for it in 0..iters {
        for (vars, vals) in &groups {
            for (vi, var) in vars.iter().enumerate() {
                let idx = it * vars.len() + vi;
                let val = vals.get(idx).cloned().unwrap_or_default();
                i.set_var(var, val);
            }
        }
        match i.eval_internal(body) {
            Ok(_) => {}
            Err(Exception::Break) => break,
            Err(Exception::Continue) => continue,
            Err(e) => return Err(e),
        }
    }
    ok()
}

fn cmd_proc(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 4, "proc name args body")?;
    let params_list = parse_list(&argv[2]).map_err(Exception::from)?;
    let mut params = Vec::new();
    let mut varargs = false;
    for (pi, p) in params_list.iter().enumerate() {
        if p == "args" && pi == params_list.len() - 1 {
            varargs = true;
            break;
        }
        let spec = parse_list(p).map_err(Exception::from)?;
        match spec.as_slice() {
            [name] => params.push((name.clone(), None)),
            [name, default] => params.push((name.clone(), Some(default.clone()))),
            _ => {
                return Err(Exception::error(format!(
                    "too many fields in argument specifier \"{p}\""
                )))
            }
        }
    }
    i.define_proc(
        &argv[1],
        ProcDef {
            params,
            varargs,
            body: std::rc::Rc::from(argv[3].as_str()),
        },
    );
    ok()
}

fn cmd_return(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 1, 2, "return ?value?")?;
    Err(Exception::Return(argv.get(1).cloned().unwrap_or_default()))
}

fn cmd_error(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "error message ?info?")?;
    Err(Exception::error(argv[1].clone()))
}

fn cmd_catch(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "catch script ?resultVarName?")?;
    let (code, value) = match i.eval_internal(&argv[1]) {
        Ok(v) => (0i64, v),
        Err(e) => (e.code(), e.result_value()),
    };
    if let Some(var) = argv.get(2) {
        i.set_var(var, value);
    }
    Ok(code.to_string())
}

fn cmd_global(i: &mut Interp, argv: &[String]) -> TclResult {
    for name in &argv[1..] {
        i.link_global(name);
    }
    ok()
}

fn cmd_variable(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "variable name ?value?")?;
    i.link_global(&argv[1]);
    if let Some(v) = argv.get(2) {
        i.set_var(&argv[1], v.clone());
    }
    ok()
}

fn cmd_uplevel(i: &mut Interp, argv: &[String]) -> TclResult {
    // Supported forms: `uplevel script`, `uplevel 1 script`, `uplevel #0 script`.
    // Full frame manipulation isn't modeled; #0 evaluates against globals by
    // prefixing nothing (variables resolve in current frame), so we only
    // honour the common generated-code pattern of evaluating a script.
    let script = match argv.len() {
        2 => argv[1].clone(),
        _ => argv[2..].join(" "),
    };
    i.eval_internal(&script)
}

fn cmd_info(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "info subcommand ?arg?")?;
    match argv[1].as_str() {
        "exists" => {
            arity(argv, 3, "info exists varName")?;
            Ok((i.var_exists(&argv[2]) as i64).to_string())
        }
        "procs" => Ok(format_list(&i.proc_names())),
        "commands" => {
            // Procs plus natives; used by tests and introspection only.
            Ok(format_list(&i.proc_names()))
        }
        "level" => Ok(i.level().to_string()),
        other => Err(Exception::error(format!(
            "unknown or unsupported subcommand \"info {other}\""
        ))),
    }
}

fn cmd_subst(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 2, "subst string")?;
    i.subst(&argv[1])
}

fn cmd_time(i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 2, 3, "time script ?count?")?;
    let count = if argv.len() == 3 {
        int_arg(&argv[2])?.max(1) as u64
    } else {
        1
    };
    let start = std::time::Instant::now();
    for _ in 0..count {
        i.eval_internal(&argv[1])?;
    }
    let per = start.elapsed().as_micros() as f64 / count as f64;
    Ok(format!("{per:.1} microseconds per iteration"))
}

fn cmd_switch(i: &mut Interp, argv: &[String]) -> TclResult {
    // switch ?-exact|-glob? ?--? string {pattern body ...}
    // or     switch ?opts? string pattern body ?pattern body ...?
    let mut idx = 1;
    let mut glob = false;
    while let Some(opt) = argv.get(idx) {
        match opt.as_str() {
            "-exact" => idx += 1,
            "-glob" => {
                glob = true;
                idx += 1;
            }
            "--" => {
                idx += 1;
                break;
            }
            _ => break,
        }
    }
    let value = argv
        .get(idx)
        .ok_or_else(|| Exception::error("wrong # args: switch needs a string"))?
        .clone();
    idx += 1;
    // Collect pattern/body pairs from either form.
    let pairs: Vec<String> = if argv.len() == idx + 1 {
        parse_list(&argv[idx]).map_err(Exception::from)?
    } else {
        argv[idx..].to_vec()
    };
    if pairs.is_empty() || !pairs.len().is_multiple_of(2) {
        return Err(Exception::error(
            "extra switch pattern with no body (or empty switch)",
        ));
    }
    let mut i_pair = 0;
    while i_pair < pairs.len() {
        let pattern = &pairs[i_pair];
        let matched = pattern == "default"
            || if glob {
                super::strings::glob_match(pattern, &value)
            } else {
                pattern == &value
            };
        if matched {
            // `-` body falls through to the next body.
            let mut k = i_pair + 1;
            while pairs[k] == "-" {
                k += 2;
                if k >= pairs.len() {
                    return Err(Exception::error("no body specified for fall-through"));
                }
            }
            return i.eval_internal(&pairs[k]);
        }
        i_pair += 2;
    }
    ok()
}

fn cmd_rename(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 3, "rename oldName newName")?;
    if argv[2].is_empty() {
        if !i.unregister(&argv[1]) {
            return Err(Exception::error(format!(
                "can't rename \"{}\": command doesn't exist",
                argv[1]
            )));
        }
        return ok();
    }
    Err(Exception::error(
        "rename to a new name is not supported; only deletion (rename cmd {})",
    ))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn ev(s: &str) -> String {
        Interp::new().eval(s).unwrap()
    }

    #[test]
    fn if_elseif_else_chain() {
        let script = |x: i64| {
            format!("set x {x}; if {{$x < 0}} {{ set r neg }} elseif {{$x == 0}} {{ set r zero }} else {{ set r pos }}; set r")
        };
        assert_eq!(ev(&script(-5)), "neg");
        assert_eq!(ev(&script(0)), "zero");
        assert_eq!(ev(&script(3)), "pos");
    }

    #[test]
    fn if_without_else_returns_empty() {
        assert_eq!(ev("if {0} { set x 1 }"), "");
    }

    #[test]
    fn for_loop() {
        assert_eq!(
            ev("set s 0; for {set i 1} {$i <= 5} {incr i} { incr s $i }; set s"),
            "15"
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            ev("set s 0; for {set i 0} {$i < 10} {incr i} { if {$i == 3} continue; if {$i == 6} break; incr s $i }; set s"),
            "12" // 0+1+2+4+5
        );
    }

    #[test]
    fn foreach_parallel_lists() {
        assert_eq!(
            ev("set out {}; foreach a {1 2} b {10 20} { lappend out [expr {$a+$b}] }; set out"),
            "11 22"
        );
    }

    #[test]
    fn foreach_short_list_pads_empty() {
        assert_eq!(
            ev("set out {}; foreach {a b} {1 2 3} { lappend out $a-$b }; set out"),
            "1-2 3-"
        );
    }

    #[test]
    fn catch_return_code() {
        assert_eq!(ev("catch {set x 5}"), "0");
        assert_eq!(ev("catch {error oops}"), "1");
        assert_eq!(ev("catch {break}"), "3");
    }

    #[test]
    fn incr_defaults() {
        assert_eq!(ev("incr fresh"), "1");
        assert_eq!(ev("set x 5; incr x 10"), "15");
    }

    #[test]
    fn unset_and_info_exists() {
        assert_eq!(ev("set x 1; unset x; info exists x"), "0");
        assert_eq!(ev("unset -nocomplain nothere; info exists nothere"), "0");
        assert!(Interp::new().eval("unset nothere").is_err());
    }

    #[test]
    fn subst_substitutes() {
        assert_eq!(ev("set n 3; subst {n is $n}"), "n is 3");
    }

    #[test]
    fn variable_links_global() {
        assert_eq!(
            ev("proc f {} { variable counter 10; incr counter }; f; set counter"),
            "11"
        );
    }

    #[test]
    fn eval_concatenates() {
        assert_eq!(ev("eval set y 7; set y"), "7");
    }

    #[test]
    fn rename_deletes() {
        let mut i = Interp::new();
        i.eval("proc gone {} { return 1 }").unwrap();
        i.eval("rename gone {}").unwrap();
        assert!(i.eval("gone").is_err());
    }
}

#[cfg(test)]
mod switch_tests {
    use crate::interp::Interp;

    fn ev(s: &str) -> String {
        Interp::new().eval(s).unwrap()
    }

    #[test]
    fn switch_braced_pairs() {
        assert_eq!(
            ev("switch b { a {set r 1} b {set r 2} default {set r 9} }"),
            "2"
        );
        assert_eq!(ev("switch z { a {set r 1} default {set r 9} }"), "9");
    }

    #[test]
    fn switch_inline_pairs() {
        assert_eq!(ev("switch x a {set r 1} x {set r 7}"), "7");
    }

    #[test]
    fn switch_glob_mode() {
        assert_eq!(
            ev("switch -glob foo.txt {*.dat {set r d} *.txt {set r t}}"),
            "t"
        );
    }

    #[test]
    fn switch_fall_through() {
        assert_eq!(ev("switch a { a - b {set r ab} c {set r c} }"), "ab");
        assert_eq!(ev("switch b { a - b {set r ab} c {set r c} }"), "ab");
    }

    #[test]
    fn switch_no_match_returns_empty() {
        assert_eq!(ev("switch q { a {set r 1} }"), "");
    }
}
