//! I/O-ish commands: `puts`, `clock`, `exec`, and a minimal `file`.
//!
//! `exec` is the "rich shell interface" of the paper (§I, §IV): any
//! external program may be called through the shell-based technique. On a
//! real Blue Gene/Q this path is unavailable — which is exactly why the
//! embedded-interpreter work exists — and experiment E2 quantifies its cost
//! against the simulated parallel filesystem instead of the host one.

use super::{arity, arity_range, ok};
use crate::error::{Exception, TclResult};
use crate::interp::Interp;

pub fn register(i: &mut Interp) {
    i.register("puts", cmd_puts);
    i.register("clock", cmd_clock);
    i.register("exec", cmd_exec);
    i.register("file", cmd_file);
    i.register("flush", |_, _| ok());
}

fn cmd_puts(i: &mut Interp, argv: &[String]) -> TclResult {
    let mut idx = 1;
    let mut newline = true;
    if argv.get(idx).map(String::as_str) == Some("-nonewline") {
        newline = false;
        idx += 1;
    }
    // Optional channel argument; both standard channels go to the sink.
    if argv.len() > idx + 1 && matches!(argv[idx].as_str(), "stdout" | "stderr") {
        idx += 1;
    }
    let text = argv.get(idx).ok_or_else(|| {
        Exception::error("wrong # args: should be \"puts ?-nonewline? ?channelId? string\"")
    })?;
    if argv.len() > idx + 1 {
        return Err(Exception::error(
            "wrong # args: should be \"puts ?-nonewline? ?channelId? string\"",
        ));
    }
    i.write_output(text);
    if newline {
        i.write_output("\n");
    }
    ok()
}

fn cmd_clock(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 2, "clock subcommand")?;
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    match argv[1].as_str() {
        "seconds" => Ok(now.as_secs().to_string()),
        "milliseconds" => Ok(now.as_millis().to_string()),
        "microseconds" | "clicks" => Ok(now.as_micros().to_string()),
        other => Err(Exception::error(format!(
            "unknown clock subcommand \"{other}\""
        ))),
    }
}

fn cmd_exec(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"exec arg ?arg ...?\"",
        ));
    }
    let output = std::process::Command::new(&argv[1])
        .args(&argv[2..])
        .output()
        .map_err(|e| Exception::error(format!("couldn't execute \"{}\": {e}", argv[1])))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Err(Exception::error(format!(
            "child process exited abnormally: {}",
            if stderr.is_empty() { &stdout } else { &stderr }
        )));
    }
    Ok(stdout.trim_end_matches('\n').to_string())
}

fn cmd_file(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity_range(argv, 3, usize::MAX, "file subcommand name ?arg ...?")?;
    match argv[1].as_str() {
        "exists" => Ok((std::path::Path::new(&argv[2]).exists() as i64).to_string()),
        "join" => {
            let mut p = std::path::PathBuf::new();
            for part in &argv[2..] {
                p.push(part);
            }
            Ok(p.to_string_lossy().into_owned())
        }
        "tail" => Ok(std::path::Path::new(&argv[2])
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default()),
        "dirname" => Ok(std::path::Path::new(&argv[2])
            .parent()
            .map(|s| s.to_string_lossy().into_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| ".".to_string())),
        "extension" => Ok(std::path::Path::new(&argv[2])
            .extension()
            .map(|s| format!(".{}", s.to_string_lossy()))
            .unwrap_or_default()),
        "rootname" => {
            let p = &argv[2];
            Ok(match p.rfind('.') {
                Some(idx) if !p[idx..].contains('/') => p[..idx].to_string(),
                _ => p.clone(),
            })
        }
        other => Err(Exception::error(format!(
            "unknown or unsupported subcommand \"file {other}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    #[test]
    fn puts_variants() {
        let mut i = Interp::new();
        let buf = i.capture_output();
        i.eval("puts a; puts -nonewline b; puts stderr c").unwrap();
        assert_eq!(&*buf.borrow(), "a\nbc\n");
    }

    #[test]
    fn clock_monotonicity() {
        let mut i = Interp::new();
        let a: u128 = i.eval("clock microseconds").unwrap().parse().unwrap();
        let b: u128 = i.eval("clock microseconds").unwrap().parse().unwrap();
        assert!(b >= a);
    }

    #[test]
    fn exec_echo() {
        let mut i = Interp::new();
        assert_eq!(i.eval("exec echo hello").unwrap(), "hello");
    }

    #[test]
    fn exec_missing_binary_errors() {
        let mut i = Interp::new();
        assert!(i.eval("exec definitely_not_a_real_binary_xyz").is_err());
    }

    #[test]
    fn file_path_ops() {
        let mut i = Interp::new();
        assert_eq!(i.eval("file join a b c").unwrap(), "a/b/c");
        assert_eq!(i.eval("file tail /x/y/z.dat").unwrap(), "z.dat");
        assert_eq!(i.eval("file dirname /x/y/z.dat").unwrap(), "/x/y");
        assert_eq!(i.eval("file extension z.dat").unwrap(), ".dat");
        assert_eq!(i.eval("file rootname z.dat").unwrap(), "z");
        assert_eq!(i.eval("file exists /").unwrap(), "1");
    }
}
