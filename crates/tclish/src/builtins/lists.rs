//! List commands. Turbine containers, rule input lists, and argument
//! vectors are all Tcl lists, so these are on the hot path of generated
//! code.

use super::{arity, arity_range, index_arg, int_arg, ok};
use crate::error::{Exception, TclResult};
use crate::interp::Interp;
use crate::list::{format_list, parse_list, quote_element};

pub fn register(i: &mut Interp) {
    i.register("list", cmd_list);
    i.register("llength", cmd_llength);
    i.register("lindex", cmd_lindex);
    i.register("lrange", cmd_lrange);
    i.register("lappend", cmd_lappend);
    i.register("linsert", cmd_linsert);
    i.register("lreverse", cmd_lreverse);
    i.register("lsort", cmd_lsort);
    i.register("lsearch", cmd_lsearch);
    i.register("concat", cmd_concat);
    i.register("lrepeat", cmd_lrepeat);
    i.register("lassign", cmd_lassign);
    i.register("lmap", cmd_lmap);
}

fn cmd_list(_i: &mut Interp, argv: &[String]) -> TclResult {
    Ok(format_list(&argv[1..]))
}

fn cmd_llength(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 2, "llength list")?;
    Ok(parse_list(&argv[1])
        .map_err(Exception::from)?
        .len()
        .to_string())
}

fn cmd_lindex(_i: &mut Interp, argv: &[String]) -> TclResult {
    // lindex list ?index ...? — multiple indices walk nested lists.
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"lindex list ?index ...?\"",
        ));
    }
    let mut cur = argv[1].clone();
    for idx_str in &argv[2..] {
        let els = parse_list(&cur).map_err(Exception::from)?;
        let idx = index_arg(idx_str, els.len())?;
        cur = if idx < 0 || idx as usize >= els.len() {
            String::new()
        } else {
            els[idx as usize].clone()
        };
    }
    Ok(cur)
}

fn cmd_lrange(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 4, "lrange list first last")?;
    let els = parse_list(&argv[1]).map_err(Exception::from)?;
    let a = index_arg(&argv[2], els.len())?.max(0) as usize;
    let b = index_arg(&argv[3], els.len())?;
    if b < 0 || a as i64 > b || a >= els.len() {
        return Ok(String::new());
    }
    let b = (b as usize).min(els.len() - 1);
    Ok(format_list(&els[a..=b]))
}

fn cmd_lappend(i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"lappend varName ?value ...?\"",
        ));
    }
    let mut cur = if i.var_exists(&argv[1]) {
        i.get_var(&argv[1])?
    } else {
        String::new()
    };
    for v in &argv[2..] {
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(&quote_element(v));
    }
    i.set_var(&argv[1], cur.clone());
    Ok(cur)
}

fn cmd_linsert(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(Exception::error(
            "wrong # args: should be \"linsert list index ?element ...?\"",
        ));
    }
    let mut els = parse_list(&argv[1]).map_err(Exception::from)?;
    let idx = index_arg(&argv[2], els.len())?.clamp(0, els.len() as i64) as usize;
    for (off, v) in argv[3..].iter().enumerate() {
        els.insert(idx + off, v.clone());
    }
    Ok(format_list(&els))
}

fn cmd_lreverse(_i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 2, "lreverse list")?;
    let mut els = parse_list(&argv[1]).map_err(Exception::from)?;
    els.reverse();
    Ok(format_list(&els))
}

fn cmd_lsort(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 2 {
        return Err(Exception::error(
            "wrong # args: should be \"lsort ?options? list\"",
        ));
    }
    let mut integer = false;
    let mut real = false;
    let mut decreasing = false;
    let mut unique = false;
    for opt in &argv[1..argv.len() - 1] {
        match opt.as_str() {
            "-integer" => integer = true,
            "-real" => real = true,
            "-decreasing" => decreasing = true,
            "-increasing" => decreasing = false,
            "-unique" => unique = true,
            "-ascii" => {}
            other => {
                return Err(Exception::error(format!(
                    "unknown lsort option \"{other}\""
                )))
            }
        }
    }
    let mut els = parse_list(&argv[argv.len() - 1]).map_err(Exception::from)?;
    if integer {
        let mut keyed: Vec<(i64, String)> = Vec::with_capacity(els.len());
        for e in &els {
            keyed.push((int_arg(e)?, e.clone()));
        }
        keyed.sort_by_key(|(k, _)| *k);
        els = keyed.into_iter().map(|(_, e)| e).collect();
    } else if real {
        let mut keyed: Vec<(f64, String)> = Vec::with_capacity(els.len());
        for e in &els {
            let k = e
                .trim()
                .parse::<f64>()
                .map_err(|_| Exception::error(format!("expected number but got \"{e}\"")))?;
            keyed.push((k, e.clone()));
        }
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        els = keyed.into_iter().map(|(_, e)| e).collect();
    } else {
        els.sort();
    }
    if decreasing {
        els.reverse();
    }
    if unique {
        els.dedup();
    }
    Ok(format_list(&els))
}

fn cmd_lsearch(_i: &mut Interp, argv: &[String]) -> TclResult {
    // lsearch ?-exact|-glob? list pattern (default -glob, like Tcl).
    arity_range(argv, 3, 4, "lsearch ?mode? list pattern")?;
    let (mode, list, pattern) = if argv.len() == 4 {
        (argv[1].as_str(), &argv[2], &argv[3])
    } else {
        ("-glob", &argv[1], &argv[2])
    };
    let els = parse_list(list).map_err(Exception::from)?;
    let found = els.iter().position(|e| match mode {
        "-exact" => e == pattern,
        "-glob" => super::strings::glob_match(pattern, e),
        _ => false,
    });
    if argv.len() == 4 && !matches!(mode, "-exact" | "-glob") {
        return Err(Exception::error(format!("unknown lsearch mode \"{mode}\"")));
    }
    Ok(found.map(|p| p as i64).unwrap_or(-1).to_string())
}

fn cmd_concat(_i: &mut Interp, argv: &[String]) -> TclResult {
    // concat joins trimmed args with single spaces (list-aware enough for
    // generated code).
    let parts: Vec<&str> = argv[1..]
        .iter()
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .collect();
    Ok(parts.join(" "))
}

fn cmd_lrepeat(_i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(Exception::error(
            "wrong # args: should be \"lrepeat count ?value ...?\"",
        ));
    }
    let n = int_arg(&argv[1])?;
    if n < 0 {
        return Err(Exception::error("bad count: must be >= 0"));
    }
    let mut els: Vec<&String> = Vec::with_capacity(n as usize * (argv.len() - 2));
    for _ in 0..n {
        els.extend(&argv[2..]);
    }
    Ok(format_list(&els))
}

fn cmd_lassign(i: &mut Interp, argv: &[String]) -> TclResult {
    if argv.len() < 3 {
        return Err(Exception::error(
            "wrong # args: should be \"lassign list varName ?varName ...?\"",
        ));
    }
    let els = parse_list(&argv[1]).map_err(Exception::from)?;
    for (k, var) in argv[2..].iter().enumerate() {
        i.set_var(var, els.get(k).cloned().unwrap_or_default());
    }
    let rest = if els.len() > argv.len() - 2 {
        format_list(&els[argv.len() - 2..])
    } else {
        String::new()
    };
    Ok(rest)
}

fn cmd_lmap(i: &mut Interp, argv: &[String]) -> TclResult {
    arity(argv, 4, "lmap varName list body")?;
    let els = parse_list(&argv[2]).map_err(Exception::from)?;
    let mut out = Vec::with_capacity(els.len());
    for e in els {
        i.set_var(&argv[1], e);
        match i.eval_internal(&argv[3]) {
            Ok(v) => out.push(v),
            Err(Exception::Break) => break,
            Err(Exception::Continue) => continue,
            Err(e) => return Err(e),
        }
    }
    let _ = ok();
    Ok(format_list(&out))
}

#[cfg(test)]
mod tests {
    use crate::interp::Interp;

    fn ev(s: &str) -> String {
        Interp::new().eval(s).unwrap()
    }

    #[test]
    fn list_quotes_elements() {
        assert_eq!(ev("list a {b c} d"), "a {b c} d");
        assert_eq!(ev("llength [list a {b c} d]"), "3");
    }

    #[test]
    fn lindex_nested() {
        assert_eq!(ev("lindex {{a b} {c d}} 1 0"), "c");
        assert_eq!(ev("lindex {a b c} end"), "c");
        assert_eq!(ev("lindex {a b c} 99"), "");
    }

    #[test]
    fn lrange_clamps() {
        assert_eq!(ev("lrange {a b c d e} 1 3"), "b c d");
        assert_eq!(ev("lrange {a b c} 1 end"), "b c");
        assert_eq!(ev("lrange {a b c} 2 0"), "");
    }

    #[test]
    fn lappend_preserves_structure() {
        assert_eq!(ev("lappend l a {b c}; llength $l"), "2");
    }

    #[test]
    fn linsert_positions() {
        assert_eq!(ev("linsert {a c} 1 b"), "a b c");
        assert_eq!(ev("linsert {a b} end z"), "a z b");
        assert_eq!(ev("linsert {a b} 99 z"), "a b z");
    }

    #[test]
    fn lreverse_and_lrepeat() {
        assert_eq!(ev("lreverse {1 2 3}"), "3 2 1");
        assert_eq!(ev("lrepeat 3 x"), "x x x");
        assert_eq!(ev("lrepeat 2 a b"), "a b a b");
    }

    #[test]
    fn lsort_modes() {
        assert_eq!(ev("lsort {b a c}"), "a b c");
        assert_eq!(ev("lsort -integer {10 9 2}"), "2 9 10");
        assert_eq!(ev("lsort {10 9 2}"), "10 2 9"); // ascii
        assert_eq!(ev("lsort -real {1.5 0.5 1.0}"), "0.5 1.0 1.5");
        assert_eq!(ev("lsort -decreasing {a c b}"), "c b a");
        assert_eq!(ev("lsort -unique {a b a}"), "a b");
    }

    #[test]
    fn lsearch_modes() {
        assert_eq!(ev("lsearch {a b c} b"), "1");
        assert_eq!(ev("lsearch {a b c} z"), "-1");
        assert_eq!(ev("lsearch -exact {a* b} a*"), "0");
        assert_eq!(ev("lsearch {foo bar} b*"), "1");
    }

    #[test]
    fn lassign_returns_rest() {
        assert_eq!(ev("lassign {1 2 3 4} a b; list $a $b"), "1 2");
        assert_eq!(ev("lassign {1 2 3 4} a b"), "3 4");
        assert_eq!(ev("lassign {1} a b; set b"), "");
    }

    #[test]
    fn lmap_transforms() {
        assert_eq!(ev("lmap x {1 2 3} { expr {$x * $x} }"), "1 4 9");
    }

    #[test]
    fn concat_flattens() {
        assert_eq!(ev("concat {a b} {c d}"), "a b c d");
        assert_eq!(ev("concat a {} b"), "a b");
    }
}
