//! Error and non-local control flow types.
//!
//! Tcl models `return`, `break`, and `continue` as exceptional return codes
//! alongside genuine errors; `catch` observes the numeric code. We mirror
//! that with the [`Exception`] enum so `Result<String, Exception>` threads
//! through the evaluator.

/// A genuine Tcl error (`error` command, undefined variable, bad arity...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TclError {
    /// Human-readable error message, as `catch` would capture it.
    pub message: String,
    /// Rough evaluation trace: innermost command first.
    pub trace: Vec<String>,
}

impl TclError {
    /// Build an error with an empty trace.
    pub fn new(message: impl Into<String>) -> Self {
        TclError {
            message: message.into(),
            trace: Vec::new(),
        }
    }
}

impl std::fmt::Display for TclError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if !self.trace.is_empty() {
            write!(f, "\n    while executing")?;
            for t in &self.trace {
                write!(f, "\n    \"{t}\"")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for TclError {}

/// Non-local control flow raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exception {
    /// A real error (Tcl return code 1).
    Error(TclError),
    /// `return value` (Tcl return code 2).
    Return(String),
    /// `break` (Tcl return code 3).
    Break,
    /// `continue` (Tcl return code 4).
    Continue,
}

impl Exception {
    /// Construct an error exception.
    pub fn error(message: impl Into<String>) -> Self {
        Exception::Error(TclError::new(message))
    }

    /// The numeric Tcl return code (`catch` result).
    pub fn code(&self) -> i64 {
        match self {
            Exception::Error(_) => 1,
            Exception::Return(_) => 2,
            Exception::Break => 3,
            Exception::Continue => 4,
        }
    }

    /// The value `catch` stores into its message variable.
    pub fn result_value(&self) -> String {
        match self {
            Exception::Error(e) => e.message.clone(),
            Exception::Return(v) => v.clone(),
            Exception::Break | Exception::Continue => String::new(),
        }
    }
}

impl From<TclError> for Exception {
    fn from(e: TclError) -> Self {
        Exception::Error(e)
    }
}

/// The evaluator result type: a string value or an exception.
pub type TclResult = Result<String, Exception>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_tcl() {
        assert_eq!(Exception::error("x").code(), 1);
        assert_eq!(Exception::Return("v".into()).code(), 2);
        assert_eq!(Exception::Break.code(), 3);
        assert_eq!(Exception::Continue.code(), 4);
    }

    #[test]
    fn display_includes_trace() {
        let mut e = TclError::new("bad thing");
        e.trace.push("cmd a".into());
        let s = format!("{e}");
        assert!(s.contains("bad thing"));
        assert!(s.contains("cmd a"));
    }
}
