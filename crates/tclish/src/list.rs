//! Tcl list parsing and formatting.
//!
//! Tcl lists are strings with quoting conventions; Turbine leans on them
//! heavily (rule input lists, container contents, argument vectors), and the
//! automatic Swift↔Tcl type conversion of §III.A produces and consumes
//! them. `format_list(parse_list(s))` preserves element boundaries for any
//! well-formed list, and `parse_list(format_list(v)) == v` for arbitrary
//! element strings — the property test in this module checks the latter.

use crate::error::TclError;

/// Split a Tcl list string into its elements.
pub fn parse_list(src: &str) -> Result<Vec<String>, TclError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        // Skip inter-element whitespace. Separators are ASCII whitespace
        // only, so multi-byte characters inside bare elements are safe.
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= b.len() {
            break;
        }
        match b[i] {
            b'{' => {
                let mut depth = 1usize;
                i += 1;
                let start = i;
                while i < b.len() && depth > 0 {
                    match b[i] {
                        b'\\' => i += 1,
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(TclError::new("unmatched open brace in list"));
                }
                out.push(src[start..i - 1].to_string());
                if i < b.len() && !b[i].is_ascii_whitespace() {
                    return Err(TclError::new(
                        "list element in braces followed by non-whitespace",
                    ));
                }
            }
            b'"' => {
                i += 1;
                let mut el = String::new();
                let mut closed = false;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            if b[i + 1].is_ascii() {
                                el.push(unescape_one(b[i + 1]));
                                i += 2;
                            } else {
                                // Backslash before a multibyte char: keep
                                // the char, consume it whole.
                                let c = next_char_at(src, i + 1);
                                el.push(c);
                                i += 1 + c.len_utf8();
                            }
                        }
                        b'"' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        _ => {
                            let c = next_char_at(src, i);
                            el.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                if !closed {
                    return Err(TclError::new("unmatched quote in list"));
                }
                out.push(el);
            }
            _ => {
                let mut el = String::new();
                while i < b.len() && !b[i].is_ascii_whitespace() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        if b[i + 1].is_ascii() {
                            el.push(unescape_one(b[i + 1]));
                            i += 2;
                        } else {
                            let c = next_char_at(src, i + 1);
                            el.push(c);
                            i += 1 + c.len_utf8();
                        }
                    } else {
                        let c = next_char_at(src, i);
                        el.push(c);
                        i += c.len_utf8();
                    }
                }
                out.push(el);
            }
        }
    }
    Ok(out)
}

fn next_char_at(s: &str, i: usize) -> char {
    s[i..].chars().next().unwrap()
}

fn unescape_one(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        other => other as char,
    }
}

/// Join elements into a canonical Tcl list string.
pub fn format_list<S: AsRef<str>>(elements: &[S]) -> String {
    let mut out = String::new();
    for (i, el) in elements.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&quote_element(el.as_ref()));
    }
    out
}

/// Quote a single element so `parse_list` recovers it exactly.
pub fn quote_element(el: &str) -> String {
    if el.is_empty() {
        return "{}".to_string();
    }
    let needs_quoting = el.chars().any(|c| {
        c.is_ascii_whitespace() || matches!(c, '{' | '}' | '[' | ']' | '$' | '"' | '\\' | ';')
    }) || el.starts_with('#');
    if !needs_quoting {
        return el.to_string();
    }
    // Prefer brace quoting when braces balance and no backslash issues.
    if braces_balanced(el) && !el.ends_with('\\') && !el.contains('\\') {
        return format!("{{{el}}}");
    }
    // Fall back to backslash escaping.
    let mut out = String::with_capacity(el.len() + 8);
    for c in el.chars() {
        match c {
            ' ' | '\t' | '{' | '}' | '[' | ']' | '$' | '"' | '\\' | ';' | '#' => {
                out.push('\\');
                out.push(c);
            }
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn braces_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    for c in s.chars() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_split() {
        assert_eq!(parse_list("a b c").unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn braced_elements_preserve_spaces() {
        assert_eq!(
            parse_list("{a b} c {d {e f}}").unwrap(),
            vec!["a b", "c", "d {e f}"]
        );
    }

    #[test]
    fn quoted_elements() {
        assert_eq!(parse_list("\"a b\" c").unwrap(), vec!["a b", "c"]);
    }

    #[test]
    fn empty_list() {
        assert_eq!(parse_list("").unwrap(), Vec::<String>::new());
        assert_eq!(parse_list("   ").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn empty_element_round_trips() {
        let l = format_list(&["", "x", ""]);
        assert_eq!(parse_list(&l).unwrap(), vec!["", "x", ""]);
    }

    #[test]
    fn special_chars_round_trip() {
        let cases = ["a b", "{", "}", "$v", "[x]", "a\\b", "a\nb", "#c", "a;b"];
        for c in cases {
            let l = format_list(&[c]);
            assert_eq!(parse_list(&l).unwrap(), vec![c], "case {c:?} as {l:?}");
        }
    }

    #[test]
    fn unbalanced_brace_is_error() {
        assert!(parse_list("{a").is_err());
    }

    proptest! {
        #[test]
        fn format_then_parse_round_trips(els in proptest::collection::vec(".*", 0..8)) {
            let formatted = format_list(&els);
            let parsed = parse_list(&formatted).unwrap();
            prop_assert_eq!(parsed, els);
        }

        #[test]
        fn ascii_specials_round_trip(els in proptest::collection::vec("[ -~]{0,12}", 0..6)) {
            let formatted = format_list(&els);
            let parsed = parse_list(&formatted).unwrap();
            prop_assert_eq!(parsed, els);
        }
    }
}
