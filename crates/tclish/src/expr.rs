//! The `expr` sublanguage: Tcl's infix expression evaluator.
//!
//! STC-generated Turbine code uses `expr` for every arithmetic and
//! relational Swift operation, and user Tcl fragments (§III.A) lean on it
//! for "certain arithmetical or string expressions easier to perform in Tcl
//! than in Swift". The evaluator parses to a small AST first so `&&`, `||`,
//! and `?:` can short-circuit, then evaluates with Tcl's numeric rules:
//! integers stay integers, any double operand promotes, `eq`/`ne` always
//! compare strings, and relational operators compare numerically when both
//! operands parse as numbers.

use crate::error::{Exception, TclResult};

/// Host services `expr` needs from the enclosing interpreter: variable
/// lookup, nested command evaluation, and the `rand()` stream.
pub trait ExprHost {
    /// Resolve `$name`.
    fn get_var(&mut self, name: &str) -> TclResult;
    /// Evaluate a `[script]` substitution.
    fn eval_script(&mut self, script: &str) -> TclResult;
    /// Next value of the `rand()` function in `[0,1)`.
    fn next_rand(&mut self) -> f64;
}

/// A Tcl expression value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    Int(i64),
    Dbl(f64),
    Str(String),
}

impl Val {
    /// Render with Tcl's conventions (doubles always show a fractional
    /// part or exponent).
    pub fn to_tcl_string(&self) -> String {
        match self {
            Val::Int(i) => i.to_string(),
            Val::Dbl(d) => format_double(*d),
            Val::Str(s) => s.clone(),
        }
    }

    fn truthy(&self) -> Result<bool, Exception> {
        match self.coerce_num() {
            Some(Val::Int(i)) => Ok(i != 0),
            Some(Val::Dbl(d)) => Ok(d != 0.0),
            _ => match self {
                Val::Str(s) => match s.to_ascii_lowercase().as_str() {
                    "true" | "yes" | "on" => Ok(true),
                    "false" | "no" | "off" => Ok(false),
                    _ => Err(Exception::error(format!(
                        "expected boolean value but got \"{s}\""
                    ))),
                },
                _ => unreachable!(),
            },
        }
    }

    /// Try to view this value as a number (Tcl's "everything is a string"
    /// means string operands may still be numeric).
    fn coerce_num(&self) -> Option<Val> {
        match self {
            Val::Int(_) | Val::Dbl(_) => Some(self.clone()),
            Val::Str(s) => parse_number(s.trim()),
        }
    }
}

/// Format a double the way Tcl prints it: always distinguishable from an
/// integer.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        return "NaN".to_string();
    }
    if d.is_infinite() {
        return if d > 0.0 { "Inf" } else { "-Inf" }.to_string();
    }
    let s = format!("{d}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Parse a Tcl numeric literal: decimal/hex/octal-free integers, floats.
pub fn parse_number(s: &str) -> Option<Val> {
    if s.is_empty() {
        return None;
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .ok()
            .map(|v| Val::Int(if neg { -v } else { v }));
    }
    if body.chars().all(|c| c.is_ascii_digit()) && !body.is_empty() {
        return body
            .parse::<i64>()
            .ok()
            .map(|v| Val::Int(if neg { -v } else { v }));
    }
    // Floats, including 1., .5, 1e3, inf/nan excluded deliberately.
    if body
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        && body.chars().any(|c| c.is_ascii_digit())
    {
        return body
            .parse::<f64>()
            .ok()
            .map(|v| Val::Dbl(if neg { -v } else { v }));
    }
    None
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Ast {
    Lit(Val),
    Var(String),
    Cmd(String),
    Unary(UnOp, Box<Ast>),
    Binary(BinOp, Box<Ast>, Box<Ast>),
    Ternary(Box<Ast>, Box<Ast>, Box<Ast>),
    Call(String, Vec<Ast>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnOp {
    Neg,
    Pos,
    Not,
    BitNot,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Pow,
    Mul,
    Div,
    Rem,
    Add,
    Sub,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqNum,
    NeNum,
    EqStr,
    NeStr,
    BitAnd,
    BitXor,
    BitOr,
    And,
    Or,
}

fn prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Pow => 12,
        Mul | Div | Rem => 11,
        Add | Sub => 10,
        Shl | Shr => 9,
        Lt | Gt | Le | Ge => 8,
        EqNum | NeNum => 7,
        EqStr | NeStr => 6,
        BitAnd => 5,
        BitXor => 4,
        BitOr => 3,
        And => 2,
        Or => 1,
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Val(Val),
    Var(String),
    Cmd(String),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
    Comma,
    Question,
    Colon,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, Exception> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut toks = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'?' => {
                toks.push(Tok::Question);
                i += 1;
            }
            b':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            b'$' => {
                i += 1;
                let start = i;
                if i < b.len() && b[i] == b'{' {
                    i += 1;
                    let s = i;
                    while i < b.len() && b[i] != b'}' {
                        i += 1;
                    }
                    if i >= b.len() {
                        return Err(Exception::error("missing close-brace in expr variable"));
                    }
                    toks.push(Tok::Var(String::from_utf8_lossy(&b[s..i]).to_string()));
                    i += 1;
                } else {
                    while i < b.len()
                        && (b[i].is_ascii_alphanumeric()
                            || b[i] == b'_'
                            || (b[i] == b':' && i + 1 < b.len() && b[i + 1] == b':'))
                    {
                        if b[i] == b':' {
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    if i == start {
                        return Err(Exception::error("lone $ in expression"));
                    }
                    toks.push(Tok::Var(String::from_utf8_lossy(&b[start..i]).to_string()));
                }
            }
            b'[' => {
                let mut depth = 1;
                i += 1;
                let start = i;
                while i < b.len() && depth > 0 {
                    match b[i] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        b'\\' => i += 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(Exception::error("missing close-bracket in expression"));
                }
                toks.push(Tok::Cmd(
                    String::from_utf8_lossy(&b[start..i - 1]).to_string(),
                ));
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(Exception::error("missing close-quote in expression"));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < b.len() => {
                            s.push(match b[i + 1] {
                                b'n' => '\n',
                                b't' => '\t',
                                other => other as char,
                            });
                            i += 2;
                        }
                        _ => {
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                toks.push(Tok::Val(Val::Str(s)));
            }
            b'{' => {
                // Braced string literal inside expr (rare, but Tcl allows).
                let mut depth = 1;
                i += 1;
                let start = i;
                while i < b.len() && depth > 0 {
                    match b[i] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(Exception::error("missing close-brace in expression"));
                }
                toks.push(Tok::Val(Val::Str(
                    String::from_utf8_lossy(&b[start..i - 1]).to_string(),
                )));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut seen_e = false;
                while i < b.len() {
                    let d = b[i];
                    let ok = d.is_ascii_digit()
                        || d == b'.'
                        || d == b'x'
                        || d == b'X'
                        || (d | 0x20 == b'e' && !is_hex_literal(&b[start..i]))
                        || d.is_ascii_hexdigit() && is_hex_literal(&b[start..i])
                        || ((d == b'+' || d == b'-') && seen_e && matches!(b[i - 1] | 0x20, b'e'));
                    if !ok {
                        break;
                    }
                    if d | 0x20 == b'e' && !is_hex_literal(&b[start..i]) {
                        seen_e = true;
                    }
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).unwrap();
                let v = parse_number(text)
                    .ok_or_else(|| Exception::error(format!("bad number \"{text}\"")))?;
                toks.push(Tok::Val(v));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&b[start..i]).unwrap().to_string();
                match word.as_str() {
                    "eq" => toks.push(Tok::Op("eq")),
                    "ne" => toks.push(Tok::Op("ne")),
                    "true" | "yes" | "on" => toks.push(Tok::Val(Val::Int(1))),
                    "false" | "no" | "off" => toks.push(Tok::Val(Val::Int(0))),
                    _ => toks.push(Tok::Ident(word)),
                }
            }
            _ => {
                // Multi-char operators first.
                let two = &src[i..(i + 2).min(src.len())];
                let op2 = ["**", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]
                    .iter()
                    .find(|o| **o == two);
                if let Some(o) = op2 {
                    toks.push(Tok::Op(o));
                    i += 2;
                } else {
                    let one = &src[i..i + 1];
                    let op1 = ["+", "-", "*", "/", "%", "<", ">", "!", "~", "&", "|", "^"]
                        .iter()
                        .find(|o| **o == one);
                    match op1 {
                        Some(o) => {
                            toks.push(Tok::Op(o));
                            i += 1;
                        }
                        None => {
                            return Err(Exception::error(format!(
                                "unexpected character '{}' in expression",
                                &src[i..].chars().next().unwrap()
                            )))
                        }
                    }
                }
            }
        }
    }
    Ok(toks)
}

fn is_hex_literal(prefix: &[u8]) -> bool {
    prefix.len() >= 2 && prefix[0] == b'0' && (prefix[1] | 0x20) == b'x'
}

// ---------------------------------------------------------------------
// Parser (precedence climbing)
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_expr(&mut self) -> Result<Ast, Exception> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Ast, Exception> {
        let cond = self.parse_binary(0)?;
        if self.peek() == Some(&Tok::Question) {
            self.bump();
            let t = self.parse_ternary()?;
            if self.bump() != Some(Tok::Colon) {
                return Err(Exception::error("expected ':' in ?: expression"));
            }
            let f = self.parse_ternary()?;
            return Ok(Ast::Ternary(Box::new(cond), Box::new(t), Box::new(f)));
        }
        Ok(cond)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Ast, Exception> {
        let mut lhs = self.parse_unary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let bop = match *op {
                "**" => BinOp::Pow,
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                "%" => BinOp::Rem,
                "+" => BinOp::Add,
                "-" => BinOp::Sub,
                "<<" => BinOp::Shl,
                ">>" => BinOp::Shr,
                "<" => BinOp::Lt,
                ">" => BinOp::Gt,
                "<=" => BinOp::Le,
                ">=" => BinOp::Ge,
                "==" => BinOp::EqNum,
                "!=" => BinOp::NeNum,
                "eq" => BinOp::EqStr,
                "ne" => BinOp::NeStr,
                "&" => BinOp::BitAnd,
                "^" => BinOp::BitXor,
                "|" => BinOp::BitOr,
                "&&" => BinOp::And,
                "||" => BinOp::Or,
                _ => break,
            };
            let p = prec(bop);
            if p < min_prec {
                break;
            }
            self.bump();
            // `**` is right-associative; everything else left.
            let next_min = if bop == BinOp::Pow { p } else { p + 1 };
            let rhs = self.parse_binary(next_min)?;
            lhs = Ast::Binary(bop, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Ast, Exception> {
        match self.peek() {
            Some(Tok::Op("-")) => {
                self.bump();
                Ok(Ast::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Op("+")) => {
                self.bump();
                Ok(Ast::Unary(UnOp::Pos, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Op("!")) => {
                self.bump();
                Ok(Ast::Unary(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            Some(Tok::Op("~")) => {
                self.bump();
                Ok(Ast::Unary(UnOp::BitNot, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Ast, Exception> {
        match self.bump() {
            Some(Tok::Val(v)) => Ok(Ast::Lit(v)),
            Some(Tok::Var(name)) => Ok(Ast::Var(name)),
            Some(Tok::Cmd(script)) => Ok(Ast::Cmd(script)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                if self.bump() != Some(Tok::RParen) {
                    return Err(Exception::error("expected ')'"));
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            match self.bump() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                _ => return Err(Exception::error("expected ',' or ')'")),
                            }
                        }
                    } else {
                        self.bump();
                    }
                    Ok(Ast::Call(name, args))
                } else {
                    // Bare identifier: treat as a string literal (Tcl
                    // errors here, but being lenient aids generated code).
                    Ok(Ast::Lit(Val::Str(name)))
                }
            }
            other => Err(Exception::error(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------

/// Evaluate an expression string against a host.
pub fn eval_expr<H: ExprHost>(host: &mut H, src: &str) -> Result<Val, Exception> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let ast = p.parse_expr()?;
    if p.pos != p.toks.len() {
        return Err(Exception::error(format!(
            "trailing tokens in expression: \"{src}\""
        )));
    }
    eval_ast(host, &ast)
}

fn eval_ast<H: ExprHost>(host: &mut H, ast: &Ast) -> Result<Val, Exception> {
    match ast {
        Ast::Lit(v) => Ok(v.clone()),
        Ast::Var(name) => {
            let s = host.get_var(name)?;
            Ok(parse_number(&s).unwrap_or(Val::Str(s)))
        }
        Ast::Cmd(script) => {
            let s = host.eval_script(script)?;
            Ok(parse_number(&s).unwrap_or(Val::Str(s)))
        }
        Ast::Unary(op, inner) => {
            let v = eval_ast(host, inner)?;
            unary(*op, v)
        }
        Ast::Binary(op, l, r) => match op {
            BinOp::And => {
                let lv = eval_ast(host, l)?;
                if !lv.truthy()? {
                    return Ok(Val::Int(0));
                }
                let rv = eval_ast(host, r)?;
                Ok(Val::Int(rv.truthy()? as i64))
            }
            BinOp::Or => {
                let lv = eval_ast(host, l)?;
                if lv.truthy()? {
                    return Ok(Val::Int(1));
                }
                let rv = eval_ast(host, r)?;
                Ok(Val::Int(rv.truthy()? as i64))
            }
            _ => {
                let lv = eval_ast(host, l)?;
                let rv = eval_ast(host, r)?;
                binary(*op, lv, rv)
            }
        },
        Ast::Ternary(c, t, f) => {
            if eval_ast(host, c)?.truthy()? {
                eval_ast(host, t)
            } else {
                eval_ast(host, f)
            }
        }
        Ast::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_ast(host, a)?);
            }
            call_fn(host, name, vals)
        }
    }
}

fn unary(op: UnOp, v: Val) -> Result<Val, Exception> {
    let n = v
        .coerce_num()
        .ok_or_else(|| Exception::error(format!("can't use \"{}\" as operand", v.to_tcl_string())));
    match op {
        UnOp::Neg => match n? {
            Val::Int(i) => Ok(Val::Int(i.checked_neg().ok_or_else(overflow)?)),
            Val::Dbl(d) => Ok(Val::Dbl(-d)),
            _ => unreachable!(),
        },
        UnOp::Pos => n,
        UnOp::Not => Ok(Val::Int(!v.truthy()? as i64)),
        UnOp::BitNot => match n? {
            Val::Int(i) => Ok(Val::Int(!i)),
            _ => Err(Exception::error("~ requires integer operand")),
        },
    }
}

fn overflow() -> Exception {
    Exception::error("integer overflow")
}

/// Floor division (quotient rounded toward negative infinity) — Tcl's
/// integer `/`. Differs from Rust's `/` (truncating) and from euclidean
/// division when the divisor is negative.
pub(crate) fn floor_div(x: i64, y: i64) -> i64 {
    let q = x / y;
    if (x % y != 0) && ((x < 0) != (y < 0)) {
        q - 1
    } else {
        q
    }
}

/// Floor modulo (result takes the divisor's sign) — Tcl's integer `%`.
pub(crate) fn floor_mod(x: i64, y: i64) -> i64 {
    x - y * floor_div(x, y)
}

fn both_nums(l: &Val, r: &Val) -> Option<(Val, Val)> {
    Some((l.coerce_num()?, r.coerce_num()?))
}

fn as_f64(v: &Val) -> f64 {
    match v {
        Val::Int(i) => *i as f64,
        Val::Dbl(d) => *d,
        Val::Str(_) => f64::NAN,
    }
}

fn binary(op: BinOp, l: Val, r: Val) -> Result<Val, Exception> {
    use BinOp::*;
    match op {
        EqStr => return Ok(Val::Int((l.to_tcl_string() == r.to_tcl_string()) as i64)),
        NeStr => return Ok(Val::Int((l.to_tcl_string() != r.to_tcl_string()) as i64)),
        _ => {}
    }
    let nums = both_nums(&l, &r);
    match op {
        Lt | Gt | Le | Ge | EqNum | NeNum => {
            let ord = match nums {
                Some((a, b)) => as_f64(&a)
                    .partial_cmp(&as_f64(&b))
                    .unwrap_or(std::cmp::Ordering::Equal),
                None => l.to_tcl_string().cmp(&r.to_tcl_string()),
            };
            use std::cmp::Ordering::*;
            let res = match op {
                Lt => ord == Less,
                Gt => ord == Greater,
                Le => ord != Greater,
                Ge => ord != Less,
                EqNum => ord == Equal,
                NeNum => ord != Equal,
                _ => unreachable!(),
            };
            Ok(Val::Int(res as i64))
        }
        _ => {
            let (a, b) = nums.ok_or_else(|| {
                Exception::error(format!(
                    "can't use non-numeric operand in arithmetic: \"{}\" / \"{}\"",
                    l.to_tcl_string(),
                    r.to_tcl_string()
                ))
            })?;
            match (a, b) {
                (Val::Int(x), Val::Int(y)) => int_binary(op, x, y),
                (a, b) => dbl_binary(op, as_f64(&a), as_f64(&b)),
            }
        }
    }
}

fn int_binary(op: BinOp, x: i64, y: i64) -> Result<Val, Exception> {
    use BinOp::*;
    let v = match op {
        Add => x.checked_add(y).ok_or_else(overflow)?,
        Sub => x.checked_sub(y).ok_or_else(overflow)?,
        Mul => x.checked_mul(y).ok_or_else(overflow)?,
        Div => {
            if y == 0 {
                return Err(Exception::error("divide by zero"));
            }
            if x == i64::MIN && y == -1 {
                return Err(overflow());
            }
            // Tcl integer division floors toward negative infinity (the
            // result's remainder takes the divisor's sign).
            floor_div(x, y)
        }
        Rem => {
            if y == 0 {
                return Err(Exception::error("divide by zero"));
            }
            if x == i64::MIN && y == -1 {
                return Err(overflow());
            }
            floor_mod(x, y)
        }
        Pow => {
            if y < 0 {
                return dbl_binary(op, x as f64, y as f64);
            }
            let mut acc: i64 = 1;
            for _ in 0..y {
                acc = acc.checked_mul(x).ok_or_else(overflow)?;
            }
            acc
        }
        Shl => x.checked_shl(y as u32).ok_or_else(overflow)?,
        Shr => x >> y.clamp(0, 63),
        BitAnd => x & y,
        BitXor => x ^ y,
        BitOr => x | y,
        _ => unreachable!(),
    };
    Ok(Val::Int(v))
}

fn dbl_binary(op: BinOp, x: f64, y: f64) -> Result<Val, Exception> {
    use BinOp::*;
    let v = match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        Div => {
            if y == 0.0 {
                return Err(Exception::error("divide by zero"));
            }
            x / y
        }
        Rem => x % y,
        Pow => x.powf(y),
        Shl | Shr | BitAnd | BitXor | BitOr => {
            return Err(Exception::error("bit operations require integers"))
        }
        _ => unreachable!(),
    };
    Ok(Val::Dbl(v))
}

fn call_fn<H: ExprHost>(host: &mut H, name: &str, args: Vec<Val>) -> Result<Val, Exception> {
    let arity = |n: usize| -> Result<(), Exception> {
        if args.len() != n {
            Err(Exception::error(format!(
                "{name}() expects {n} argument(s), got {}",
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    let num = |v: &Val| -> Result<Val, Exception> {
        v.coerce_num()
            .ok_or_else(|| Exception::error(format!("{name}(): non-numeric argument")))
    };
    let f = |v: &Val| -> Result<f64, Exception> { num(v).map(|n| as_f64(&n)) };

    match name {
        "abs" => {
            arity(1)?;
            match num(&args[0])? {
                Val::Int(i) => Ok(Val::Int(i.checked_abs().ok_or_else(overflow)?)),
                Val::Dbl(d) => Ok(Val::Dbl(d.abs())),
                _ => unreachable!(),
            }
        }
        "int" => {
            arity(1)?;
            Ok(Val::Int(f(&args[0])? as i64))
        }
        "double" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?))
        }
        "round" => {
            arity(1)?;
            Ok(Val::Int(f(&args[0])?.round() as i64))
        }
        "floor" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.floor()))
        }
        "ceil" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.ceil()))
        }
        "sqrt" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.sqrt()))
        }
        "exp" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.exp()))
        }
        "log" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.ln()))
        }
        "log10" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.log10()))
        }
        "sin" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.sin()))
        }
        "cos" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.cos()))
        }
        "tan" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.tan()))
        }
        "atan" => {
            arity(1)?;
            Ok(Val::Dbl(f(&args[0])?.atan()))
        }
        "atan2" => {
            arity(2)?;
            Ok(Val::Dbl(f(&args[0])?.atan2(f(&args[1])?)))
        }
        "pow" => {
            arity(2)?;
            Ok(Val::Dbl(f(&args[0])?.powf(f(&args[1])?)))
        }
        "fmod" => {
            arity(2)?;
            Ok(Val::Dbl(f(&args[0])? % f(&args[1])?))
        }
        "hypot" => {
            arity(2)?;
            Ok(Val::Dbl(f(&args[0])?.hypot(f(&args[1])?)))
        }
        "min" => {
            if args.is_empty() {
                return Err(Exception::error("min() needs at least one argument"));
            }
            let mut best = num(&args[0])?;
            for a in &args[1..] {
                let v = num(a)?;
                if as_f64(&v) < as_f64(&best) {
                    best = v;
                }
            }
            Ok(best)
        }
        "max" => {
            if args.is_empty() {
                return Err(Exception::error("max() needs at least one argument"));
            }
            let mut best = num(&args[0])?;
            for a in &args[1..] {
                let v = num(a)?;
                if as_f64(&v) > as_f64(&best) {
                    best = v;
                }
            }
            Ok(best)
        }
        "rand" => {
            arity(0)?;
            Ok(Val::Dbl(host.next_rand()))
        }
        _ => Err(Exception::error(format!(
            "unknown math function \"{name}\""
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct FakeHost {
        vars: HashMap<String, String>,
        seed: u64,
    }

    impl FakeHost {
        fn new() -> Self {
            FakeHost {
                vars: HashMap::new(),
                seed: 1,
            }
        }
    }

    impl ExprHost for FakeHost {
        fn get_var(&mut self, name: &str) -> TclResult {
            self.vars
                .get(name)
                .cloned()
                .ok_or_else(|| Exception::error(format!("no such variable \"{name}\"")))
        }
        fn eval_script(&mut self, script: &str) -> TclResult {
            Ok(format!("<{script}>"))
        }
        fn next_rand(&mut self) -> f64 {
            self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.seed >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn ev(src: &str) -> String {
        eval_expr(&mut FakeHost::new(), src)
            .unwrap()
            .to_tcl_string()
    }

    #[test]
    fn precedence() {
        assert_eq!(ev("1 + 2 * 3"), "7");
        assert_eq!(ev("(1 + 2) * 3"), "9");
        assert_eq!(ev("2 ** 3 ** 2"), "512"); // right assoc
        assert_eq!(ev("10 - 3 - 2"), "5"); // left assoc
    }

    #[test]
    fn int_vs_double() {
        assert_eq!(ev("7 / 2"), "3");
        assert_eq!(ev("7.0 / 2"), "3.5");
        assert_eq!(ev("1 + 1.5"), "2.5");
        assert_eq!(ev("4.0 / 2"), "2.0"); // double stays double
    }

    #[test]
    fn floor_division_like_tcl() {
        assert_eq!(ev("-7 / 2"), "-4");
        assert_eq!(ev("-7 % 2"), "1");
        // Negative divisors: floor, not euclidean — sign follows divisor.
        assert_eq!(ev("7 / -2"), "-4");
        assert_eq!(ev("7 % -2"), "-1");
        assert_eq!(ev("-7 / -2"), "3");
        assert_eq!(ev("-7 % -2"), "-1");
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("3 < 4"), "1");
        assert_eq!(ev("3 >= 4"), "0");
        assert_eq!(ev("3 == 3.0"), "1");
        assert_eq!(ev("\"abc\" eq \"abc\""), "1");
        assert_eq!(ev("\"abc\" ne \"abd\""), "1");
        assert_eq!(ev("3 eq 3.0"), "0"); // string compare
    }

    #[test]
    fn logical_short_circuit() {
        // The RHS would error (divide by zero) if evaluated.
        assert_eq!(ev("0 && (1 / 0)"), "0");
        assert_eq!(ev("1 || (1 / 0)"), "1");
    }

    #[test]
    fn ternary() {
        assert_eq!(ev("1 < 2 ? 10 : 20"), "10");
        assert_eq!(ev("1 > 2 ? 10 : 20"), "20");
    }

    #[test]
    fn variables_resolve() {
        let mut h = FakeHost::new();
        h.vars.insert("x".into(), "21".into());
        assert_eq!(eval_expr(&mut h, "$x * 2").unwrap().to_tcl_string(), "42");
    }

    #[test]
    fn string_variables_compare() {
        let mut h = FakeHost::new();
        h.vars.insert("s".into(), "hello".into());
        assert_eq!(
            eval_expr(&mut h, "$s eq \"hello\"")
                .unwrap()
                .to_tcl_string(),
            "1"
        );
    }

    #[test]
    fn math_functions() {
        assert_eq!(ev("abs(-5)"), "5");
        assert_eq!(ev("int(3.9)"), "3");
        assert_eq!(ev("round(3.5)"), "4");
        assert_eq!(ev("max(1, 7, 3)"), "7");
        assert_eq!(ev("min(4, 2.5, 3)"), "2.5");
        assert_eq!(ev("sqrt(81)"), "9.0");
    }

    #[test]
    fn divide_by_zero_errors() {
        assert!(eval_expr(&mut FakeHost::new(), "1 / 0").is_err());
        assert!(eval_expr(&mut FakeHost::new(), "1 % 0").is_err());
    }

    #[test]
    fn overflow_errors() {
        assert!(eval_expr(&mut FakeHost::new(), "9223372036854775807 + 1").is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(ev("-3 + 1"), "-2");
        assert_eq!(ev("!0"), "1");
        assert_eq!(ev("!5"), "0");
        assert_eq!(ev("~0"), "-1");
        assert_eq!(ev("- - 5"), "5");
    }

    #[test]
    fn hex_literals() {
        assert_eq!(ev("0xff + 1"), "256");
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(ev("1e3 + 1"), "1001.0");
        assert_eq!(ev("2.5e-1 * 4"), "1.0");
    }

    #[test]
    fn bool_words() {
        assert_eq!(ev("true && true"), "1");
        assert_eq!(ev("false || off"), "0");
    }

    #[test]
    fn double_formatting_keeps_point() {
        assert_eq!(format_double(2.0), "2.0");
        assert_eq!(format_double(2.5), "2.5");
        // Rust's Display never uses scientific notation; the key invariant
        // is that a double's rendering is never mistaken for an integer.
        assert!(format_double(1e30).contains('.'));
        assert!(format_double(1e-30).contains('.'));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(eval_expr(&mut FakeHost::new(), "1 + 2 3").is_err());
    }
}

#[cfg(test)]
mod oracle_tests {
    //! Property test: `expr` against a Rust oracle implementing Tcl's
    //! integer semantics (floor division, euclidean modulo, checked
    //! overflow).

    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Node {
        Lit(i32),
        Add(Box<Node>, Box<Node>),
        Sub(Box<Node>, Box<Node>),
        Mul(Box<Node>, Box<Node>),
        Div(Box<Node>, Box<Node>),
        Rem(Box<Node>, Box<Node>),
        Neg(Box<Node>),
    }

    fn node_strategy() -> impl Strategy<Value = Node> {
        let leaf = (-999i32..1000).prop_map(Node::Lit);
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Mul(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Div(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Node::Rem(Box::new(a), Box::new(b))),
                inner.clone().prop_map(|a| Node::Neg(Box::new(a))),
            ]
        })
    }

    fn render(n: &Node) -> String {
        match n {
            Node::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            Node::Add(a, b) => format!("({} + {})", render(a), render(b)),
            Node::Sub(a, b) => format!("({} - {})", render(a), render(b)),
            Node::Mul(a, b) => format!("({} * {})", render(a), render(b)),
            Node::Div(a, b) => format!("({} / {})", render(a), render(b)),
            Node::Rem(a, b) => format!("({} % {})", render(a), render(b)),
            Node::Neg(a) => format!("(- {})", render(a)),
        }
    }

    /// Oracle evaluation; `None` means the expression must error (divide
    /// by zero or overflow).
    fn oracle(n: &Node) -> Option<i64> {
        Some(match n {
            Node::Lit(v) => *v as i64,
            Node::Add(a, b) => oracle(a)?.checked_add(oracle(b)?)?,
            Node::Sub(a, b) => oracle(a)?.checked_sub(oracle(b)?)?,
            Node::Mul(a, b) => oracle(a)?.checked_mul(oracle(b)?)?,
            Node::Div(a, b) => {
                let (x, y) = (oracle(a)?, oracle(b)?);
                if y == 0 || (x == i64::MIN && y == -1) {
                    return None;
                }
                floor_div(x, y)
            }
            Node::Rem(a, b) => {
                let (x, y) = (oracle(a)?, oracle(b)?);
                if y == 0 || (x == i64::MIN && y == -1) {
                    return None;
                }
                floor_mod(x, y)
            }
            Node::Neg(a) => oracle(a)?.checked_neg()?,
        })
    }

    struct NoHost;
    impl ExprHost for NoHost {
        fn get_var(&mut self, name: &str) -> TclResult {
            Err(Exception::error(format!("no var {name}")))
        }
        fn eval_script(&mut self, _script: &str) -> TclResult {
            Err(Exception::error("no scripts"))
        }
        fn next_rand(&mut self) -> f64 {
            0.5
        }
    }

    proptest! {
        #[test]
        fn expr_matches_integer_oracle(node in node_strategy()) {
            let src = render(&node);
            let got = eval_expr(&mut NoHost, &src);
            match oracle(&node) {
                Some(v) => {
                    let got = got.unwrap_or_else(|e| {
                        panic!("expr errored on {src}: {e:?}")
                    });
                    prop_assert_eq!(got, Val::Int(v), "src: {}", src);
                }
                None => prop_assert!(got.is_err(), "src {} must error", src),
            }
        }
    }
}
