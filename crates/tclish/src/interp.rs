//! The interpreter: frames, variables, command dispatch, substitution.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::builtins;
use crate::error::{Exception, TclError, TclResult};
use crate::expr::{self, ExprHost};
use crate::list;
use crate::parser::{self, Command, Part, Script, Word};

/// Marker prefix a `{*}` word carries after parsing.
pub(crate) const EXPAND_MARKER: &str = "\u{1}EXPAND\u{1}";

/// A native command implementation. Receives the interpreter and the fully
/// substituted argument words (`argv[0]` is the command name).
pub type CommandFn = Rc<dyn Fn(&mut Interp, &[String]) -> TclResult>;

/// A user-defined `proc`.
#[derive(Clone)]
pub(crate) struct ProcDef {
    /// `(name, default)` pairs; a trailing `args` param collects the rest.
    pub params: Vec<(String, Option<String>)>,
    pub varargs: bool,
    pub body: Rc<str>,
}

/// How a registered package initializes itself on `package require`.
#[derive(Clone)]
pub enum PackageInit {
    /// Evaluate a Tcl script (the "static package" of §IV: code bundled
    /// in-memory instead of thousands of small files on the FS).
    Script(Rc<str>),
    /// Run a native loader that registers commands.
    Native(Rc<dyn Fn(&mut Interp)>),
}

struct Frame {
    vars: HashMap<String, String>,
    /// Names in this frame linked to globals via `global`.
    global_links: std::collections::HashSet<String>,
}

impl Frame {
    fn new() -> Self {
        Frame {
            vars: HashMap::new(),
            global_links: std::collections::HashSet::new(),
        }
    }
}

enum Output {
    Stdout,
    Buffer(Rc<RefCell<String>>),
    Custom(Box<dyn FnMut(&str)>),
}

/// Script-cache capacity; reaching it triggers a second-chance sweep
/// instead of a wholesale clear, so hot fragments (proc bodies, the leaf
/// tasks a worker evaluates in a loop) keep their parse trees.
const SCRIPT_CACHE_CAP: usize = 4096;

struct CachedScript {
    parsed: Rc<Script>,
    /// Hit since the last eviction sweep (second-chance bit).
    hot: bool,
}

/// A Tcl interpreter instance.
///
/// Each Turbine worker/engine rank embeds one `Interp` — the paper's model
/// of treating script interpreters "as native code libraries" (§III.C).
pub struct Interp {
    frames: Vec<Frame>,
    commands: HashMap<String, CommandFn>,
    procs: HashMap<String, ProcDef>,
    packages: HashMap<String, (String, PackageInit)>,
    provided: HashMap<String, String>,
    script_cache: HashMap<String, CachedScript>,
    context: HashMap<TypeId, Box<dyn Any>>,
    output: Output,
    rand_state: u64,
    depth: usize,
    /// Statistics: number of commands dispatched (used by benches).
    pub commands_executed: u64,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Create an interpreter with the standard command set registered.
    pub fn new() -> Self {
        let mut interp = Interp {
            frames: vec![Frame::new()],
            commands: HashMap::new(),
            procs: HashMap::new(),
            packages: HashMap::new(),
            provided: HashMap::new(),
            script_cache: HashMap::new(),
            context: HashMap::new(),
            output: Output::Stdout,
            rand_state: 0x9E3779B97F4A7C15,
            depth: 0,
            commands_executed: 0,
        };
        builtins::register_all(&mut interp);
        interp
    }

    // -- embedding API ---------------------------------------------------

    /// Register (or replace) a native command.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&mut Interp, &[String]) -> TclResult + 'static,
    {
        self.commands.insert(name.to_string(), Rc::new(f));
    }

    /// Remove a command; returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.commands.remove(name).is_some() | self.procs.remove(name).is_some()
    }

    /// True if a command or proc with this name exists.
    pub fn has_command(&self, name: &str) -> bool {
        self.procs.contains_key(name) || self.commands.contains_key(name)
    }

    /// Names of all user-defined procs.
    pub fn proc_names(&self) -> Vec<String> {
        self.procs.keys().cloned().collect()
    }

    /// Attach host state retrievable from native commands. Stored by type;
    /// wrap in `Rc<RefCell<..>>` if commands must mutate it.
    pub fn context_insert<T: 'static>(&mut self, value: T) {
        self.context.insert(TypeId::of::<T>(), Box::new(value));
    }

    /// Fetch host state by type (cloned out; use `Rc` types).
    pub fn context_get<T: 'static + Clone>(&self) -> Option<T> {
        self.context
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
            .cloned()
    }

    /// Register a loadable package (the analog of placing it on
    /// `TCLLIBPATH`).
    pub fn add_package(&mut self, name: &str, version: &str, init: PackageInit) {
        self.packages
            .insert(name.to_string(), (version.to_string(), init));
    }

    pub(crate) fn require_package(&mut self, name: &str) -> TclResult {
        if let Some(v) = self.provided.get(name) {
            return Ok(v.clone());
        }
        let (version, init) = self
            .packages
            .get(name)
            .cloned()
            .ok_or_else(|| Exception::error(format!("can't find package {name}")))?;
        // Mark provided before running init so recursive requires terminate.
        self.provided.insert(name.to_string(), version.clone());
        match init {
            PackageInit::Script(src) => {
                self.eval_internal(&src)?;
            }
            PackageInit::Native(f) => f(self),
        }
        Ok(version)
    }

    pub(crate) fn provide_package(&mut self, name: &str, version: &str) {
        self.provided.insert(name.to_string(), version.to_string());
    }

    /// Redirect `puts` into an internal buffer and return it.
    pub fn capture_output(&mut self) -> Rc<RefCell<String>> {
        let buf = Rc::new(RefCell::new(String::new()));
        self.output = Output::Buffer(buf.clone());
        buf
    }

    /// Route `puts` to a custom sink.
    pub fn set_output<F: FnMut(&str) + 'static>(&mut self, sink: F) {
        self.output = Output::Custom(Box::new(sink));
    }

    /// Write text to the interpreter's output sink (what `puts` uses).
    /// Host commands use this to merge embedded-interpreter output into
    /// the rank's stdout stream.
    pub fn write_output(&mut self, text: &str) {
        match &mut self.output {
            Output::Stdout => print!("{text}"),
            Output::Buffer(b) => b.borrow_mut().push_str(text),
            Output::Custom(f) => f(text),
        }
    }

    // -- variables --------------------------------------------------------

    fn frame_for(&mut self, name: &str) -> (usize, String) {
        // Qualified names (`a::b`) and `::x` live in the global frame.
        if let Some(stripped) = name.strip_prefix("::") {
            if !stripped.contains("::") {
                return (0, stripped.to_string());
            }
            return (0, name.to_string());
        }
        if name.contains("::") {
            return (0, name.to_string());
        }
        let top = self.frames.len() - 1;
        if top > 0 && self.frames[top].global_links.contains(name) {
            return (0, name.to_string());
        }
        (top, name.to_string())
    }

    /// Read a variable.
    pub fn get_var(&mut self, name: &str) -> TclResult {
        let (fi, key) = self.frame_for(name);
        self.frames[fi]
            .vars
            .get(&key)
            .cloned()
            .ok_or_else(|| Exception::error(format!("can't read \"{name}\": no such variable")))
    }

    /// Write a variable.
    pub fn set_var(&mut self, name: &str, value: impl Into<String>) {
        let (fi, key) = self.frame_for(name);
        self.frames[fi].vars.insert(key, value.into());
    }

    /// Remove a variable; true if it existed.
    pub fn unset_var(&mut self, name: &str) -> bool {
        let (fi, key) = self.frame_for(name);
        self.frames[fi].vars.remove(&key).is_some()
    }

    /// Whether a variable is currently set.
    pub fn var_exists(&mut self, name: &str) -> bool {
        let (fi, key) = self.frame_for(name);
        self.frames[fi].vars.contains_key(&key)
    }

    pub(crate) fn link_global(&mut self, name: &str) {
        let top = self.frames.len() - 1;
        if top > 0 {
            self.frames[top].global_links.insert(name.to_string());
        }
    }

    /// Current proc-call nesting level (0 = global).
    pub fn level(&self) -> usize {
        self.frames.len() - 1
    }

    // -- evaluation --------------------------------------------------------

    /// Evaluate a script; this is the embedding entry point.
    ///
    /// A top-level `return` yields its value; `break`/`continue` outside a
    /// loop are errors, as in Tcl.
    pub fn eval(&mut self, script: &str) -> Result<String, TclError> {
        match self.eval_internal(script) {
            Ok(v) => Ok(v),
            Err(Exception::Return(v)) => Ok(v),
            Err(Exception::Error(e)) => Err(e),
            Err(Exception::Break) => Err(TclError::new("invoked \"break\" outside of a loop")),
            Err(Exception::Continue) => {
                Err(TclError::new("invoked \"continue\" outside of a loop"))
            }
        }
    }

    /// Evaluate with full exception semantics (for control-flow commands).
    pub fn eval_internal(&mut self, script: &str) -> TclResult {
        let parsed = self.parse_cached(script)?;
        self.eval_parsed(&parsed)
    }

    fn parse_cached(&mut self, script: &str) -> Result<Rc<Script>, Exception> {
        if let Some(hit) = self.script_cache.get_mut(script) {
            hit.hot = true;
            return Ok(hit.parsed.clone());
        }
        let parsed = Rc::new(parser::parse_script(script)?);
        if self.script_cache.len() >= SCRIPT_CACHE_CAP {
            // Second-chance sweep: evict entries not hit since the last
            // sweep and demote the survivors, so a one-shot flood of
            // unique scripts cannot flush the fragments a worker
            // re-evaluates every task.
            self.script_cache
                .retain(|_, entry| std::mem::replace(&mut entry.hot, false));
            if self.script_cache.len() >= SCRIPT_CACHE_CAP {
                // Every entry was hot: clear rather than grow unbounded.
                self.script_cache.clear();
            }
        }
        self.script_cache.insert(
            script.to_string(),
            CachedScript {
                parsed: parsed.clone(),
                hot: false,
            },
        );
        Ok(parsed)
    }

    fn eval_parsed(&mut self, script: &Script) -> TclResult {
        let mut result = String::new();
        for cmd in &script.commands {
            result = self.eval_command(cmd).map_err(|e| annotate(e, cmd))?;
        }
        Ok(result)
    }

    fn eval_command(&mut self, cmd: &Command) -> TclResult {
        let mut argv: Vec<String> = Vec::with_capacity(cmd.words.len());
        for w in &cmd.words {
            let expand = matches!(w.parts.first(), Some(Part::Lit(l)) if l == EXPAND_MARKER);
            let text = self.subst_word(w, expand)?;
            if expand {
                argv.extend(list::parse_list(&text).map_err(Exception::from)?);
            } else {
                argv.push(text);
            }
        }
        if argv.is_empty() {
            return Ok(String::new());
        }
        self.invoke(&argv)
    }

    fn subst_word(&mut self, word: &Word, skip_marker: bool) -> TclResult {
        let parts = if skip_marker {
            &word.parts[1..]
        } else {
            &word.parts[..]
        };
        if let [Part::Lit(s)] = parts {
            return Ok(s.clone());
        }
        let mut out = String::new();
        for p in parts {
            match p {
                Part::Lit(s) => out.push_str(s),
                Part::Var(name) => out.push_str(&self.get_var(name)?),
                Part::Script(src) => out.push_str(&self.eval_internal(src)?),
            }
        }
        Ok(out)
    }

    /// Perform Tcl `subst`-style substitution on a string ($vars and
    /// `[commands]`), used by the `subst` command and string templating.
    pub fn subst(&mut self, text: &str) -> TclResult {
        // Reuse the quoted-word parser by wrapping in quotes after escaping
        // embedded quotes and backslashes minimally: simpler to scan here.
        let wrapped = format!("\"{}\"", text.replace('\\', "\\\\").replace('"', "\\\""));
        let script = parser::parse_script(&format!("return {wrapped}"))?;
        match self.eval_parsed(&script) {
            Err(Exception::Return(v)) => Ok(v),
            Ok(v) => Ok(v),
            Err(e) => Err(e),
        }
    }

    /// Invoke a command by argv. Dispatch order: procs, then natives.
    pub fn invoke(&mut self, argv: &[String]) -> TclResult {
        self.commands_executed += 1;
        let name = argv[0].as_str();
        if let Some(p) = self.procs.get(name).cloned() {
            return self.call_proc(name, &p, &argv[1..]);
        }
        if let Some(f) = self.commands.get(name).cloned() {
            return f(self, argv);
        }
        Err(Exception::error(format!("invalid command name \"{name}\"")))
    }

    pub(crate) fn define_proc(&mut self, name: &str, def: ProcDef) {
        self.procs.insert(name.to_string(), def);
    }

    fn call_proc(&mut self, name: &str, p: &ProcDef, args: &[String]) -> TclResult {
        if self.depth >= 500 {
            return Err(Exception::error(format!(
                "too many nested proc calls (infinite recursion in \"{name}\"?)"
            )));
        }
        let mut frame = Frame::new();
        let required = p.params.iter().filter(|(_, d)| d.is_none()).count();
        if args.len() < required || (!p.varargs && args.len() > p.params.len()) {
            return Err(Exception::error(format!(
                "wrong # args: should be \"{name} {}\"",
                p.params
                    .iter()
                    .map(|(n, d)| if d.is_some() {
                        format!("?{n}?")
                    } else {
                        n.clone()
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
                    + if p.varargs { " ?arg ...?" } else { "" }
            )));
        }
        let mut ai = 0usize;
        for (pname, default) in &p.params {
            if ai < args.len() {
                frame.vars.insert(pname.clone(), args[ai].clone());
                ai += 1;
            } else if let Some(d) = default {
                frame.vars.insert(pname.clone(), d.clone());
            }
        }
        if p.varargs {
            let rest: Vec<&String> = args[ai.min(args.len())..].iter().collect();
            frame
                .vars
                .insert("args".to_string(), list::format_list(&rest));
        }
        self.frames.push(frame);
        self.depth += 1;
        let body = p.body.clone();
        let result = self.eval_internal(&body);
        self.depth -= 1;
        self.frames.pop();
        match result {
            Err(Exception::Return(v)) => Ok(v),
            Ok(v) => Ok(v),
            Err(e) => Err(e),
        }
    }

    /// Evaluate a Tcl expression string (the `expr` engine).
    pub fn expr(&mut self, src: &str) -> TclResult {
        expr::eval_expr(self, src).map(|v| v.to_tcl_string())
    }

    /// Evaluate an expression as a boolean (for `if`/`while` conditions).
    pub fn expr_bool(&mut self, src: &str) -> Result<bool, Exception> {
        let v = self.expr(src)?;
        match v.trim() {
            "0" => Ok(false),
            "1" => Ok(true),
            "" => Err(Exception::error("empty boolean expression")),
            other => match other.parse::<f64>() {
                Ok(f) => Ok(f != 0.0),
                Err(_) => match other.to_ascii_lowercase().as_str() {
                    "true" | "yes" | "on" => Ok(true),
                    "false" | "no" | "off" => Ok(false),
                    _ => Err(Exception::error(format!(
                        "expected boolean value but got \"{other}\""
                    ))),
                },
            },
        }
    }
}

impl ExprHost for Interp {
    fn get_var(&mut self, name: &str) -> TclResult {
        Interp::get_var(self, name)
    }
    fn eval_script(&mut self, script: &str) -> TclResult {
        self.eval_internal(script)
    }
    fn next_rand(&mut self) -> f64 {
        // xorshift64*: deterministic per-interp stream for expr's rand().
        let mut x = self.rand_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rand_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn annotate(e: Exception, cmd: &Command) -> Exception {
    match e {
        Exception::Error(mut err) => {
            if err.trace.len() < 8 {
                err.trace.push(cmd.source.clone());
            }
            Exception::Error(err)
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_cache_eviction_keeps_hot_fragments() {
        let mut i = Interp::new();
        // A "hot" fragment, evaluated repeatedly like a worker's leaf task.
        i.eval("set hot 1").unwrap();
        let hot_rc = i.script_cache.get("set hot 1").unwrap().parsed.clone();
        // Flood the cache past capacity with unique one-shot scripts,
        // touching the hot fragment along the way so it carries its
        // second-chance bit into the sweep.
        for n in 0..SCRIPT_CACHE_CAP + 10 {
            i.eval(&format!("set x{n} {n}")).unwrap();
            if n % 512 == 0 {
                i.eval("set hot 1").unwrap();
            }
        }
        assert!(
            i.script_cache.len() < SCRIPT_CACHE_CAP,
            "sweep must have evicted the cold flood"
        );
        let still = i
            .script_cache
            .get("set hot 1")
            .expect("hot fragment survives eviction");
        assert!(
            Rc::ptr_eq(&still.parsed, &hot_rc),
            "hot fragment keeps its original parse tree"
        );
    }

    #[test]
    fn globals_vs_locals() {
        let mut i = Interp::new();
        i.eval("set g 1").unwrap();
        i.eval("proc f {} { global g; set l 2; return [expr {$g + $l}] }")
            .unwrap();
        assert_eq!(i.eval("f").unwrap(), "3");
        // Local `l` did not leak.
        assert!(i.eval("set l").is_err());
    }

    #[test]
    fn qualified_names_are_global() {
        let mut i = Interp::new();
        i.eval("proc f {} { set turbine::rank 7 }").unwrap();
        i.eval("f").unwrap();
        assert_eq!(i.eval("set turbine::rank").unwrap(), "7");
    }

    #[test]
    fn context_round_trip() {
        let mut i = Interp::new();
        i.context_insert(Rc::new(RefCell::new(41u32)));
        let c: Rc<RefCell<u32>> = i.context_get().unwrap();
        *c.borrow_mut() += 1;
        let c2: Rc<RefCell<u32>> = i.context_get().unwrap();
        assert_eq!(*c2.borrow(), 42);
    }

    #[test]
    fn native_command_dispatch() {
        let mut i = Interp::new();
        i.register("double_it", |_, argv| {
            let n: i64 = argv[1].parse().unwrap();
            Ok((n * 2).to_string())
        });
        assert_eq!(i.eval("double_it 21").unwrap(), "42");
    }

    #[test]
    fn package_require_runs_init_once() {
        let mut i = Interp::new();
        i.add_package(
            "mypkg",
            "1.0",
            PackageInit::Script(Rc::from("set ::loads [expr {[info exists ::loads] ? $::loads + 1 : 1}]; proc mypkg_f {} { return ok }")),
        );
        assert_eq!(i.eval("package require mypkg").unwrap(), "1.0");
        assert_eq!(i.eval("package require mypkg").unwrap(), "1.0");
        assert_eq!(i.eval("set ::loads").unwrap(), "1");
        assert_eq!(i.eval("mypkg_f").unwrap(), "ok");
    }

    #[test]
    fn missing_package_errors() {
        let mut i = Interp::new();
        assert!(i.eval("package require nope").is_err());
    }

    #[test]
    fn capture_output() {
        let mut i = Interp::new();
        let buf = i.capture_output();
        i.eval("puts hello; puts world").unwrap();
        assert_eq!(&*buf.borrow(), "hello\nworld\n");
    }

    #[test]
    fn infinite_recursion_is_caught() {
        let mut i = Interp::new();
        i.eval("proc f {} { f }").unwrap();
        let err = i.eval("f").unwrap_err();
        assert!(err.message.contains("recursion"), "{}", err.message);
    }

    #[test]
    fn expand_marker_expands_lists() {
        let mut i = Interp::new();
        i.eval("set l {1 2 3}").unwrap();
        assert_eq!(i.eval("llength $l").unwrap(), "3");
        assert_eq!(i.eval("expr {*}{1 + 2}").unwrap(), "3");
    }

    #[test]
    fn error_trace_accumulates() {
        let mut i = Interp::new();
        i.eval("proc inner {} { error deep }").unwrap();
        i.eval("proc outer {} { inner }").unwrap();
        let err = i.eval("outer").unwrap_err();
        assert_eq!(err.message, "deep");
        assert!(!err.trace.is_empty());
    }
}
