//! # tclish — an embeddable Tcl-subset interpreter
//!
//! Swift/T's compiler (STC) deliberately targets **Tcl**: Turbine code must
//! be a textual, easily readable format that can be shipped through the load
//! balancer and evaluated on another rank without invoking a C compiler
//! (Wozniak et al., CLUSTER 2015, §III.A). This crate supplies that target
//! language for the reproduction: a from-scratch Tcl interpreter covering
//! the subset the generated Turbine code and user leaf fragments need,
//! while remaining a genuine Tcl: every value is a string, `{}` defers
//! substitution, `[]` nests evaluation, and `proc`/`expr`/list commands
//! follow the standard semantics.
//!
//! The host (the Turbine worker or engine) embeds one [`Interp`] per rank,
//! registers native commands with [`Interp::register`], and evaluates code
//! fragments with [`Interp::eval`] — exactly the embedding pattern the paper
//! uses for Python and R interpreters as well.
//!
//! ```
//! use tclish::Interp;
//!
//! let mut interp = Interp::new();
//! interp.eval("proc triple {x} { return [expr {$x * 3}] }").unwrap();
//! assert_eq!(interp.eval("triple 14").unwrap(), "42");
//! ```

mod builtins;
mod error;
mod expr;
mod interp;
mod list;
mod parser;

pub use error::{Exception, TclError, TclResult};
pub use expr::{format_double, parse_number, Val};
pub use interp::{CommandFn, Interp, PackageInit};
pub use list::{format_list, parse_list};

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(script: &str) -> String {
        Interp::new().eval(script).unwrap()
    }

    #[test]
    fn arithmetic_via_expr() {
        assert_eq!(ev("expr {1 + 2 * 3}"), "7");
    }

    #[test]
    fn set_and_substitute() {
        assert_eq!(ev("set a 5; set b 6; expr {$a * $b}"), "30");
    }

    #[test]
    fn nested_command_substitution() {
        assert_eq!(ev("set x [expr {2 ** 8}]; expr {$x + 1}"), "257");
    }

    #[test]
    fn proc_with_defaults_and_varargs() {
        let mut i = Interp::new();
        i.eval("proc f {a {b 10} args} { return [expr {$a + $b + [llength $args]}] }")
            .unwrap();
        assert_eq!(i.eval("f 1").unwrap(), "11");
        assert_eq!(i.eval("f 1 2").unwrap(), "3");
        assert_eq!(i.eval("f 1 2 x y z").unwrap(), "6");
    }

    #[test]
    fn while_loop_accumulates() {
        assert_eq!(
            ev("set s 0; set i 0; while {$i < 10} { incr s $i; incr i }; set s"),
            "45"
        );
    }

    #[test]
    fn foreach_multiple_vars() {
        assert_eq!(
            ev("set out {}; foreach {a b} {1 2 3 4} { lappend out [expr {$a+$b}] }; set out"),
            "3 7"
        );
    }

    #[test]
    fn string_is_preserved_in_braces() {
        assert_eq!(ev("set v {hello $world [danger]}"), "hello $world [danger]");
    }

    #[test]
    fn quotes_substitute() {
        assert_eq!(ev("set w Tcl; set v \"hi $w [expr {1+1}]\""), "hi Tcl 2");
    }

    #[test]
    fn error_propagates_and_catch_catches() {
        let mut i = Interp::new();
        assert!(i.eval("error boom").is_err());
        assert_eq!(i.eval("catch {error boom} msg").unwrap(), "1");
        assert_eq!(i.eval("set msg").unwrap(), "boom");
    }
}
