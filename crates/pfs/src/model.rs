//! Cost-model parameters for the simulated filesystem.

/// Timing parameters, loosely calibrated to a production Lustre/GPFS
/// installation under load. All times in nanoseconds of *simulated* time.
#[derive(Debug, Clone, Copy)]
pub struct PfsConfig {
    /// Service time per metadata operation at the (single) metadata
    /// server. 50 µs ⇒ a hard ceiling of 20 k metadata ops/s for the whole
    /// machine, no matter how many clients.
    pub md_service_ns: u64,
    /// Client↔server round-trip added to every operation.
    pub rtt_ns: u64,
    /// Number of data servers (OSTs); data operations stripe across them.
    pub data_servers: usize,
    /// Per-data-server streaming bandwidth, bytes per second.
    pub data_bandwidth_bps: u64,
    /// Fixed overhead per data operation at a data server.
    pub data_op_ns: u64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            md_service_ns: 50_000, // 50 µs
            rtt_ns: 100_000,       // 100 µs
            data_servers: 8,
            data_bandwidth_bps: 500_000_000, // 500 MB/s per OST
            data_op_ns: 200_000,             // 200 µs
        }
    }
}

impl PfsConfig {
    /// A configuration with effectively free operations, for tests that
    /// need the namespace semantics but not the cost model.
    pub fn instant() -> Self {
        PfsConfig {
            md_service_ns: 0,
            rtt_ns: 0,
            data_servers: 1,
            data_bandwidth_bps: u64::MAX,
            data_op_ns: 0,
        }
    }

    /// Transfer time for `bytes` on one data server.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        if self.data_bandwidth_bps == u64::MAX {
            return 0;
        }
        (bytes as u128 * 1_000_000_000 / self.data_bandwidth_bps as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let c = PfsConfig::default();
        assert_eq!(c.transfer_ns(0), 0);
        // 500 MB at 500 MB/s = 1 s.
        assert_eq!(c.transfer_ns(500_000_000), 1_000_000_000);
    }

    #[test]
    fn instant_config_is_free() {
        let c = PfsConfig::instant();
        assert_eq!(c.transfer_ns(1 << 30), 0);
        assert_eq!(c.md_service_ns, 0);
    }
}
