//! # pfs — a simulated parallel filesystem with metadata contention
//!
//! The paper's central motivation for embedding interpreters is that
//! exec-based scripting "at large scale \[has\] unacceptable filesystem
//! overheads" and that the "many small file problem common in scripted
//! solutions" is addressed by static packages (Wozniak et al., CLUSTER
//! 2015, §III.C, §IV). Quantifying those claims requires a parallel
//! filesystem to abuse — GPFS/Lustre on a Blue Gene/Q in the paper, this
//! simulation here.
//!
//! The model captures the two properties that make metadata storms hurt:
//!
//! 1. **A centralized metadata service.** Every `open`/`create`/`stat`/
//!    `unlink` is serviced serially by the metadata server; concurrent
//!    clients queue. Client-observed latency = queue wait + service time
//!    + round-trip.
//! 2. **Parallel data servers.** Bulk reads/writes are striped over `N`
//!    data servers, each with its own queue, so data bandwidth scales but
//!    metadata throughput does not — exactly the asymmetry that punishes
//!    many-small-files workloads.
//!
//! Time is **virtual**: each [`PfsClient`] carries a simulated clock, and
//! shared server state advances as operations are issued. Experiments run
//! in milliseconds of wall time but report simulated seconds, so
//! contention curves are deterministic and machine-independent.
//!
//! ```
//! use std::sync::Arc;
//! use pfs::{Pfs, PfsConfig};
//!
//! let fs = Arc::new(Pfs::new(PfsConfig::default()));
//! let mut client = fs.client();
//! client.create("/data/input.dat").unwrap();
//! client.write("/data/input.dat", &vec![0u8; 1 << 20]).unwrap();
//! assert_eq!(client.read("/data/input.dat").unwrap().len(), 1 << 20);
//! assert!(client.now() > 0);
//! ```

mod fs;
mod model;

pub use fs::{Pfs, PfsClient, PfsError, PfsStats};
pub use model::PfsConfig;
