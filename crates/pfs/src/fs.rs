//! The simulated filesystem: namespace, server queues, per-client clocks.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::model::PfsConfig;

/// Filesystem error (missing file, duplicate create, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfsError {
    /// POSIX-flavored description.
    pub message: String,
}

impl PfsError {
    fn new(msg: impl Into<String>) -> Self {
        PfsError {
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pfs: {}", self.message)
    }
}

impl std::error::Error for PfsError {}

/// Aggregate operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfsStats {
    /// Metadata operations serviced (open/create/stat/unlink/readdir).
    pub metadata_ops: u64,
    /// Data operations serviced (read/write).
    pub data_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Total simulated nanoseconds clients spent waiting in the metadata
    /// queue (excludes service + RTT) — the contention signal.
    pub md_queue_wait_ns: u64,
}

struct Inner {
    files: HashMap<String, Vec<u8>>,
    /// Virtual time at which the metadata server next becomes free.
    md_free_at: u64,
    /// Virtual time at which each data server next becomes free.
    data_free_at: Vec<u64>,
    stats: PfsStats,
}

/// The shared filesystem. Create one per simulated machine and hand every
/// rank a [`PfsClient`] via [`Pfs::client`].
pub struct Pfs {
    config: PfsConfig,
    inner: Mutex<Inner>,
}

impl Pfs {
    /// A new, empty filesystem.
    pub fn new(config: PfsConfig) -> Self {
        Pfs {
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                md_free_at: 0,
                data_free_at: vec![0; config.data_servers.max(1)],
                stats: PfsStats::default(),
            }),
            config,
        }
    }

    /// A client with its own virtual clock starting at zero.
    pub fn client(self: &Arc<Self>) -> PfsClient {
        PfsClient {
            fs: Arc::clone(self),
            clock: 0,
            pending: HashMap::new(),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PfsStats {
        self.inner.lock().stats
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// Serialize the whole namespace (paths and contents — not the cost
    /// model or counters) into a flat image, so a checkpointed run can
    /// persist its durable state across real process restarts.
    ///
    /// Format: `PFS1` magic, file count, then per file a length-prefixed
    /// path and length-prefixed contents, in sorted path order.
    pub fn dump(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut paths: Vec<&String> = inner.files.keys().collect();
        paths.sort();
        let mut out = Vec::new();
        out.extend_from_slice(b"PFS1");
        out.extend_from_slice(&(paths.len() as u64).to_le_bytes());
        for p in paths {
            let data = &inner.files[p];
            out.extend_from_slice(&(p.len() as u64).to_le_bytes());
            out.extend_from_slice(p.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Rebuild a filesystem from a [`Pfs::dump`] image. Clocks and
    /// counters start fresh; only the namespace is restored.
    pub fn restore(config: PfsConfig, image: &[u8]) -> Result<Pfs, PfsError> {
        let bad = || PfsError::new("corrupt pfs image");
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], PfsError> {
            let s = image.get(*at..*at + n).ok_or_else(bad)?;
            *at += n;
            Ok(s)
        };
        let u64_at = |at: &mut usize| -> Result<u64, PfsError> {
            let b = take(at, 8)?;
            Ok(u64::from_le_bytes(b.try_into().map_err(|_| bad())?))
        };
        if take(&mut at, 4)? != b"PFS1" {
            return Err(PfsError::new("not a pfs image (bad magic)"));
        }
        let count = u64_at(&mut at)?;
        let mut files = HashMap::new();
        for _ in 0..count {
            let plen = u64_at(&mut at)? as usize;
            let path = std::str::from_utf8(take(&mut at, plen)?)
                .map_err(|_| bad())?
                .to_string();
            let dlen = u64_at(&mut at)? as usize;
            files.insert(path, take(&mut at, dlen)?.to_vec());
        }
        let fs = Pfs::new(config);
        fs.inner.lock().files = files;
        Ok(fs)
    }
}

/// One rank's view of the filesystem, carrying a simulated clock.
///
/// The clock advances on every operation by the operation's modeled
/// latency, including time spent queued behind other clients at the
/// metadata/data servers. [`PfsClient::now`] is the rank's simulated time.
pub struct PfsClient {
    fs: Arc<Pfs>,
    clock: u64,
    /// Write-behind buffers: bytes appended via [`PfsClient::append`] that
    /// have not yet been pushed to the servers by [`PfsClient::flush`].
    pending: HashMap<String, Vec<u8>>,
}

impl PfsClient {
    /// Current simulated time for this client, in nanoseconds.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advance this client's clock by non-filesystem work (compute).
    pub fn compute(&mut self, ns: u64) {
        self.clock += ns;
    }

    /// Charge one metadata operation: queue at the MD server, pay service
    /// time, pay RTT.
    fn metadata_op(&mut self) {
        let cfg = self.fs.config;
        let mut inner = self.fs.inner.lock();
        let start = self.clock.max(inner.md_free_at);
        let wait = start - self.clock;
        inner.md_free_at = start + cfg.md_service_ns;
        inner.stats.metadata_ops += 1;
        inner.stats.md_queue_wait_ns += wait;
        self.clock = start + cfg.md_service_ns + cfg.rtt_ns;
    }

    /// Charge a data operation of `bytes` on the data server owning `path`.
    fn data_op(&mut self, path: &str, bytes: usize, write: bool) {
        let cfg = self.fs.config;
        let mut inner = self.fs.inner.lock();
        let n = inner.data_free_at.len();
        let server = {
            // Cheap stable hash to pick the stripe's primary server.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in path.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            (h % n as u64) as usize
        };
        let start = self.clock.max(inner.data_free_at[server]);
        let busy = cfg.data_op_ns + cfg.transfer_ns(bytes);
        inner.data_free_at[server] = start + busy;
        inner.stats.data_ops += 1;
        if write {
            inner.stats.bytes_written += bytes as u64;
        } else {
            inner.stats.bytes_read += bytes as u64;
        }
        self.clock = start + busy + cfg.rtt_ns;
    }

    /// Create an empty file (metadata op). Errors if it already exists.
    pub fn create(&mut self, path: &str) -> Result<(), PfsError> {
        self.metadata_op();
        let mut inner = self.fs.inner.lock();
        if inner.files.contains_key(path) {
            return Err(PfsError::new(format!("{path}: file exists")));
        }
        inner.files.insert(path.to_string(), Vec::new());
        Ok(())
    }

    /// Open a file (metadata op). Errors if missing.
    pub fn open(&mut self, path: &str) -> Result<(), PfsError> {
        self.metadata_op();
        let inner = self.fs.inner.lock();
        if !inner.files.contains_key(path) {
            return Err(PfsError::new(format!("{path}: no such file")));
        }
        Ok(())
    }

    /// Stat a file (metadata op); returns its size as seen by this client.
    ///
    /// The size includes bytes this client has [`PfsClient::append`]ed but
    /// not yet flushed — a stat between an append and its flush must not
    /// report the stale server-side size. A file that exists only in this
    /// client's write-behind buffer stats as its buffered length.
    pub fn stat(&mut self, path: &str) -> Result<usize, PfsError> {
        self.metadata_op();
        let buffered = self.pending.get(path).map_or(0, Vec::len);
        let inner = self.fs.inner.lock();
        match inner.files.get(path) {
            Some(data) => Ok(data.len() + buffered),
            None if buffered > 0 => Ok(buffered),
            None => Err(PfsError::new(format!("{path}: no such file"))),
        }
    }

    /// Whether a path exists (metadata op).
    pub fn exists(&mut self, path: &str) -> bool {
        self.metadata_op();
        self.fs.inner.lock().files.contains_key(path)
    }

    /// Overwrite a file's contents (metadata op to locate + data op).
    ///
    /// A full overwrite supersedes any unflushed appends this client holds
    /// for the path, so they are discarded — even if the path was unlinked
    /// and recreated in between, the stale buffer must not resurrect.
    pub fn write(&mut self, path: &str, data: &[u8]) -> Result<(), PfsError> {
        self.metadata_op();
        {
            let inner = self.fs.inner.lock();
            if !inner.files.contains_key(path) {
                return Err(PfsError::new(format!("{path}: no such file")));
            }
        }
        self.pending.remove(path);
        self.data_op(path, data.len(), true);
        self.fs
            .inner
            .lock()
            .files
            .insert(path.to_string(), data.to_vec());
        Ok(())
    }

    /// Create-or-overwrite convenience (one metadata op, one data op).
    pub fn put(&mut self, path: &str, data: &[u8]) -> Result<(), PfsError> {
        self.metadata_op();
        self.data_op(path, data.len(), true);
        self.fs
            .inner
            .lock()
            .files
            .insert(path.to_string(), data.to_vec());
        Ok(())
    }

    /// Read a whole file (metadata op + data op).
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>, PfsError> {
        self.metadata_op();
        let data = {
            let inner = self.fs.inner.lock();
            inner
                .files
                .get(path)
                .cloned()
                .ok_or_else(|| PfsError::new(format!("{path}: no such file")))?
        };
        self.data_op(path, data.len(), false);
        Ok(data)
    }

    /// Remove a file (metadata op). Drops any unflushed appends this
    /// client holds for the path, so a later recreate starts clean.
    pub fn unlink(&mut self, path: &str) -> Result<(), PfsError> {
        self.metadata_op();
        self.pending.remove(path);
        self.fs
            .inner
            .lock()
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| PfsError::new(format!("{path}: no such file")))
    }

    /// Buffer bytes for appending to `path`. Free of server traffic: the
    /// bytes sit in this client's write-behind buffer until
    /// [`PfsClient::flush`] pushes the whole batch in one metadata op and
    /// one data op. This is what lets a write-ahead log amortize the
    /// metadata server across many records.
    pub fn append(&mut self, path: &str, data: &[u8]) {
        self.pending
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
    }

    /// Bytes buffered for `path` and not yet flushed.
    pub fn pending(&self, path: &str) -> usize {
        self.pending.get(path).map_or(0, Vec::len)
    }

    /// Push this client's buffered appends for `path` to the servers: one
    /// metadata op plus one data op for the whole batch. Creates the file
    /// if it does not exist (it may have been unlinked and the path
    /// recreated since the appends were buffered). Returns the number of
    /// bytes flushed; a no-op (zero cost) when nothing is buffered.
    pub fn flush(&mut self, path: &str) -> Result<usize, PfsError> {
        let Some(buf) = self.pending.remove(path) else {
            return Ok(0);
        };
        if buf.is_empty() {
            return Ok(0);
        }
        self.metadata_op();
        self.data_op(path, buf.len(), true);
        let mut inner = self.fs.inner.lock();
        let n = buf.len();
        inner.files.entry(path.to_string()).or_default().extend(buf);
        Ok(n)
    }

    /// List paths under a prefix (metadata op).
    pub fn readdir(&mut self, prefix: &str) -> Vec<String> {
        self.metadata_op();
        let inner = self.fs.inner.lock();
        let mut out: Vec<String> = inner
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(config: PfsConfig) -> Arc<Pfs> {
        Arc::new(Pfs::new(config))
    }

    #[test]
    fn namespace_semantics() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        assert!(c.open("/x").is_err());
        c.create("/x").unwrap();
        assert!(c.create("/x").is_err());
        c.write("/x", b"hello").unwrap();
        assert_eq!(c.read("/x").unwrap(), b"hello");
        assert_eq!(c.stat("/x").unwrap(), 5);
        c.unlink("/x").unwrap();
        assert!(c.read("/x").is_err());
    }

    #[test]
    fn readdir_prefix() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/pkg/a.tcl").unwrap();
        c.create("/pkg/b.tcl").unwrap();
        c.create("/other/c.tcl").unwrap();
        assert_eq!(c.readdir("/pkg/"), vec!["/pkg/a.tcl", "/pkg/b.tcl"]);
    }

    #[test]
    fn metadata_ops_advance_clock() {
        let fs = fs(PfsConfig::default());
        let mut c = fs.client();
        let t0 = c.now();
        c.create("/f").unwrap();
        assert_eq!(c.now() - t0, 50_000 + 100_000);
    }

    #[test]
    fn metadata_server_serializes_clients() {
        // Two clients at virtual time 0 both issue an op: the second one
        // queued behind the first pays the wait.
        let fs = fs(PfsConfig::default());
        let mut a = fs.client();
        let mut b = fs.client();
        a.create("/a").unwrap();
        b.create("/b").unwrap();
        assert_eq!(a.now(), 150_000);
        // b arrived at 0 but the server was busy until 50 000.
        assert_eq!(b.now(), 50_000 + 50_000 + 100_000);
        assert_eq!(fs.stats().md_queue_wait_ns, 50_000);
    }

    #[test]
    fn metadata_storm_scales_linearly() {
        // N clients each opening one file: the last client's clock grows
        // linearly with N — the many-small-files wall.
        let fs = fs(PfsConfig::default());
        let mut seed = fs.client();
        seed.create("/shared").unwrap();
        let n = 100;
        let mut last = 0;
        for _ in 0..n {
            let mut c = fs.client();
            c.open("/shared").unwrap();
            last = last.max(c.now());
        }
        let cfg = PfsConfig::default();
        // All 101 ops serialize: the last waits ~100 service times.
        assert!(last >= 100 * cfg.md_service_ns);
    }

    fn slow_net() -> PfsConfig {
        PfsConfig {
            data_bandwidth_bps: 1_000_000, // 1 MB/s: tiny buffers, big costs
            ..PfsConfig::default()
        }
    }

    #[test]
    fn data_ops_charge_bandwidth() {
        let fs = fs(slow_net());
        let mut c = fs.client();
        c.create("/big").unwrap();
        let t0 = c.now();
        c.write("/big", &vec![0u8; 1_000_000]).unwrap();
        // 1 s transfer dominates.
        assert!(c.now() - t0 >= 1_000_000_000);
    }

    #[test]
    fn data_servers_run_in_parallel() {
        // Files hashing to different servers do not queue behind each
        // other; with 8 servers and 16 files, the makespan is far below
        // 16 serialized transfers.
        let cfg = slow_net();
        let fs = fs(cfg);
        let payload = vec![0u8; 100_000]; // 0.1 s per transfer
        let mut worst = 0u64;
        for i in 0..16 {
            let mut c = fs.client();
            c.put(&format!("/data/{i}"), &payload).unwrap();
            worst = worst.max(c.now());
        }
        let serial = 16 * cfg.transfer_ns(100_000);
        assert!(
            worst < serial / 2,
            "striping should parallelize: worst {worst} vs serial {serial}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/s").unwrap();
        c.write("/s", b"abcd").unwrap();
        c.read("/s").unwrap();
        let st = fs.stats();
        assert_eq!(st.bytes_written, 4);
        assert_eq!(st.bytes_read, 4);
        assert_eq!(st.data_ops, 2);
        assert!(st.metadata_ops >= 3);
    }

    #[test]
    fn append_batches_into_one_flush() {
        // N appends cost nothing; the flush costs exactly one metadata op
        // and one data op for the whole batch.
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/wal").unwrap();
        let before = fs.stats();
        for i in 0..100u8 {
            c.append("/wal", &[i]);
        }
        assert_eq!(fs.stats(), before, "append must not touch the servers");
        assert_eq!(c.pending("/wal"), 100);
        assert_eq!(c.flush("/wal").unwrap(), 100);
        let after = fs.stats();
        assert_eq!(after.metadata_ops, before.metadata_ops + 1);
        assert_eq!(after.data_ops, before.data_ops + 1);
        assert_eq!(after.bytes_written, before.bytes_written + 100);
        assert_eq!(c.pending("/wal"), 0);
        assert_eq!(c.read("/wal").unwrap().len(), 100);
        // Flushing with nothing buffered is free.
        assert_eq!(c.flush("/wal").unwrap(), 0);
        assert_eq!(fs.stats().metadata_ops, after.metadata_ops + 1); // the read
    }

    #[test]
    fn flush_appends_after_existing_contents() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.put("/log", b"head;").unwrap();
        c.append("/log", b"tail");
        c.flush("/log").unwrap();
        assert_eq!(c.read("/log").unwrap(), b"head;tail");
    }

    #[test]
    fn stat_sees_unflushed_appends() {
        // An open-but-unflushed file must not stat at its stale server
        // size; the client's buffered bytes count.
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/open").unwrap();
        c.append("/open", b"buffered");
        assert_eq!(c.stat("/open").unwrap(), 8);
        // A path that exists only in the buffer stats too (no panic).
        c.append("/only-buffered", b"abc");
        assert_eq!(c.stat("/only-buffered").unwrap(), 3);
        // Other clients see only the durable size.
        let mut other = fs.client();
        assert_eq!(other.stat("/open").unwrap(), 0);
        c.flush("/open").unwrap();
        assert_eq!(other.stat("/open").unwrap(), 8);
    }

    #[test]
    fn unlink_then_recreate_starts_clean() {
        // Stale buffered appends must not resurrect into a recreated path,
        // and writing to the recreated path must not panic.
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/x").unwrap();
        c.append("/x", b"stale");
        c.unlink("/x").unwrap();
        c.create("/x").unwrap();
        c.write("/x", b"fresh").unwrap();
        assert_eq!(c.read("/x").unwrap(), b"fresh");
        assert_eq!(c.stat("/x").unwrap(), 5);
        c.flush("/x").unwrap(); // nothing pending — free no-op
        assert_eq!(c.read("/x").unwrap(), b"fresh");
    }

    #[test]
    fn write_supersedes_pending_appends() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.create("/y").unwrap();
        c.append("/y", b"old");
        c.write("/y", b"new").unwrap();
        c.flush("/y").unwrap();
        assert_eq!(c.read("/y").unwrap(), b"new");
    }

    #[test]
    fn flush_recreates_unlinked_file() {
        // The WAL owner keeps appending while a compactor unlinks the old
        // file under it; flush must recreate rather than panic or error.
        let fs = fs(PfsConfig::instant());
        let mut writer = fs.client();
        writer.create("/wal").unwrap();
        writer.append("/wal", b"record");
        let mut compactor = fs.client();
        compactor.unlink("/wal").unwrap();
        assert_eq!(writer.flush("/wal").unwrap(), 6);
        assert_eq!(writer.read("/wal").unwrap(), b"record");
    }

    #[test]
    fn dump_restore_roundtrip() {
        let fs = fs(PfsConfig::instant());
        let mut c = fs.client();
        c.put("/ckpt/0/seg-1", b"segment-bytes").unwrap();
        c.put("/ckpt/0/latest", b"1").unwrap();
        c.create("/empty").unwrap();
        let image = fs.dump();
        let restored = Arc::new(Pfs::restore(PfsConfig::instant(), &image).unwrap());
        assert_eq!(restored.file_count(), 3);
        let mut r = restored.client();
        assert_eq!(r.read("/ckpt/0/seg-1").unwrap(), b"segment-bytes");
        assert_eq!(r.read("/ckpt/0/latest").unwrap(), b"1");
        assert_eq!(r.stat("/empty").unwrap(), 0);
        // Fresh counters on the restored instance.
        assert_eq!(restored.stats().bytes_written, 0);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(Pfs::restore(PfsConfig::instant(), b"not an image").is_err());
        assert!(Pfs::restore(PfsConfig::instant(), b"PFS1").is_err());
        // A count pointing past the end of the image errors, not panics.
        let mut img = Pfs::new(PfsConfig::instant()).dump();
        img[4] = 0xff;
        assert!(Pfs::restore(PfsConfig::instant(), &img).is_err());
    }

    #[test]
    fn concurrent_clients_from_threads() {
        let fs = fs(PfsConfig::default());
        let mut seed = fs.client();
        seed.create("/f").unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    let mut c = fs.client();
                    for _ in 0..50 {
                        c.open("/f").unwrap();
                    }
                });
            }
        });
        assert_eq!(fs.stats().metadata_ops, 1 + 8 * 50);
    }
}
