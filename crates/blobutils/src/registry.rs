//! Pointer-style blob handles.
//!
//! SWIG represents C pointers as opaque Tcl strings; Swift/T's blobutils
//! converts between those pointers and the runtime's blob type. Here the
//! analogue is a per-rank registry mapping handle strings (`blob#<id>`) to
//! owned [`Blob`]s, so Tcl code and "native" functions can exchange large
//! buffers by name without the bytes ever being copied through script
//! values.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::blob::{Blob, BlobError};

/// An opaque handle to a registered blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlobHandle(pub u64);

impl BlobHandle {
    /// Render as the Tcl-visible handle string.
    pub fn to_token(self) -> String {
        format!("blob#{}", self.0)
    }

    /// Parse a handle string.
    pub fn parse(token: &str) -> Result<Self, BlobError> {
        token
            .strip_prefix("blob#")
            .and_then(|id| id.parse::<u64>().ok())
            .map(BlobHandle)
            .ok_or_else(|| BlobError::new(format!("\"{token}\" is not a blob handle")))
    }
}

impl std::fmt::Display for BlobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blob#{}", self.0)
    }
}

/// Owner of all live blobs on one rank.
#[derive(Default)]
pub struct BlobRegistry {
    blobs: HashMap<u64, Blob>,
    next: u64,
}

/// The registry as shared between an interpreter's commands (single-rank,
/// single-threaded, hence `Rc<RefCell<..>>`).
pub type SharedRegistry = Rc<RefCell<BlobRegistry>>;

impl BlobRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a blob, returning its handle.
    pub fn insert(&mut self, blob: Blob) -> BlobHandle {
        let id = self.next;
        self.next += 1;
        self.blobs.insert(id, blob);
        BlobHandle(id)
    }

    /// Borrow a blob.
    pub fn get(&self, h: BlobHandle) -> Result<&Blob, BlobError> {
        self.blobs
            .get(&h.0)
            .ok_or_else(|| BlobError::new(format!("{h}: no such blob (already released?)")))
    }

    /// Mutably borrow a blob.
    pub fn get_mut(&mut self, h: BlobHandle) -> Result<&mut Blob, BlobError> {
        self.blobs
            .get_mut(&h.0)
            .ok_or_else(|| BlobError::new(format!("{h}: no such blob (already released?)")))
    }

    /// Remove and return a blob (freeing the "pointer").
    pub fn release(&mut self, h: BlobHandle) -> Result<Blob, BlobError> {
        self.blobs
            .remove(&h.0)
            .ok_or_else(|| BlobError::new(format!("{h}: no such blob (double release?)")))
    }

    /// Number of live blobs (leak detection in tests and task teardown).
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when no blobs are live.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total bytes held.
    pub fn bytes_held(&self) -> usize {
        self.blobs.values().map(Blob::len).sum()
    }

    /// Drop all blobs (task-boundary cleanup under the Reinitialize
    /// interpreter policy).
    pub fn clear(&mut self) {
        self.blobs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_release() {
        let mut r = BlobRegistry::new();
        let h = r.insert(Blob::from_f64s(&[1.0, 2.0]));
        assert_eq!(r.get(h).unwrap().f64_len().unwrap(), 2);
        let b = r.release(h).unwrap();
        assert_eq!(b.to_f64s().unwrap(), vec![1.0, 2.0]);
        assert!(r.get(h).is_err());
        assert!(r.release(h).is_err());
    }

    #[test]
    fn handles_are_unique() {
        let mut r = BlobRegistry::new();
        let h1 = r.insert(Blob::new());
        let h2 = r.insert(Blob::new());
        assert_ne!(h1, h2);
    }

    #[test]
    fn token_round_trip() {
        let h = BlobHandle(42);
        assert_eq!(BlobHandle::parse(&h.to_token()).unwrap(), h);
        assert!(BlobHandle::parse("nonsense").is_err());
        assert!(BlobHandle::parse("blob#xyz").is_err());
    }

    #[test]
    fn accounting() {
        let mut r = BlobRegistry::new();
        r.insert(Blob::from_bytes(vec![0; 100]));
        r.insert(Blob::from_bytes(vec![0; 28]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.bytes_held(), 128);
        r.clear();
        assert!(r.is_empty());
    }
}
