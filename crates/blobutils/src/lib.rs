//! # blobutils — bulk binary data for interlanguage dataflow
//!
//! Scientific users of native-code languages "desire to operate on bulk
//! data in arrays"; Swift/T handles pointers to byte arrays as a novel
//! type: **blob** (binary large object), treated like a string by the
//! runtime but with appropriate handling for binary data (Wozniak et al.,
//! CLUSTER 2015, §III.B). SWIG will not convert `void*` to `double*` by
//! itself — the paper's `blobutils` library bridges those "simple but
//! myriad interlanguage complexities". This crate is that library:
//!
//! * [`Blob`] — an owned byte buffer with checked typed views
//!   (`f64`/`i64`/`i32` slices, UTF-8 strings),
//! * [`FortranArray`] — a column-major multidimensional `f64` array that
//!   round-trips through a self-describing blob encoding (the paper's
//!   "even multidimensional Fortran arrays"),
//! * [`BlobRegistry`] + handle strings — the SWIG-pointer-style indirection
//!   that lets a string-valued Tcl interpreter pass raw buffers between
//!   native functions without copying them through script values,
//! * [`register_blob_commands`] — the `blobutils_*` Tcl command set.

mod array;
mod blob;
mod registry;
mod tcl;

pub use array::FortranArray;
pub use blob::{Blob, BlobError};
pub use registry::{BlobHandle, BlobRegistry, SharedRegistry};
pub use tcl::register_blob_commands;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn end_to_end_tcl_blob_flow() {
        let mut interp = tclish::Interp::new();
        let reg: SharedRegistry = Rc::new(RefCell::new(BlobRegistry::new()));
        register_blob_commands(&mut interp, reg.clone());

        let script = r#"
            set b [blobutils_create_floats {1.0 2.0 3.0}]
            blobutils_set_float $b 1 20.0
            set s [blobutils_sum_floats $b]
            blobutils_release $b
            set s
        "#;
        assert_eq!(interp.eval(script).unwrap(), "24.0");
        assert_eq!(reg.borrow().len(), 0, "handle released");
    }
}
