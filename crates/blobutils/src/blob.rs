//! The blob value type and its checked typed views.

use bytes::Bytes;

/// Error produced by a typed view whose shape does not fit the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobError {
    /// What went wrong, in user terms.
    pub message: String,
}

impl BlobError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        BlobError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blob error: {}", self.message)
    }
}

impl std::error::Error for BlobError {}

/// An owned chunk of binary data.
///
/// The runtime ships blobs opaquely (like strings, "but with appropriate
/// handling for binary data"); producers and consumers agree on the layout
/// and use the typed constructors/views here. All views are copy-based and
/// fully checked: no alignment traps, no `unsafe`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Blob {
    data: Vec<u8>,
}

impl Blob {
    /// An empty blob.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap raw bytes.
    pub fn from_bytes(data: impl Into<Vec<u8>>) -> Self {
        Blob { data: data.into() }
    }

    /// Encode a slice of doubles (little-endian), the most common
    /// scientific payload.
    pub fn from_f64s(values: &[f64]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Blob { data }
    }

    /// Encode a slice of 64-bit integers.
    pub fn from_i64s(values: &[i64]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 8);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Blob { data }
    }

    /// Encode a slice of 32-bit integers.
    pub fn from_i32s(values: &[i32]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 4);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        Blob { data }
    }

    /// Encode a UTF-8 string (no NUL terminator; lengths are explicit in
    /// this runtime, unlike C).
    #[allow(clippy::should_implement_trait)] // infallible, unlike FromStr
    pub fn from_str(s: &str) -> Self {
        Blob {
            data: s.as_bytes().to_vec(),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the blob holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Convert into a cheaply clonable [`Bytes`] for the wire.
    pub fn into_shared(self) -> Bytes {
        Bytes::from(self.data)
    }

    fn check_multiple(&self, width: usize, ty: &str) -> Result<usize, BlobError> {
        if !self.data.len().is_multiple_of(width) {
            return Err(BlobError::new(format!(
                "blob of {} bytes is not a whole number of {ty} ({width}-byte) elements",
                self.data.len()
            )));
        }
        Ok(self.data.len() / width)
    }

    /// Decode as little-endian doubles.
    pub fn to_f64s(&self) -> Result<Vec<f64>, BlobError> {
        let n = self.check_multiple(8, "f64")?;
        Ok((0..n)
            .map(|i| f64::from_le_bytes(self.data[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect())
    }

    /// Decode as little-endian 64-bit integers.
    pub fn to_i64s(&self) -> Result<Vec<i64>, BlobError> {
        let n = self.check_multiple(8, "i64")?;
        Ok((0..n)
            .map(|i| i64::from_le_bytes(self.data[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect())
    }

    /// Decode as little-endian 32-bit integers.
    pub fn to_i32s(&self) -> Result<Vec<i32>, BlobError> {
        let n = self.check_multiple(4, "i32")?;
        Ok((0..n)
            .map(|i| i32::from_le_bytes(self.data[i * 4..i * 4 + 4].try_into().unwrap()))
            .collect())
    }

    /// Decode as UTF-8 text.
    pub fn to_utf8(&self) -> Result<String, BlobError> {
        String::from_utf8(self.data.clone()).map_err(|_| BlobError::new("blob is not valid UTF-8"))
    }

    /// Read one double at element index `i`.
    pub fn get_f64(&self, i: usize) -> Result<f64, BlobError> {
        let off = i * 8;
        let bytes: [u8; 8] = self
            .data
            .get(off..off + 8)
            .ok_or_else(|| BlobError::new(format!("f64 index {i} out of range")))?
            .try_into()
            .unwrap();
        Ok(f64::from_le_bytes(bytes))
    }

    /// Write one double at element index `i`.
    pub fn set_f64(&mut self, i: usize, v: f64) -> Result<(), BlobError> {
        let off = i * 8;
        let slot = self
            .data
            .get_mut(off..off + 8)
            .ok_or_else(|| BlobError::new(format!("f64 index {i} out of range")))?;
        slot.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Number of f64 elements (errors if the size is not a multiple of 8).
    pub fn f64_len(&self) -> Result<usize, BlobError> {
        self.check_multiple(8, "f64")
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Self {
        Blob::from_bytes(v)
    }
}

impl From<Blob> for Bytes {
    fn from(b: Blob) -> Bytes {
        b.into_shared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f64_round_trip() {
        let vals = [0.0, -1.5, std::f64::consts::PI, f64::MAX];
        let b = Blob::from_f64s(&vals);
        assert_eq!(b.len(), 32);
        assert_eq!(b.to_f64s().unwrap(), vals);
    }

    #[test]
    fn i32_round_trip() {
        let vals = [i32::MIN, -1, 0, 1, i32::MAX];
        assert_eq!(Blob::from_i32s(&vals).to_i32s().unwrap(), vals);
    }

    #[test]
    fn misaligned_view_errors() {
        let b = Blob::from_bytes(vec![1, 2, 3]);
        assert!(b.to_f64s().is_err());
        assert!(b.to_i32s().is_err());
    }

    #[test]
    fn get_set_f64() {
        let mut b = Blob::from_f64s(&[1.0, 2.0]);
        b.set_f64(1, 9.5).unwrap();
        assert_eq!(b.get_f64(1).unwrap(), 9.5);
        assert!(b.get_f64(2).is_err());
        assert!(b.set_f64(2, 0.0).is_err());
    }

    #[test]
    fn string_round_trip() {
        let b = Blob::from_str("héllo");
        assert_eq!(b.to_utf8().unwrap(), "héllo");
        assert!(Blob::from_bytes(vec![0xFF, 0xFE]).to_utf8().is_err());
    }

    proptest! {
        #[test]
        fn f64_vec_round_trips(vals in proptest::collection::vec(-1e12f64..1e12, 0..64)) {
            let b = Blob::from_f64s(&vals);
            prop_assert_eq!(b.to_f64s().unwrap(), vals);
        }

        #[test]
        fn i64_vec_round_trips(vals in proptest::collection::vec(any::<i64>(), 0..64)) {
            let b = Blob::from_i64s(&vals);
            prop_assert_eq!(b.to_i64s().unwrap(), vals);
        }
    }
}
