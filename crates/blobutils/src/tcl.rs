//! The `blobutils_*` Tcl command set.
//!
//! These are the commands the paper's blobutils library exposes to Turbine
//! code: create buffers from script values, peek/poke typed elements, hand
//! handles to native functions, and release storage. Handles are the only
//! thing that crosses the string boundary; payload bytes stay in the
//! registry.

use std::rc::Rc;

use tclish::{Exception, Interp};

use crate::array::FortranArray;
use crate::blob::Blob;
use crate::registry::{BlobHandle, SharedRegistry};

fn ex(e: impl std::fmt::Display) -> Exception {
    Exception::error(e.to_string())
}

fn parse_f64(s: &str) -> Result<f64, Exception> {
    s.trim()
        .parse::<f64>()
        .map_err(|_| ex(format!("expected double but got \"{s}\"")))
}

fn parse_usize(s: &str) -> Result<usize, Exception> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| ex(format!("expected non-negative integer but got \"{s}\"")))
}

fn need(argv: &[String], n: usize, usage: &str) -> Result<(), Exception> {
    if argv.len() != n {
        return Err(ex(format!("wrong # args: should be \"{usage}\"")));
    }
    Ok(())
}

/// Register every `blobutils_*` command against a shared registry.
pub fn register_blob_commands(interp: &mut Interp, reg: SharedRegistry) {
    // blobutils_create_floats {v1 v2 ...} -> handle
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_create_floats", move |_, argv| {
            need(argv, 2, "blobutils_create_floats valueList")?;
            let els = tclish::parse_list(&argv[1]).map_err(ex)?;
            let vals: Result<Vec<f64>, Exception> = els.iter().map(|e| parse_f64(e)).collect();
            let h = reg.borrow_mut().insert(Blob::from_f64s(&vals?));
            Ok(h.to_token())
        });
    }
    // blobutils_zeroes n -> handle (n doubles, zero-filled)
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_zeroes", move |_, argv| {
            need(argv, 2, "blobutils_zeroes count")?;
            let n = parse_usize(&argv[1])?;
            let h = reg.borrow_mut().insert(Blob::from_f64s(&vec![0.0; n]));
            Ok(h.to_token())
        });
    }
    // blobutils_create_string text -> handle
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_create_string", move |_, argv| {
            need(argv, 2, "blobutils_create_string text")?;
            let h = reg.borrow_mut().insert(Blob::from_str(&argv[1]));
            Ok(h.to_token())
        });
    }
    // blobutils_size handle -> bytes
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_size", move |_, argv| {
            need(argv, 2, "blobutils_size handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            Ok(reg.borrow().get(h).map_err(ex)?.len().to_string())
        });
    }
    // blobutils_float_count handle -> number of doubles
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_float_count", move |_, argv| {
            need(argv, 2, "blobutils_float_count handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            Ok(reg
                .borrow()
                .get(h)
                .map_err(ex)?
                .f64_len()
                .map_err(ex)?
                .to_string())
        });
    }
    // blobutils_get_float handle index -> value
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_get_float", move |_, argv| {
            need(argv, 3, "blobutils_get_float handle index")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let i = parse_usize(&argv[2])?;
            let v = reg.borrow().get(h).map_err(ex)?.get_f64(i).map_err(ex)?;
            Ok(tclish::format_double(v))
        });
    }
    // blobutils_set_float handle index value
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_set_float", move |_, argv| {
            need(argv, 4, "blobutils_set_float handle index value")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let i = parse_usize(&argv[2])?;
            let v = parse_f64(&argv[3])?;
            reg.borrow_mut()
                .get_mut(h)
                .map_err(ex)?
                .set_f64(i, v)
                .map_err(ex)?;
            Ok(String::new())
        });
    }
    // blobutils_to_list handle -> Tcl list of doubles
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_to_list", move |_, argv| {
            need(argv, 2, "blobutils_to_list handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let vals = reg.borrow().get(h).map_err(ex)?.to_f64s().map_err(ex)?;
            let strs: Vec<String> = vals.iter().map(|v| tclish::format_double(*v)).collect();
            Ok(tclish::format_list(&strs))
        });
    }
    // blobutils_to_string handle -> UTF-8 contents
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_to_string", move |_, argv| {
            need(argv, 2, "blobutils_to_string handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            reg.borrow().get(h).map_err(ex)?.to_utf8().map_err(ex)
        });
    }
    // blobutils_sum_floats handle -> sum (a tiny "native" kernel)
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_sum_floats", move |_, argv| {
            need(argv, 2, "blobutils_sum_floats handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let vals = reg.borrow().get(h).map_err(ex)?.to_f64s().map_err(ex)?;
            Ok(tclish::format_double(vals.iter().sum()))
        });
    }
    // blobutils_release handle
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_release", move |_, argv| {
            need(argv, 2, "blobutils_release handle")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            reg.borrow_mut().release(h).map_err(ex)?;
            Ok(String::new())
        });
    }
    // blobutils_array_create {d1 d2 ...} -> handle to Fortran-order array blob
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_array_create", move |_, argv| {
            need(argv, 2, "blobutils_array_create dimsList")?;
            let dims: Result<Vec<usize>, Exception> = tclish::parse_list(&argv[1])
                .map_err(ex)?
                .iter()
                .map(|d| parse_usize(d))
                .collect();
            let dims = dims?;
            if dims.is_empty() || dims.contains(&0) {
                return Err(ex("dimensions must be positive"));
            }
            let arr = FortranArray::zeros(&dims);
            let h = reg.borrow_mut().insert(arr.to_blob());
            Ok(h.to_token())
        });
    }
    // blobutils_array_get handle {i j ...} -> value
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_array_get", move |_, argv| {
            need(argv, 3, "blobutils_array_get handle indexList")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let idx: Result<Vec<usize>, Exception> = tclish::parse_list(&argv[2])
                .map_err(ex)?
                .iter()
                .map(|d| parse_usize(d))
                .collect();
            let arr = FortranArray::from_blob(reg.borrow().get(h).map_err(ex)?).map_err(ex)?;
            let v = arr.get(&idx?).map_err(ex)?;
            Ok(tclish::format_double(v))
        });
    }
    // blobutils_array_set handle {i j ...} value
    {
        let reg = Rc::clone(&reg);
        interp.register("blobutils_array_set", move |_, argv| {
            need(argv, 4, "blobutils_array_set handle indexList value")?;
            let h = BlobHandle::parse(&argv[1]).map_err(ex)?;
            let idx: Result<Vec<usize>, Exception> = tclish::parse_list(&argv[2])
                .map_err(ex)?
                .iter()
                .map(|d| parse_usize(d))
                .collect();
            let v = parse_f64(&argv[3])?;
            let mut rb = reg.borrow_mut();
            let blob = rb.get_mut(h).map_err(ex)?;
            let mut arr = FortranArray::from_blob(blob).map_err(ex)?;
            arr.set(&idx?, v).map_err(ex)?;
            *blob = arr.to_blob();
            Ok(String::new())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::BlobRegistry;
    use std::cell::RefCell;

    fn setup() -> (Interp, SharedRegistry) {
        let mut i = Interp::new();
        let reg: SharedRegistry = Rc::new(RefCell::new(BlobRegistry::new()));
        register_blob_commands(&mut i, reg.clone());
        (i, reg)
    }

    #[test]
    fn create_and_read_back() {
        let (mut i, _) = setup();
        let out = i
            .eval("set b [blobutils_create_floats {1.5 2.5}]; blobutils_to_list $b")
            .unwrap();
        assert_eq!(out, "1.5 2.5");
    }

    #[test]
    fn zeroes_and_size() {
        let (mut i, _) = setup();
        assert_eq!(
            i.eval("blobutils_size [blobutils_zeroes 10]").unwrap(),
            "80"
        );
        assert_eq!(
            i.eval("blobutils_float_count [blobutils_zeroes 10]")
                .unwrap(),
            "10"
        );
    }

    #[test]
    fn string_blobs() {
        let (mut i, _) = setup();
        assert_eq!(
            i.eval("blobutils_to_string [blobutils_create_string hi]")
                .unwrap(),
            "hi"
        );
    }

    #[test]
    fn release_frees() {
        let (mut i, reg) = setup();
        i.eval("set b [blobutils_zeroes 4]; blobutils_release $b")
            .unwrap();
        assert!(reg.borrow().is_empty());
        assert!(i.eval("blobutils_size $b").is_err());
    }

    #[test]
    fn fortran_array_via_tcl() {
        let (mut i, _) = setup();
        let script = r#"
            set a [blobutils_array_create {3 2}]
            blobutils_array_set $a {2 1} 7.5
            blobutils_array_get $a {2 1}
        "#;
        assert_eq!(i.eval(script).unwrap(), "7.5");
    }

    #[test]
    fn out_of_bounds_error_reaches_tcl() {
        let (mut i, _) = setup();
        let err = i
            .eval("blobutils_array_get [blobutils_array_create {2 2}] {5 0}")
            .unwrap_err();
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn bad_handle_rejected() {
        let (mut i, _) = setup();
        assert!(i.eval("blobutils_size nonsense").is_err());
        assert!(i.eval("blobutils_size blob#9999").is_err());
    }
}
