//! Column-major (Fortran-order) multidimensional arrays.
//!
//! The FortWrap→SWIG path of §III.B exists so Swift scripts can hand
//! Fortran codes the multidimensional arrays they expect. A Fortran array
//! is column-major: the *first* index varies fastest in memory. The blob
//! encoding is self-describing (`ndims`, dims, payload) so an array created
//! by one task can be decoded by a task written in another language.

use crate::blob::{Blob, BlobError};

/// A dense column-major `f64` array of arbitrary rank.
#[derive(Debug, Clone, PartialEq)]
pub struct FortranArray {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl FortranArray {
    /// A zero-filled array with the given dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn zeros(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        let n = dims.iter().product();
        FortranArray {
            dims: dims.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Build from existing data (must match the product of `dims`).
    pub fn from_data(dims: &[usize], data: Vec<f64>) -> Result<Self, BlobError> {
        let n: usize = dims.iter().product();
        if dims.is_empty() || data.len() != n {
            return Err(BlobError::new(format!(
                "data length {} does not match dims {:?}",
                data.len(),
                dims
            )));
        }
        Ok(FortranArray {
            dims: dims.to_vec(),
            data,
        })
    }

    /// Array rank.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat column-major storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column-major flat offset of a multi-index.
    pub fn offset(&self, idx: &[usize]) -> Result<usize, BlobError> {
        if idx.len() != self.dims.len() {
            return Err(BlobError::new(format!(
                "index rank {} does not match array rank {}",
                idx.len(),
                self.dims.len()
            )));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (k, (&i, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(BlobError::new(format!(
                    "index {i} out of bounds for dimension {k} of size {d}"
                )));
            }
            off += i * stride;
            stride *= d;
        }
        Ok(off)
    }

    /// Read an element.
    pub fn get(&self, idx: &[usize]) -> Result<f64, BlobError> {
        Ok(self.data[self.offset(idx)?])
    }

    /// Write an element.
    pub fn set(&mut self, idx: &[usize], v: f64) -> Result<(), BlobError> {
        let off = self.offset(idx)?;
        self.data[off] = v;
        Ok(())
    }

    /// Encode: `u32 ndims, u32 dims..., f64 data...` (little-endian).
    pub fn to_blob(&self) -> Blob {
        let mut bytes = Vec::with_capacity(4 + 4 * self.dims.len() + 8 * self.data.len());
        bytes.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        for &d in &self.dims {
            bytes.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for v in &self.data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Blob::from_bytes(bytes)
    }

    /// Decode the [`FortranArray::to_blob`] encoding.
    pub fn from_blob(blob: &Blob) -> Result<Self, BlobError> {
        let b = blob.as_bytes();
        if b.len() < 4 {
            return Err(BlobError::new("blob too short for array header"));
        }
        let ndims = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
        if ndims == 0 || ndims > 16 {
            return Err(BlobError::new(format!("implausible rank {ndims}")));
        }
        let hdr = 4 + 4 * ndims;
        if b.len() < hdr {
            return Err(BlobError::new("blob too short for dims"));
        }
        let dims: Vec<usize> = (0..ndims)
            .map(|k| u32::from_le_bytes(b[4 + 4 * k..8 + 4 * k].try_into().unwrap()) as usize)
            .collect();
        let n: usize = dims.iter().product();
        if b.len() != hdr + 8 * n {
            return Err(BlobError::new(format!(
                "payload length {} does not match dims {:?}",
                b.len() - hdr,
                dims
            )));
        }
        let data: Vec<f64> = (0..n)
            .map(|i| f64::from_le_bytes(b[hdr + 8 * i..hdr + 8 * i + 8].try_into().unwrap()))
            .collect();
        FortranArray::from_data(&dims, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn column_major_layout() {
        // A 2x3 array: memory order is (0,0),(1,0),(0,1),(1,1),(0,2),(1,2).
        let mut a = FortranArray::zeros(&[2, 3]);
        a.set(&[0, 0], 1.0).unwrap();
        a.set(&[1, 0], 2.0).unwrap();
        a.set(&[0, 1], 3.0).unwrap();
        a.set(&[1, 2], 6.0).unwrap();
        assert_eq!(a.data()[0], 1.0);
        assert_eq!(a.data()[1], 2.0);
        assert_eq!(a.data()[2], 3.0);
        assert_eq!(a.data()[5], 6.0);
    }

    #[test]
    fn bounds_checked() {
        let a = FortranArray::zeros(&[2, 2]);
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
        assert!(a.get(&[0, 0, 0]).is_err());
    }

    #[test]
    fn rank_three_offsets() {
        let a = FortranArray::zeros(&[3, 4, 5]);
        assert_eq!(a.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(a.offset(&[1, 0, 0]).unwrap(), 1);
        assert_eq!(a.offset(&[0, 1, 0]).unwrap(), 3);
        assert_eq!(a.offset(&[0, 0, 1]).unwrap(), 12);
        assert_eq!(a.offset(&[2, 3, 4]).unwrap(), 2 + 3 * 3 + 4 * 12);
    }

    #[test]
    fn blob_round_trip() {
        let mut a = FortranArray::zeros(&[4, 3]);
        for i in 0..4 {
            for j in 0..3 {
                a.set(&[i, j], (i * 10 + j) as f64).unwrap();
            }
        }
        let b = a.to_blob();
        let back = FortranArray::from_blob(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn corrupt_blob_rejected() {
        let a = FortranArray::zeros(&[2, 2]);
        let mut bytes = a.to_blob().into_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(FortranArray::from_blob(&Blob::from_bytes(bytes)).is_err());
        assert!(FortranArray::from_blob(&Blob::from_bytes(vec![9, 0, 0, 0])).is_err());
    }

    proptest! {
        #[test]
        fn round_trips_any_shape(
            d1 in 1usize..6,
            d2 in 1usize..6,
            d3 in 1usize..4,
            seed in any::<u64>()
        ) {
            let n = d1 * d2 * d3;
            let mut x = seed | 1;
            let data: Vec<f64> = (0..n).map(|_| {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                (x % 1000) as f64 / 7.0
            }).collect();
            let a = FortranArray::from_data(&[d1, d2, d3], data).unwrap();
            let back = FortranArray::from_blob(&a.to_blob()).unwrap();
            prop_assert_eq!(back, a);
        }
    }
}
