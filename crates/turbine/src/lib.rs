//! # turbine — the distributed-memory dataflow engine
//!
//! Turbine evaluates Swift semantics "in a distributed manner (no
//! bottleneck)" (Wozniak et al., CLUSTER 2015, §II.B): STC compiles Swift
//! to *Turbine code* — Tcl that calls the `turbine::*` command set — and at
//! run time every rank is an engine, an ADLB server, or a worker (Fig. 2).
//!
//! This crate supplies:
//!
//! * the **typed datum layer** ([`types`]): void/int/float/string/blob
//!   futures and containers, encoded onto the ADLB data store;
//! * the **`turbine::*` Tcl command set** ([`commands`]): data creation,
//!   stores/retrieves, containers, rules, task spawning, `python`/`r`
//!   leaf evaluation, blob utilities, and the shell interface;
//! * the **engine** ([`engine`]): data-dependent *rules* that fire when
//!   their input futures close (driven by ADLB notification tasks), local
//!   evaluation of control actions, and distribution of leaf tasks;
//! * the **worker** ([`worker`]): the leaf-task executor with per-rank
//!   embedded Tcl/Python/R interpreters under the §III.C
//!   retain-vs-reinitialize policy;
//! * the **Tcl runtime library** ([`library`]): the pure-Tcl procs
//!   (`swt:*`) that STC-generated code calls for arithmetic, string ops,
//!   printf, and loop splitting — the analogue of Turbine's `lib/*.tcl`;
//! * the **per-rank driver** ([`run`]): role dispatch and output
//!   collection for a whole simulated machine.
//!
//! The integration tests in this crate run hand-written Turbine code; the
//! `stc` crate generates such code from Swift source, and `swiftt-core`
//! glues both into the public API.

pub mod commands;
pub mod engine;
pub mod library;
pub mod run;
pub mod types;
pub mod worker;

pub use commands::{Ctx, SharedCtx};
pub use run::{
    run_rank, run_rank_tenants, run_rank_tenants_with, run_rank_with, RankOutput, Role,
    TurbineConfig, TurbineProgram,
};
pub use types::{InterpPolicy, TurbineType};
