//! Turbine's typed data model and its byte encodings.
//!
//! Swift/T variables are automatically converted to Tcl values, which "are
//! oriented toward string representations" (§III.A) — so every scalar
//! except blobs is encoded as its string form, and blobs are raw bytes
//! (§III.B). The ADLB data store ships these encodings opaquely.

use bytes::Bytes;

/// The Swift/Turbine data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TurbineType {
    /// Pure synchronization datum, no payload.
    Void,
    /// 64-bit integer.
    Integer,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    String,
    /// Binary large object (§III.B).
    Blob,
    /// Container (Swift array): subscript → member.
    Container,
}

impl TurbineType {
    /// The ADLB type tag for this type.
    pub fn tag(self) -> u8 {
        match self {
            TurbineType::Void => 0,
            TurbineType::Integer => 1,
            TurbineType::Float => 2,
            TurbineType::String => 3,
            TurbineType::Blob => 4,
            TurbineType::Container => adlb::TYPE_TAG_CONTAINER,
        }
    }

    /// Inverse of [`TurbineType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => TurbineType::Void,
            1 => TurbineType::Integer,
            2 => TurbineType::Float,
            3 => TurbineType::String,
            4 => TurbineType::Blob,
            adlb::TYPE_TAG_CONTAINER => TurbineType::Container,
            _ => return None,
        })
    }

    /// The name used in Turbine code (`turbine::create <id> integer`).
    pub fn name(self) -> &'static str {
        match self {
            TurbineType::Void => "void",
            TurbineType::Integer => "integer",
            TurbineType::Float => "float",
            TurbineType::String => "string",
            TurbineType::Blob => "blob",
            TurbineType::Container => "container",
        }
    }

    /// Parse a Turbine code type name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "void" => TurbineType::Void,
            "integer" => TurbineType::Integer,
            "float" => TurbineType::Float,
            "string" => TurbineType::String,
            "blob" => TurbineType::Blob,
            "container" => TurbineType::Container,
            _ => return None,
        })
    }
}

/// Encode an integer for the store.
pub fn encode_integer(v: i64) -> Bytes {
    Bytes::from(v.to_string())
}

/// Encode a float for the store (Tcl form: always distinguishable from an
/// int).
pub fn encode_float(v: f64) -> Bytes {
    Bytes::from(tclish::format_double(v))
}

/// Encode a string for the store.
pub fn encode_string(v: &str) -> Bytes {
    Bytes::copy_from_slice(v.as_bytes())
}

/// Decode an integer payload.
pub fn decode_integer(b: &[u8]) -> Result<i64, String> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.trim().parse::<i64>().ok())
        .ok_or_else(|| format!("datum is not an integer: {:?}", String::from_utf8_lossy(b)))
}

/// Decode a float payload.
pub fn decode_float(b: &[u8]) -> Result<f64, String> {
    std::str::from_utf8(b)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .ok_or_else(|| format!("datum is not a float: {:?}", String::from_utf8_lossy(b)))
}

/// Decode a string payload.
pub fn decode_string(b: &[u8]) -> Result<String, String> {
    String::from_utf8(b.to_vec()).map_err(|_| "datum is not valid UTF-8".to_string())
}

/// The interpreter state policy of §III.C: keep interpreter state across
/// leaf tasks, or rebuild per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpPolicy {
    /// Keep Python/R interpreter state between tasks (fast; state leaks
    /// are the programmer's to manage — "old interpreter state can also be
    /// used to store useful data if the programmer is careful").
    #[default]
    Retain,
    /// Tear down and reinitialize interpreters after every task (clean,
    /// slower).
    Reinitialize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for t in [
            TurbineType::Void,
            TurbineType::Integer,
            TurbineType::Float,
            TurbineType::String,
            TurbineType::Blob,
            TurbineType::Container,
        ] {
            assert_eq!(TurbineType::from_tag(t.tag()), Some(t));
            assert_eq!(TurbineType::from_name(t.name()), Some(t));
        }
        assert_eq!(TurbineType::from_tag(250), None);
        assert_eq!(TurbineType::from_name("goat"), None);
    }

    #[test]
    fn scalar_encodings() {
        assert_eq!(decode_integer(&encode_integer(-42)).unwrap(), -42);
        assert_eq!(decode_float(&encode_float(2.5)).unwrap(), 2.5);
        assert_eq!(decode_float(&encode_float(2.0)).unwrap(), 2.0);
        assert_eq!(&encode_float(2.0)[..], b"2.0");
        assert_eq!(decode_string(&encode_string("héllo")).unwrap(), "héllo");
        assert!(decode_integer(b"xyz").is_err());
        assert!(decode_float(b"").is_err());
    }
}
