//! Per-rank driver: role assignment, program startup, engine loop, output
//! collection.
//!
//! This is the analogue of `turbine::start`: given a compiled program
//! (preamble of proc definitions + a main body), each rank takes its role
//! from the layout (Fig. 2) and runs to global termination.

use std::cell::RefCell;
use std::rc::Rc;

use adlb::{AdlbClient, Layout, ServerConfig, ServerStats};
use mpisim::{Comm, Rank};
use tclish::Interp;

use crate::commands::{self, Ctx, SharedCtx};
use crate::types::InterpPolicy;
use crate::worker;

/// The role a rank plays (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Evaluates Swift logic: rules, control actions.
    Engine,
    /// Executes leaf tasks.
    Worker,
    /// ADLB server: queues, data store, load balancing.
    Server,
}

/// Machine configuration for a run.
#[derive(Debug, Clone)]
pub struct TurbineConfig {
    /// Number of ADLB server ranks (at the top of the rank space).
    pub servers: usize,
    /// Number of engine ranks (at the bottom of the rank space). Engine 0
    /// evaluates the program's main body.
    pub engines: usize,
    /// §III.C interpreter policy on workers.
    pub policy: InterpPolicy,
    /// ADLB server tunables.
    pub server: ServerConfig,
    /// Client-side wire batching: get prefetch and put pipelining. On by
    /// default; switch off (the E5 ablation) to recover the PR 1
    /// one-task-per-round-trip protocol.
    pub batching: bool,
}

impl Default for TurbineConfig {
    fn default() -> Self {
        TurbineConfig {
            servers: 1,
            engines: 1,
            policy: InterpPolicy::Retain,
            server: ServerConfig::default(),
            batching: true,
        }
    }
}

impl TurbineConfig {
    /// The ADLB client knobs implied by [`TurbineConfig::batching`]:
    /// prefetch batches of tasks and pipeline puts when on, PR 1 wire
    /// behavior when off. Puts from engines and workers are always safe to
    /// buffer because every blocking client operation flushes them first.
    pub fn client_config(&self) -> adlb::ClientConfig {
        if self.batching {
            adlb::ClientConfig {
                prefetch: 8,
                put_buffer: 16,
                // Stdout chunks ship to the server as soon as a loop
                // iteration produces them: buffering would widen the
                // window of output a rank death can lose.
                output_buffer: 0,
            }
        } else {
            adlb::ClientConfig::unbatched()
        }
    }
}

impl TurbineConfig {
    /// The ADLB layout for a world of `size` ranks.
    pub fn layout(&self, size: usize) -> Layout {
        Layout::new(size, self.servers)
    }

    /// The role of `rank` in a world of `size` ranks.
    pub fn role(&self, size: usize, rank: Rank) -> Role {
        let layout = self.layout(size);
        if layout.is_server(rank) {
            Role::Server
        } else if rank < self.engines {
            Role::Engine
        } else {
            Role::Worker
        }
    }

    /// Validate against a world size: need at least one engine, and a
    /// worker if any leaf tasks are to run.
    pub fn validate(&self, size: usize) {
        let clients = size - self.servers;
        assert!(self.engines >= 1, "need at least one engine");
        assert!(
            clients > self.engines,
            "need at least one worker rank (size {size}, servers {}, engines {})",
            self.servers,
            self.engines
        );
    }
}

/// A compiled Turbine program.
#[derive(Debug, Clone, Default)]
pub struct TurbineProgram {
    /// Proc definitions and package setup; evaluated on every engine and
    /// worker before any task runs.
    pub preamble: String,
    /// The program body; evaluated on engine 0 only.
    pub main: String,
    /// Program arguments, readable via `turbine::argv` / Swift `argv()`.
    pub args: Vec<(String, String)>,
}

/// What one rank reports after the run.
#[derive(Debug, Clone)]
pub struct RankOutput {
    /// The role this rank played.
    pub role: Role,
    /// Everything the rank's interpreter wrote via `puts` (and embedded
    /// interpreter output).
    pub stdout: String,
    /// Leaf tasks executed (workers).
    pub tasks_executed: u64,
    /// Leaf tasks that failed in a contained way (workers).
    pub tasks_failed: u64,
    /// Rules created (engines).
    pub rules_created: u64,
    /// Rules fired (engines).
    pub rules_fired: u64,
    /// Python/R interpreter initializations.
    pub interp_inits: u64,
    /// Server statistics (servers only).
    pub server_stats: Option<ServerStats>,
    /// Per-client stdout streams this rank accumulated (servers only):
    /// everything each engine/worker shipped via the incremental output
    /// stream, which survives the producing rank's death.
    pub server_streams: Vec<(Rank, String)>,
    /// Client ranks whose stream is known-incomplete — the rank died
    /// mid-run (servers only).
    pub truncated_streams: Vec<Rank>,
}

/// Ships the interpreter's captured stdout to the ADLB server tier in
/// increments: everything `puts` appended since the last ship goes out as
/// one fire-and-forget `Output` message. Called before each blocking
/// `get`, so a rank death can only lose the output of the task it was
/// actively running — everything earlier already lives on (and is
/// replicated by) its server.
pub struct OutputStreamer {
    buf: Rc<RefCell<String>>,
    shipped: usize,
}

impl OutputStreamer {
    /// Stream increments of `buf` (an [`Interp::capture_output`] buffer).
    pub fn new(buf: Rc<RefCell<String>>) -> Self {
        OutputStreamer { buf, shipped: 0 }
    }

    /// Ship whatever was appended since the last call.
    pub fn ship(&mut self, client: &mut AdlbClient) {
        let b = self.buf.borrow();
        if b.len() > self.shipped {
            client.send_output(&b[self.shipped..]);
            self.shipped = b.len();
        }
    }
}

/// Run one rank of the machine to global termination.
///
/// # Panics
/// Panics on Tcl errors in the program (poisoning the world so other
/// ranks fail fast rather than hanging).
pub fn run_rank(comm: Comm, config: &TurbineConfig, program: &TurbineProgram) -> RankOutput {
    run_rank_with(comm, config, program, |_| {})
}

/// Like [`run_rank`], with a hook that customizes each engine/worker
/// interpreter after the `turbine::*` commands are registered — this is
/// where the host attaches native libraries (the SWIG path of §III.B) and
/// extra in-memory Tcl packages.
pub fn run_rank_with(
    comm: Comm,
    config: &TurbineConfig,
    program: &TurbineProgram,
    setup: impl Fn(&mut Interp),
) -> RankOutput {
    let size = comm.size();
    config.validate(size);
    let rank = comm.rank();
    let role = config.role(size, rank);
    let layout = config.layout(size);

    if role == Role::Server {
        let outcome = adlb::serve_ext(comm, layout, config.server.clone());
        return RankOutput {
            role,
            stdout: String::new(),
            tasks_executed: 0,
            tasks_failed: 0,
            rules_created: 0,
            rules_fired: 0,
            interp_inits: 0,
            server_stats: Some(outcome.stats),
            server_streams: outcome.streams,
            truncated_streams: outcome.truncated,
        };
    }

    let client = AdlbClient::with_config(comm, layout, config.client_config());
    let ctx = Ctx::new(client, role == Role::Engine, config.policy);
    ctx.borrow_mut().args = program.args.iter().cloned().collect();
    let mut interp = Interp::new();
    let buf = interp.capture_output();
    commands::register(&mut interp, ctx.clone());
    setup(&mut interp);

    // The runtime library plus the program's own definitions are an
    // in-memory "static package" (§IV): no filesystem involved.
    interp
        .eval(crate::library::TURBINE_LIB)
        .unwrap_or_else(|e| panic!("turbine library failed to load: {e}"));
    if !program.preamble.is_empty() {
        interp
            .eval(&program.preamble)
            .unwrap_or_else(|e| panic!("program preamble failed on rank {rank}: {e}"));
    }
    interp.set_var("turbine::n_engines", config.engines.to_string());
    interp.set_var(
        "turbine::n_workers",
        (size - config.servers - config.engines).to_string(),
    );

    let mut stream = OutputStreamer::new(buf.clone());
    match role {
        Role::Engine => {
            if rank == 0 {
                interp
                    .eval(&program.main)
                    .unwrap_or_else(|e| panic!("program main failed: {e}"));
            }
            engine_loop(&mut interp, &ctx, &mut stream)
                .unwrap_or_else(|e| panic!("engine {rank} failed: {e}"));
        }
        Role::Worker => {
            worker::worker_loop(&mut interp, &ctx, &mut stream)
                .unwrap_or_else(|e| panic!("worker {rank} task failed: {e}"));
        }
        Role::Server => unreachable!(),
    }

    let c = ctx.borrow();
    let stdout = buf.borrow().clone();
    RankOutput {
        role,
        stdout,
        tasks_executed: c.tasks_executed,
        tasks_failed: c.tasks_failed,
        rules_created: c.engine.rules_created,
        rules_fired: c.engine.rules_fired,
        interp_inits: c.interp_inits,
        server_stats: None,
        server_streams: Vec::new(),
        truncated_streams: Vec::new(),
    }
}

/// The engine loop: drain locally ready actions, then block on control
/// tasks and data-close notifications until global termination. Output
/// produced so far streams to the server tier before each blocking get.
pub fn engine_loop(
    interp: &mut Interp,
    ctx: &SharedCtx,
    stream: &mut OutputStreamer,
) -> Result<(), tclish::TclError> {
    loop {
        // Drain everything ready to run on this engine.
        loop {
            let action = ctx.borrow_mut().engine.ready.pop_front();
            match action {
                Some(a) => {
                    interp.eval(&a)?;
                }
                None => break,
            }
        }
        stream.ship(&mut ctx.borrow_mut().client);
        let task = ctx
            .borrow_mut()
            .client
            .get(&[adlb::WORK_TYPE_CONTROL, adlb::WORK_TYPE_NOTIFY]);
        match task {
            None => {
                let c = ctx.borrow();
                // An aborted run (a server died with no replica to
                // promote) may look "complete" to the engine — tasks
                // that died with the shard leave no unfired rule behind.
                // The shutdown notice carries the diagnosis; fail the
                // run with it instead of reporting partial output as
                // success.
                if let Some(reason) = c.client.run_aborted() {
                    return Err(tclish::TclError::new(format!("run aborted: {reason}")));
                }
                // Global termination with rules still waiting means their
                // input futures can never close: a dataflow deadlock in
                // the user program (e.g. reading a never-assigned
                // variable, or a task quarantined after repeated
                // failures). Report it like Swift/T does, with the
                // server's quarantine reports when there are any.
                let waiting = c.engine.rules_waiting();
                if waiting > 0 {
                    let mut msg = format!(
                        "dataflow deadlock: {waiting} rule(s) never fired; \
                         some futures were never assigned"
                    );
                    for report in c.client.quarantine_reports() {
                        msg.push_str("\n  ");
                        msg.push_str(report);
                    }
                    return Err(tclish::TclError::new(msg));
                }
                return Ok(());
            }
            Some(t) if t.work_type == adlb::WORK_TYPE_NOTIFY => {
                // A malformed notification must not take the engine rank
                // down: skip it and keep serving (the td it named, if
                // any, will be re-learned through the closed-cache on
                // the next subscribe).
                let Some(id) = t
                    .payload
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
                else {
                    eprintln!(
                        "turbine engine {}: malformed notify payload ({} bytes); dropped",
                        ctx.borrow_mut().client.rank(),
                        t.payload.len()
                    );
                    continue;
                };
                let dispatches = ctx.borrow_mut().engine.fire(id);
                let mut c = ctx.borrow_mut();
                for d in dispatches {
                    c.perform(d);
                }
            }
            Some(t) => {
                let code = std::str::from_utf8(&t.payload)
                    .map_err(|_| tclish::TclError::new("non-UTF-8 control task"))?;
                interp.eval(code)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;

    /// Run a whole machine; returns concatenated stdout (rank order) and
    /// the per-rank outputs.
    pub fn run_machine(
        size: usize,
        config: TurbineConfig,
        program: TurbineProgram,
    ) -> (String, Vec<RankOutput>) {
        let outs = World::run(size, move |comm| run_rank(comm, &config, &program));
        let stdout = outs
            .iter()
            .map(|o| o.stdout.as_str())
            .collect::<Vec<_>>()
            .join("");
        (stdout, outs)
    }

    #[test]
    fn hello_world_from_main() {
        let (stdout, outs) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "puts {hello distributed world}".into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "hello distributed world\n");
        assert_eq!(outs[2].role, Role::Server);
    }

    #[test]
    fn work_task_runs_on_worker() {
        let (_, outs) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "turbine::spawn work 0 {puts {from worker}}".into(),
                args: Vec::new(),
            },
        );
        assert_eq!(outs[1].role, Role::Worker);
        assert_eq!(outs[1].stdout, "from worker\n");
        assert_eq!(outs[1].tasks_executed, 1);
    }

    #[test]
    fn dataflow_pipeline_end_to_end() {
        // x -> f(x) on a worker -> printed by a trace rule on the engine.
        let main = r#"
            set x [turbine::unique]; turbine::create $x integer
            set y [turbine::unique]; turbine::create $y integer
            turbine::rule [list $x] "swt:double_task $y $x" work
            turbine::rule [list $y] "swt:trace_body {integer} $y" control
            turbine::store_integer $x 21
        "#;
        let preamble = r#"
            proc swt:double_task {o i} {
                turbine::store_integer $o [expr {2 * [turbine::retrieve_integer $i]}]
            }
        "#;
        let (stdout, outs) = run_machine(
            4,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: preamble.into(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "trace: 42\n");
        let total_tasks: u64 = outs.iter().map(|o| o.tasks_executed).sum();
        assert_eq!(total_tasks, 1);
        assert!(outs[0].rules_fired >= 2);
    }

    #[test]
    fn range_foreach_distributes_chunks() {
        // Sum of squares over [1..32] via distributed chunks feeding a
        // container, printed when the container closes.
        let preamble = r#"
            proc loop_body {i idx c} {
                set t [turbine::unique]; turbine::create $t integer
                turbine::write_refcount_incr $c 1
                swt:container_deferred_insert $c $i $t integer
                turbine::rule {} "swt:square_task $t $i" work
            }
            proc swt:square_task {o i} {
                turbine::store_integer $o [expr {$i * $i}]
            }
            proc report {k v} { }
        "#;
        let main = r#"
            set c [turbine::unique]; turbine::create $c container
            swt:range_foreach loop_body [list $c] [list $c] 1 32 4
            turbine::container_close $c
            turbine::rule [list $c] "print_sum $c" control
            proc print_sum {c} {
                set total 0
                foreach v [turbine::container_values $c] { incr total $v }
                puts "sum=$total"
            }
        "#;
        let (stdout, outs) = run_machine(
            6,
            TurbineConfig {
                engines: 2,
                ..TurbineConfig::default()
            },
            TurbineProgram {
                preamble: preamble.into(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        // 1^2 + ... + 32^2 = 32*33*65/6 = 11440.
        assert_eq!(stdout, "sum=11440\n");
        let tasks: u64 = outs.iter().map(|o| o.tasks_executed).sum();
        assert_eq!(tasks, 32, "one leaf task per iteration");
    }

    #[test]
    fn multiple_workers_share_leaf_tasks() {
        let main = r#"
            for {set i 0} {$i < 40} {incr i} {
                turbine::spawn work 0 "puts task-$i"
            }
        "#;
        let (stdout, outs) = run_machine(
            7,
            TurbineConfig {
                servers: 2,
                ..TurbineConfig::default()
            },
            TurbineProgram {
                preamble: String::new(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        let lines = stdout.lines().count();
        assert_eq!(lines, 40);
        let busy_workers = outs
            .iter()
            .filter(|o| o.role == Role::Worker && o.tasks_executed > 0)
            .count();
        assert!(
            busy_workers >= 2,
            "load balancing must involve more than one worker, got {busy_workers}"
        );
    }

    #[test]
    fn python_leaf_through_dataflow() {
        let main = r#"
            set code [turbine::unique]; turbine::create $code string
            set sexpr [turbine::unique]; turbine::create $sexpr string
            set out [turbine::unique]; turbine::create $out string
            swt:python $out $code $sexpr
            turbine::rule [list $out] "swt:trace_body {string} $out" control
            turbine::store_string $code {n = 10
result = sum(range(n))}
            turbine::store_string $sexpr {result}
        "#;
        let (stdout, _) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "trace: 45\n");
    }

    #[test]
    #[should_panic(expected = "program main failed")]
    fn main_error_panics_cleanly() {
        run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "no_such_command_anywhere".into(),
                args: Vec::new(),
            },
        );
    }

    #[test]
    fn roles_assigned_as_documented() {
        let cfg = TurbineConfig {
            servers: 2,
            engines: 2,
            ..TurbineConfig::default()
        };
        assert_eq!(cfg.role(8, 0), Role::Engine);
        assert_eq!(cfg.role(8, 1), Role::Engine);
        assert_eq!(cfg.role(8, 2), Role::Worker);
        assert_eq!(cfg.role(8, 5), Role::Worker);
        assert_eq!(cfg.role(8, 6), Role::Server);
        assert_eq!(cfg.role(8, 7), Role::Server);
    }
}
