//! Per-rank driver: role assignment, program startup, engine loop, output
//! collection.
//!
//! This is the analogue of `turbine::start`: given a compiled program
//! (preamble of proc definitions + a main body), each rank takes its role
//! from the layout (Fig. 2) and runs to global termination.

use std::cell::RefCell;
use std::rc::Rc;

use adlb::{AdlbClient, Layout, ServerConfig, ServerStats, TenantSpec, TenantStats};
use mpisim::{Comm, Rank};
use tclish::Interp;

use crate::commands::{self, Ctx, SharedCtx};
use crate::types::InterpPolicy;
use crate::worker;

/// The role a rank plays (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Evaluates Swift logic: rules, control actions.
    Engine,
    /// Executes leaf tasks.
    Worker,
    /// ADLB server: queues, data store, load balancing.
    Server,
}

/// Machine configuration for a run.
#[derive(Debug, Clone)]
pub struct TurbineConfig {
    /// Number of ADLB server ranks (at the top of the rank space).
    pub servers: usize,
    /// Number of engine ranks (at the bottom of the rank space). Engine 0
    /// evaluates the program's main body.
    pub engines: usize,
    /// §III.C interpreter policy on workers.
    pub policy: InterpPolicy,
    /// ADLB server tunables.
    pub server: ServerConfig,
    /// Client-side wire batching: get prefetch and put pipelining. On by
    /// default; switch off (the E5 ablation) to recover the PR 1
    /// one-task-per-round-trip protocol.
    pub batching: bool,
}

impl Default for TurbineConfig {
    fn default() -> Self {
        TurbineConfig {
            servers: 1,
            engines: 1,
            policy: InterpPolicy::Retain,
            server: ServerConfig::default(),
            batching: true,
        }
    }
}

impl TurbineConfig {
    /// The ADLB client knobs implied by [`TurbineConfig::batching`]:
    /// prefetch batches of tasks and pipeline puts when on, PR 1 wire
    /// behavior when off. Puts from engines and workers are always safe to
    /// buffer because every blocking client operation flushes them first.
    pub fn client_config(&self) -> adlb::ClientConfig {
        if self.batching {
            adlb::ClientConfig {
                prefetch: 8,
                put_buffer: 16,
                // Stdout chunks ship to the server as soon as a loop
                // iteration produces them: buffering would widen the
                // window of output a rank death can lose.
                output_buffer: 0,
            }
        } else {
            adlb::ClientConfig::unbatched()
        }
    }
}

impl TurbineConfig {
    /// The ADLB layout for a world of `size` ranks.
    pub fn layout(&self, size: usize) -> Layout {
        Layout::new(size, self.servers)
    }

    /// The role of `rank` in a world of `size` ranks.
    pub fn role(&self, size: usize, rank: Rank) -> Role {
        let layout = self.layout(size);
        if layout.is_server(rank) {
            Role::Server
        } else if rank < self.engines {
            Role::Engine
        } else {
            Role::Worker
        }
    }

    /// Validate against a world size: need at least one engine, and a
    /// worker if any leaf tasks are to run.
    pub fn validate(&self, size: usize) {
        let clients = size - self.servers;
        assert!(self.engines >= 1, "need at least one engine");
        assert!(
            clients > self.engines,
            "need at least one worker rank (size {size}, servers {}, engines {})",
            self.servers,
            self.engines
        );
    }
}

/// A compiled Turbine program.
#[derive(Debug, Clone, Default)]
pub struct TurbineProgram {
    /// Proc definitions and package setup; evaluated on every engine and
    /// worker before any task runs.
    pub preamble: String,
    /// The program body; evaluated on engine 0 only.
    pub main: String,
    /// Program arguments, readable via `turbine::argv` / Swift `argv()`.
    pub args: Vec<(String, String)>,
}

/// What one rank reports after the run.
#[derive(Debug, Clone)]
pub struct RankOutput {
    /// The role this rank played.
    pub role: Role,
    /// Everything the rank's interpreter wrote via `puts` (and embedded
    /// interpreter output).
    pub stdout: String,
    /// Leaf tasks executed (workers).
    pub tasks_executed: u64,
    /// Leaf tasks that failed in a contained way (workers).
    pub tasks_failed: u64,
    /// Rules created (engines).
    pub rules_created: u64,
    /// Rules fired (engines).
    pub rules_fired: u64,
    /// Python/R interpreter initializations.
    pub interp_inits: u64,
    /// Server statistics (servers only).
    pub server_stats: Option<ServerStats>,
    /// Per-client stdout streams this rank accumulated (servers only),
    /// keyed by (client rank, tenant): everything each engine/worker
    /// shipped via the incremental output stream, which survives the
    /// producing rank's death.
    pub server_streams: Vec<(Rank, u32, String)>,
    /// Client ranks whose stream is known-incomplete — the rank died
    /// mid-run (servers only).
    pub truncated_streams: Vec<Rank>,
    /// Per-tenant scheduling/admission accounting (servers only; empty in
    /// single-tenant runs, which never register tenants).
    pub tenant_rows: Vec<(u32, TenantStats)>,
    /// The tenant this rank served exclusively (multi-tenant engines).
    pub tenant: Option<u32>,
    /// Per-tenant stdout captured locally on this rank (multi-tenant
    /// engines and workers). [`RankOutput::stdout`] is the concatenation
    /// in tenant order.
    pub tenant_stdout: Vec<(u32, String)>,
    /// The first program error this rank contained (multi-tenant runs
    /// isolate failures per tenant instead of panicking the world).
    pub program_error: Option<String>,
}

impl RankOutput {
    /// A zeroed report for `role`; callers fill in what they measured.
    pub fn empty(role: Role) -> Self {
        RankOutput {
            role,
            stdout: String::new(),
            tasks_executed: 0,
            tasks_failed: 0,
            rules_created: 0,
            rules_fired: 0,
            interp_inits: 0,
            server_stats: None,
            server_streams: Vec::new(),
            truncated_streams: Vec::new(),
            tenant_rows: Vec::new(),
            tenant: None,
            tenant_stdout: Vec::new(),
            program_error: None,
        }
    }
}

/// Ships the interpreter's captured stdout to the ADLB server tier in
/// increments: everything `puts` appended since the last ship goes out as
/// one fire-and-forget `Output` message. Called before each blocking
/// `get`, so a rank death can only lose the output of the task it was
/// actively running — everything earlier already lives on (and is
/// replicated by) its server.
pub struct OutputStreamer {
    buf: Rc<RefCell<String>>,
    shipped: usize,
}

impl OutputStreamer {
    /// Stream increments of `buf` (an [`Interp::capture_output`] buffer).
    pub fn new(buf: Rc<RefCell<String>>) -> Self {
        OutputStreamer { buf, shipped: 0 }
    }

    /// Ship whatever was appended since the last call.
    pub fn ship(&mut self, client: &mut AdlbClient) {
        let b = self.buf.borrow();
        if b.len() > self.shipped {
            client.send_output(&b[self.shipped..]);
            self.shipped = b.len();
        }
    }
}

/// Run one rank of the machine to global termination.
///
/// # Panics
/// Panics on Tcl errors in the program (poisoning the world so other
/// ranks fail fast rather than hanging).
pub fn run_rank(comm: Comm, config: &TurbineConfig, program: &TurbineProgram) -> RankOutput {
    run_rank_with(comm, config, program, |_| {})
}

/// Like [`run_rank`], with a hook that customizes each engine/worker
/// interpreter after the `turbine::*` commands are registered — this is
/// where the host attaches native libraries (the SWIG path of §III.B) and
/// extra in-memory Tcl packages.
pub fn run_rank_with(
    comm: Comm,
    config: &TurbineConfig,
    program: &TurbineProgram,
    setup: impl Fn(&mut Interp),
) -> RankOutput {
    let size = comm.size();
    config.validate(size);
    let rank = comm.rank();
    let role = config.role(size, rank);
    let layout = config.layout(size);

    if role == Role::Server {
        let outcome = adlb::serve_ext(comm, layout, config.server.clone());
        return RankOutput {
            server_stats: Some(outcome.stats),
            server_streams: outcome.streams,
            truncated_streams: outcome.truncated,
            tenant_rows: outcome.tenant_rows,
            ..RankOutput::empty(role)
        };
    }

    let client = AdlbClient::with_config(comm, layout, config.client_config());
    let ctx = Ctx::new(client, role == Role::Engine, config.policy);
    ctx.borrow_mut().args = program.args.iter().cloned().collect();
    let mut interp = Interp::new();
    let buf = interp.capture_output();
    commands::register(&mut interp, ctx.clone());
    setup(&mut interp);

    // The runtime library plus the program's own definitions are an
    // in-memory "static package" (§IV): no filesystem involved.
    interp
        .eval(crate::library::TURBINE_LIB)
        .unwrap_or_else(|e| panic!("turbine library failed to load: {e}"));
    if !program.preamble.is_empty() {
        interp
            .eval(&program.preamble)
            .unwrap_or_else(|e| panic!("program preamble failed on rank {rank}: {e}"));
    }
    interp.set_var("turbine::n_engines", config.engines.to_string());
    interp.set_var(
        "turbine::n_workers",
        (size - config.servers - config.engines).to_string(),
    );

    let mut stream = OutputStreamer::new(buf.clone());
    match role {
        Role::Engine => {
            if rank == 0 {
                interp
                    .eval(&program.main)
                    .unwrap_or_else(|e| panic!("program main failed: {e}"));
            }
            engine_loop(&mut interp, &ctx, &mut stream)
                .unwrap_or_else(|e| panic!("engine {rank} failed: {e}"));
        }
        Role::Worker => {
            worker::worker_loop(&mut interp, &ctx, &mut stream)
                .unwrap_or_else(|e| panic!("worker {rank} task failed: {e}"));
        }
        Role::Server => unreachable!(),
    }

    let c = ctx.borrow();
    let stdout = buf.borrow().clone();
    RankOutput {
        stdout,
        tasks_executed: c.tasks_executed,
        tasks_failed: c.tasks_failed,
        rules_created: c.engine.rules_created,
        rules_fired: c.engine.rules_fired,
        interp_inits: c.interp_inits,
        ..RankOutput::empty(role)
    }
}

/// Build one engine/worker interpreter: `turbine::*` commands, the host
/// `setup` hook, the runtime library, and `preamble`. A preamble error is
/// returned (not panicked) so multi-tenant callers can contain it to the
/// offending tenant.
fn build_interp(
    ctx: &SharedCtx,
    config: &TurbineConfig,
    size: usize,
    preamble: &str,
    setup: &impl Fn(&mut Interp),
) -> (Interp, Rc<RefCell<String>>, Option<String>) {
    let mut interp = Interp::new();
    let buf = interp.capture_output();
    commands::register(&mut interp, ctx.clone());
    setup(&mut interp);
    interp
        .eval(crate::library::TURBINE_LIB)
        .unwrap_or_else(|e| panic!("turbine library failed to load: {e}"));
    let mut err = None;
    if !preamble.is_empty() {
        if let Err(e) = interp.eval(preamble) {
            err = Some(format!("program preamble failed: {e}"));
        }
    }
    interp.set_var("turbine::n_engines", config.engines.to_string());
    interp.set_var(
        "turbine::n_workers",
        (size - config.servers - config.engines).to_string(),
    );
    (interp, buf, err)
}

/// Run one rank of a *multi-tenant* machine: `programs[i]` runs as tenant
/// `programs[i].0.id`, evaluated by engine rank `i`, over the shared
/// worker/server fleet. Requires exactly one engine per program.
///
/// Unlike [`run_rank`], program errors do not panic the world: each
/// tenant's failures are contained to its own tasks and reported in
/// [`RankOutput::program_error`], so one broken program cannot take its
/// neighbors down.
pub fn run_rank_tenants(
    comm: Comm,
    config: &TurbineConfig,
    programs: &[(TenantSpec, TurbineProgram)],
) -> RankOutput {
    run_rank_tenants_with(comm, config, programs, |_| {})
}

/// Like [`run_rank_tenants`], with the same interpreter-setup hook as
/// [`run_rank_with`].
pub fn run_rank_tenants_with(
    comm: Comm,
    config: &TurbineConfig,
    programs: &[(TenantSpec, TurbineProgram)],
    setup: impl Fn(&mut Interp),
) -> RankOutput {
    let size = comm.size();
    config.validate(size);
    assert!(
        config.engines == programs.len(),
        "multi-tenant runs need exactly one engine per program \
         ({} engines, {} programs)",
        config.engines,
        programs.len()
    );
    let rank = comm.rank();
    let role = config.role(size, rank);
    let layout = config.layout(size);

    if role == Role::Server {
        let mut server_cfg = config.server.clone();
        server_cfg.tenants = programs.iter().map(|(s, _)| s.clone()).collect();
        let outcome = adlb::serve_ext(comm, layout, server_cfg);
        return RankOutput {
            server_stats: Some(outcome.stats),
            server_streams: outcome.streams,
            truncated_streams: outcome.truncated,
            tenant_rows: outcome.tenant_rows,
            ..RankOutput::empty(role)
        };
    }

    let client = AdlbClient::with_config(comm, layout, config.client_config());
    let ctx = Ctx::new(client, role == Role::Engine, config.policy);

    match role {
        Role::Engine => {
            let (spec, program) = &programs[rank];
            let tenant = spec.id;
            {
                let mut c = ctx.borrow_mut();
                c.args = program.args.iter().cloned().collect();
                c.client.set_tenant(tenant);
                c.client.set_get_filter(Some(tenant));
            }
            let (mut interp, buf, mut error) =
                build_interp(&ctx, config, size, &program.preamble, &setup);
            let mut stream = OutputStreamer::new(buf.clone());
            // Every engine is rank 0 of its own tenant: it runs its
            // program's main. A failed main is contained — the engine
            // keeps serving its notifications to global termination so
            // the rest of the world is undisturbed.
            if error.is_none() {
                if let Err(e) = interp.eval(&program.main) {
                    error = Some(format!("program main failed: {e}"));
                }
            }
            engine_loop_contained(&mut interp, &ctx, &mut stream, &mut error);
            let c = ctx.borrow();
            let stdout = buf.borrow().clone();
            RankOutput {
                stdout: stdout.clone(),
                rules_created: c.engine.rules_created,
                rules_fired: c.engine.rules_fired,
                interp_inits: c.interp_inits,
                tenant: Some(tenant),
                tenant_stdout: vec![(tenant, stdout)],
                program_error: error.map(|e| format!("tenant {} ({}): {e}", tenant, spec.name)),
                ..RankOutput::empty(role)
            }
        }
        Role::Worker => {
            let preambles: std::collections::HashMap<u32, (String, Vec<(String, String)>)> =
                programs
                    .iter()
                    .map(|(s, p)| (s.id, (p.preamble.clone(), p.args.clone())))
                    .collect();
            let mut first_err: Option<String> = None;
            let mut bufs: Vec<(u32, Rc<RefCell<String>>)> = Vec::new();
            let executed = {
                let mut build = |tenant: u32| {
                    let preamble = preambles
                        .get(&tenant)
                        .map(|(p, _)| p.as_str())
                        .unwrap_or("");
                    let (interp, buf, err) = build_interp(&ctx, config, size, preamble, &setup);
                    if let Some(e) = err {
                        if first_err.is_none() {
                            first_err = Some(format!("tenant {tenant}: {e}"));
                        }
                    }
                    bufs.push((tenant, buf.clone()));
                    (interp, OutputStreamer::new(buf))
                };
                let args_of = |tenant: u32| {
                    preambles
                        .get(&tenant)
                        .map(|(_, a)| a.iter().cloned().collect())
                        .unwrap_or_default()
                };
                worker::worker_loop_tenants(&ctx, &mut build, &args_of)
            };
            let _ = executed;
            bufs.sort_by_key(|(t, _)| *t);
            let tenant_stdout: Vec<(u32, String)> = bufs
                .into_iter()
                .map(|(t, b)| (t, b.borrow().clone()))
                .collect();
            let stdout = tenant_stdout
                .iter()
                .map(|(_, s)| s.as_str())
                .collect::<Vec<_>>()
                .join("");
            let c = ctx.borrow();
            RankOutput {
                stdout,
                tasks_executed: c.tasks_executed,
                tasks_failed: c.tasks_failed,
                interp_inits: c.interp_inits,
                tenant_stdout,
                program_error: first_err,
                ..RankOutput::empty(role)
            }
        }
        Role::Server => unreachable!(),
    }
}

/// The multi-tenant engine loop: like [`engine_loop`], but evaluation
/// errors are *contained* — recorded in `error` (first one wins) while
/// the engine keeps serving notifications and control tasks to global
/// termination, so one tenant's broken program cannot stall or abort its
/// neighbors. A dataflow deadlock at termination is only reported when no
/// earlier error explains it.
fn engine_loop_contained(
    interp: &mut Interp,
    ctx: &SharedCtx,
    stream: &mut OutputStreamer,
    error: &mut Option<String>,
) {
    let note = |error: &mut Option<String>, e: String| {
        if error.is_none() {
            *error = Some(e);
        }
    };
    loop {
        loop {
            let action = ctx.borrow_mut().engine.ready.pop_front();
            match action {
                Some(a) => {
                    if let Err(e) = interp.eval(&a) {
                        note(error, format!("rule action failed: {e}"));
                    }
                }
                None => break,
            }
        }
        stream.ship(&mut ctx.borrow_mut().client);
        let task = ctx
            .borrow_mut()
            .client
            .get(&[adlb::WORK_TYPE_CONTROL, adlb::WORK_TYPE_NOTIFY]);
        match task {
            None => {
                let c = ctx.borrow();
                if let Some(reason) = c.client.run_aborted() {
                    note(error, format!("run aborted: {reason}"));
                    return;
                }
                let waiting = c.engine.rules_waiting();
                if waiting > 0 && error.is_none() {
                    let mut msg = format!(
                        "dataflow deadlock: {waiting} rule(s) never fired; \
                         some futures were never assigned"
                    );
                    for report in c.client.quarantine_reports() {
                        msg.push_str("\n  ");
                        msg.push_str(report);
                    }
                    *error = Some(msg);
                }
                return;
            }
            Some(t) if t.work_type == adlb::WORK_TYPE_NOTIFY => {
                let Some(id) = t
                    .payload
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
                else {
                    continue;
                };
                let dispatches = ctx.borrow_mut().engine.fire(id);
                let mut c = ctx.borrow_mut();
                for d in dispatches {
                    c.perform(d);
                }
            }
            Some(t) => match std::str::from_utf8(&t.payload) {
                Ok(code) => {
                    if let Err(e) = interp.eval(code) {
                        note(error, format!("control task failed: {e}"));
                    }
                }
                Err(_) => note(error, "non-UTF-8 control task".to_string()),
            },
        }
    }
}

/// The engine loop: drain locally ready actions, then block on control
/// tasks and data-close notifications until global termination. Output
/// produced so far streams to the server tier before each blocking get.
pub fn engine_loop(
    interp: &mut Interp,
    ctx: &SharedCtx,
    stream: &mut OutputStreamer,
) -> Result<(), tclish::TclError> {
    loop {
        // Drain everything ready to run on this engine.
        loop {
            let action = ctx.borrow_mut().engine.ready.pop_front();
            match action {
                Some(a) => {
                    interp.eval(&a)?;
                }
                None => break,
            }
        }
        stream.ship(&mut ctx.borrow_mut().client);
        let task = ctx
            .borrow_mut()
            .client
            .get(&[adlb::WORK_TYPE_CONTROL, adlb::WORK_TYPE_NOTIFY]);
        match task {
            None => {
                let c = ctx.borrow();
                // An aborted run (a server died with no replica to
                // promote) may look "complete" to the engine — tasks
                // that died with the shard leave no unfired rule behind.
                // The shutdown notice carries the diagnosis; fail the
                // run with it instead of reporting partial output as
                // success.
                if let Some(reason) = c.client.run_aborted() {
                    return Err(tclish::TclError::new(format!("run aborted: {reason}")));
                }
                // Global termination with rules still waiting means their
                // input futures can never close: a dataflow deadlock in
                // the user program (e.g. reading a never-assigned
                // variable, or a task quarantined after repeated
                // failures). Report it like Swift/T does, with the
                // server's quarantine reports when there are any.
                let waiting = c.engine.rules_waiting();
                if waiting > 0 {
                    let mut msg = format!(
                        "dataflow deadlock: {waiting} rule(s) never fired; \
                         some futures were never assigned"
                    );
                    for report in c.client.quarantine_reports() {
                        msg.push_str("\n  ");
                        msg.push_str(report);
                    }
                    return Err(tclish::TclError::new(msg));
                }
                return Ok(());
            }
            Some(t) if t.work_type == adlb::WORK_TYPE_NOTIFY => {
                // A malformed notification must not take the engine rank
                // down: skip it and keep serving (the td it named, if
                // any, will be re-learned through the closed-cache on
                // the next subscribe).
                let Some(id) = t
                    .payload
                    .get(..8)
                    .and_then(|b| b.try_into().ok())
                    .map(u64::from_le_bytes)
                else {
                    eprintln!(
                        "turbine engine {}: malformed notify payload ({} bytes); dropped",
                        ctx.borrow_mut().client.rank(),
                        t.payload.len()
                    );
                    continue;
                };
                let dispatches = ctx.borrow_mut().engine.fire(id);
                let mut c = ctx.borrow_mut();
                for d in dispatches {
                    c.perform(d);
                }
            }
            Some(t) => {
                let code = std::str::from_utf8(&t.payload)
                    .map_err(|_| tclish::TclError::new("non-UTF-8 control task"))?;
                interp.eval(code)?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;

    /// Run a whole machine; returns concatenated stdout (rank order) and
    /// the per-rank outputs.
    pub fn run_machine(
        size: usize,
        config: TurbineConfig,
        program: TurbineProgram,
    ) -> (String, Vec<RankOutput>) {
        let outs = World::run(size, move |comm| run_rank(comm, &config, &program));
        let stdout = outs
            .iter()
            .map(|o| o.stdout.as_str())
            .collect::<Vec<_>>()
            .join("");
        (stdout, outs)
    }

    #[test]
    fn hello_world_from_main() {
        let (stdout, outs) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "puts {hello distributed world}".into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "hello distributed world\n");
        assert_eq!(outs[2].role, Role::Server);
    }

    #[test]
    fn work_task_runs_on_worker() {
        let (_, outs) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "turbine::spawn work 0 {puts {from worker}}".into(),
                args: Vec::new(),
            },
        );
        assert_eq!(outs[1].role, Role::Worker);
        assert_eq!(outs[1].stdout, "from worker\n");
        assert_eq!(outs[1].tasks_executed, 1);
    }

    #[test]
    fn dataflow_pipeline_end_to_end() {
        // x -> f(x) on a worker -> printed by a trace rule on the engine.
        let main = r#"
            set x [turbine::unique]; turbine::create $x integer
            set y [turbine::unique]; turbine::create $y integer
            turbine::rule [list $x] "swt:double_task $y $x" work
            turbine::rule [list $y] "swt:trace_body {integer} $y" control
            turbine::store_integer $x 21
        "#;
        let preamble = r#"
            proc swt:double_task {o i} {
                turbine::store_integer $o [expr {2 * [turbine::retrieve_integer $i]}]
            }
        "#;
        let (stdout, outs) = run_machine(
            4,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: preamble.into(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "trace: 42\n");
        let total_tasks: u64 = outs.iter().map(|o| o.tasks_executed).sum();
        assert_eq!(total_tasks, 1);
        assert!(outs[0].rules_fired >= 2);
    }

    #[test]
    fn range_foreach_distributes_chunks() {
        // Sum of squares over [1..32] via distributed chunks feeding a
        // container, printed when the container closes.
        let preamble = r#"
            proc loop_body {i idx c} {
                set t [turbine::unique]; turbine::create $t integer
                turbine::write_refcount_incr $c 1
                swt:container_deferred_insert $c $i $t integer
                turbine::rule {} "swt:square_task $t $i" work
            }
            proc swt:square_task {o i} {
                turbine::store_integer $o [expr {$i * $i}]
            }
            proc report {k v} { }
        "#;
        let main = r#"
            set c [turbine::unique]; turbine::create $c container
            swt:range_foreach loop_body [list $c] [list $c] 1 32 4
            turbine::container_close $c
            turbine::rule [list $c] "print_sum $c" control
            proc print_sum {c} {
                set total 0
                foreach v [turbine::container_values $c] { incr total $v }
                puts "sum=$total"
            }
        "#;
        let (stdout, outs) = run_machine(
            6,
            TurbineConfig {
                engines: 2,
                ..TurbineConfig::default()
            },
            TurbineProgram {
                preamble: preamble.into(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        // 1^2 + ... + 32^2 = 32*33*65/6 = 11440.
        assert_eq!(stdout, "sum=11440\n");
        let tasks: u64 = outs.iter().map(|o| o.tasks_executed).sum();
        assert_eq!(tasks, 32, "one leaf task per iteration");
    }

    #[test]
    fn multiple_workers_share_leaf_tasks() {
        let main = r#"
            for {set i 0} {$i < 40} {incr i} {
                turbine::spawn work 0 "puts task-$i"
            }
        "#;
        let (stdout, outs) = run_machine(
            7,
            TurbineConfig {
                servers: 2,
                ..TurbineConfig::default()
            },
            TurbineProgram {
                preamble: String::new(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        let lines = stdout.lines().count();
        assert_eq!(lines, 40);
        let busy_workers = outs
            .iter()
            .filter(|o| o.role == Role::Worker && o.tasks_executed > 0)
            .count();
        assert!(
            busy_workers >= 2,
            "load balancing must involve more than one worker, got {busy_workers}"
        );
    }

    #[test]
    fn python_leaf_through_dataflow() {
        let main = r#"
            set code [turbine::unique]; turbine::create $code string
            set sexpr [turbine::unique]; turbine::create $sexpr string
            set out [turbine::unique]; turbine::create $out string
            swt:python $out $code $sexpr
            turbine::rule [list $out] "swt:trace_body {string} $out" control
            turbine::store_string $code {n = 10
result = sum(range(n))}
            turbine::store_string $sexpr {result}
        "#;
        let (stdout, _) = run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: main.into(),
                args: Vec::new(),
            },
        );
        assert_eq!(stdout, "trace: 45\n");
    }

    #[test]
    #[should_panic(expected = "program main failed")]
    fn main_error_panics_cleanly() {
        run_machine(
            3,
            TurbineConfig::default(),
            TurbineProgram {
                preamble: String::new(),
                main: "no_such_command_anywhere".into(),
                args: Vec::new(),
            },
        );
    }

    #[test]
    fn two_tenants_isolate_procs_and_output() {
        // Both programs define a proc `who` with conflicting bodies and
        // run it on the shared workers: per-tenant interpreters must keep
        // the definitions apart, and every output line must be accounted
        // to the right tenant.
        use adlb::TenantSpec;
        let programs = vec![
            (
                TenantSpec::new(0, "alpha"),
                TurbineProgram {
                    preamble: "proc who {} { return alpha }".into(),
                    main: r#"
                        for {set i 0} {$i < 6} {incr i} {
                            turbine::spawn work 0 {puts [who]}
                        }
                    "#
                    .into(),
                    args: Vec::new(),
                },
            ),
            (
                TenantSpec::new(1, "beta").weight(2),
                TurbineProgram {
                    preamble: "proc who {} { return beta }".into(),
                    main: r#"
                        for {set i 0} {$i < 6} {incr i} {
                            turbine::spawn work 0 {puts [who]}
                        }
                    "#
                    .into(),
                    args: Vec::new(),
                },
            ),
        ];
        let config = TurbineConfig {
            engines: 2,
            ..TurbineConfig::default()
        };
        let outs = World::run(6, move |comm| run_rank_tenants(comm, &config, &programs));
        let mut per_tenant = [String::new(), String::new()];
        for o in &outs {
            assert!(o.program_error.is_none(), "{:?}", o.program_error);
            for (t, s) in &o.tenant_stdout {
                per_tenant[*t as usize].push_str(s);
            }
        }
        assert_eq!(per_tenant[0], "alpha\n".repeat(6));
        assert_eq!(per_tenant[1], "beta\n".repeat(6));
        // The server accounted both tenants.
        let rows = &outs[5].tenant_rows;
        assert_eq!(rows.len(), 2);
        for (_, r) in rows {
            assert!(r.delivered >= 6);
        }
    }

    #[test]
    fn tenant_failure_is_contained_to_its_program() {
        use adlb::TenantSpec;
        let programs = vec![
            (
                TenantSpec::new(0, "broken"),
                TurbineProgram {
                    preamble: String::new(),
                    main: "error {deliberate failure}".into(),
                    args: Vec::new(),
                },
            ),
            (
                TenantSpec::new(1, "healthy"),
                TurbineProgram {
                    preamble: String::new(),
                    main: "turbine::spawn work 0 {puts survived}".into(),
                    args: Vec::new(),
                },
            ),
        ];
        let config = TurbineConfig {
            engines: 2,
            ..TurbineConfig::default()
        };
        let outs = World::run(5, move |comm| run_rank_tenants(comm, &config, &programs));
        let broken = &outs[0];
        assert!(broken
            .program_error
            .as_deref()
            .is_some_and(|e| e.contains("deliberate failure")));
        let healthy: String = outs
            .iter()
            .flat_map(|o| o.tenant_stdout.iter())
            .filter(|(t, _)| *t == 1)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(healthy, "survived\n");
        assert!(outs[1].program_error.is_none());
    }

    #[test]
    fn roles_assigned_as_documented() {
        let cfg = TurbineConfig {
            servers: 2,
            engines: 2,
            ..TurbineConfig::default()
        };
        assert_eq!(cfg.role(8, 0), Role::Engine);
        assert_eq!(cfg.role(8, 1), Role::Engine);
        assert_eq!(cfg.role(8, 2), Role::Worker);
        assert_eq!(cfg.role(8, 5), Role::Worker);
        assert_eq!(cfg.role(8, 6), Role::Server);
        assert_eq!(cfg.role(8, 7), Role::Server);
    }
}
