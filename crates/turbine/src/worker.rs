//! The worker: leaf-task executor with embedded interpreters.
//!
//! Workers are the vast majority of ranks (Fig. 2). Each one loops on
//! `ADLB_Get(WORK)`, evaluating each task's Tcl fragment in its embedded
//! interpreter. The per-task interpreter policy of §III.C (retain vs.
//! reinitialize Python/R state) is applied between tasks.
//!
//! Task failures are *contained*: an eval error (or an undecodable
//! payload) is reported to the ADLB server as a negative acknowledgement
//! — the server retries or quarantines the task per its `RetryPolicy` —
//! and the worker keeps serving. A failed task may have left the embedded
//! Python/R interpreters in an arbitrary state, so they are reinitialized
//! regardless of the configured §III.C policy.

use std::collections::HashMap;

use tclish::{Interp, TclError};

use crate::commands::SharedCtx;
use crate::run::OutputStreamer;
use crate::types::InterpPolicy;

/// Evaluate one leaf task in `interp`, containing failures: success
/// increments the counters and applies the §III.C policy; an error is
/// negatively acknowledged and forces an embedded-interpreter reset.
/// Returns whether the task succeeded.
fn execute_task(interp: &mut Interp, ctx: &SharedCtx, task: &adlb::Task, count: &mut u64) -> bool {
    // Zero-copy hot path: the payload is a view into the arrival
    // buffer; validate UTF-8 in place instead of cloning it.
    let eval_start = mpisim::trace::now_us();
    let outcome = match std::str::from_utf8(&task.payload) {
        Ok(code) => interp.eval(code).map(|_| ()),
        Err(_) => Err(TclError::new("worker received non-UTF-8 task payload")),
    };
    let mut c = ctx.borrow_mut();
    match outcome {
        Ok(()) => {
            *count += 1;
            c.tasks_executed += 1;
            // One eval span per successful task: the trace-vs-counter
            // reconciliation oracle depends on this equality.
            mpisim::trace::record_since(mpisim::trace::KIND_TASK_EVAL, *count, eval_start);
            if c.policy == InterpPolicy::Reinitialize {
                // §III.C: clear interpreter state between tasks. The
                // next task that needs Python/R pays a fresh
                // initialization; blobs from the finished task are
                // released.
                c.python = None;
                c.r = None;
                c.blobs.borrow_mut().clear();
            }
            true
        }
        Err(e) => {
            c.tasks_failed += 1;
            eprintln!(
                "turbine worker {}: task failed (attempt {}): {e}",
                c.client.rank(),
                task.attempts + 1,
            );
            c.client.task_failed(&e.to_string());
            // The failed fragment may have left embedded interpreter
            // state half-mutated; force a clean slate.
            c.python = None;
            c.r = None;
            c.blobs.borrow_mut().clear();
            false
        }
    }
}

/// Run the worker loop until global termination. Returns the number of
/// tasks executed successfully. Each finished task's output streams to
/// the server tier before the next blocking get, so a later death of this
/// rank cannot lose it.
///
/// The `Result` is kept for API stability; task failures are contained
/// (counted in `Ctx::tasks_failed` and reported to the server), so this
/// never returns `Err`.
pub fn worker_loop(
    interp: &mut Interp,
    ctx: &SharedCtx,
    stream: &mut OutputStreamer,
) -> Result<u64, TclError> {
    let mut count = 0u64;
    loop {
        stream.ship(&mut ctx.borrow_mut().client);
        let task = ctx.borrow_mut().client.get(&[adlb::WORK_TYPE_WORK]);
        let Some(task) = task else {
            return Ok(count);
        };
        execute_task(interp, ctx, &task, &mut count);
    }
}

/// The multi-tenant worker loop: one shared ADLB client serving every
/// tenant's leaf tasks, with a lazily created Tcl interpreter *per
/// tenant* (each loaded with that tenant's preamble) so programs cannot
/// observe each other's procs or globals. Embedded Python/R state and
/// blobs are cleared on every tenant switch regardless of the configured
/// §III.C policy — interpreter state is never shared across tenants.
///
/// `build` constructs the interpreter (plus its output streamer) for a
/// tenant on first use; `args_of` yields the tenant's program arguments,
/// installed into the shared context on each switch.
pub fn worker_loop_tenants(
    ctx: &SharedCtx,
    build: &mut dyn FnMut(u32) -> (Interp, OutputStreamer),
    args_of: &dyn Fn(u32) -> HashMap<String, String>,
) -> u64 {
    let mut interps: HashMap<u32, (Interp, OutputStreamer)> = HashMap::new();
    let mut last_tenant: Option<u32> = None;
    let mut count = 0u64;
    loop {
        // Ship every tenant's output increments under its own tag before
        // blocking, so a later death of this rank loses at most the task
        // in flight.
        for (t, (_interp, stream)) in interps.iter_mut() {
            let mut c = ctx.borrow_mut();
            c.client.set_tenant(*t);
            stream.ship(&mut c.client);
        }
        let task = ctx.borrow_mut().client.get(&[adlb::WORK_TYPE_WORK]);
        let Some(task) = task else {
            return count;
        };
        let tenant = task.tenant;
        if last_tenant != Some(tenant) {
            let mut c = ctx.borrow_mut();
            // Tenant switch: embedded interpreters and blobs must not
            // leak across programs, whatever the retain policy says.
            if last_tenant.is_some() {
                c.python = None;
                c.r = None;
                c.blobs.borrow_mut().clear();
            }
            c.args = args_of(tenant);
            c.client.set_tenant(tenant);
            last_tenant = Some(tenant);
        }
        let (interp, _stream) = interps.entry(tenant).or_insert_with(|| build(tenant));
        execute_task(interp, ctx, &task, &mut count);
    }
}

#[cfg(test)]
mod tests {
    use adlb::{AdlbClient, Layout};
    use mpisim::World;
    use tclish::Interp;

    use crate::commands::{self, Ctx};
    use crate::types::InterpPolicy;

    /// 1 submitter + 1 worker + 1 server; submitter sends raw Tcl tasks.
    fn run_worker(tasks: &'static [&'static str], policy: InterpPolicy) -> (String, u64, u64) {
        let layout = Layout::new(3, 1);
        let out = World::run(3, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                adlb::serve(comm, layout, adlb::ServerConfig::default());
                return None;
            }
            if rank == 0 {
                let mut client = AdlbClient::new(comm, layout);
                for t in tasks {
                    client.put(adlb::WORK_TYPE_WORK, 0, Some(1), t.as_bytes().to_vec());
                }
                client.finish();
                return None;
            }
            let client = AdlbClient::new(comm, layout);
            let ctx = Ctx::new(client, false, policy);
            let mut interp = Interp::new();
            let buf = interp.capture_output();
            commands::register(&mut interp, ctx.clone());
            interp.eval(crate::library::TURBINE_LIB).unwrap();
            let mut stream = crate::run::OutputStreamer::new(buf.clone());
            let n = super::worker_loop(&mut interp, &ctx, &mut stream).unwrap();
            let inits = ctx.borrow().interp_inits;
            let stdout = buf.borrow().clone();
            Some((stdout, n, inits))
        });
        out.into_iter().flatten().next().unwrap()
    }

    #[test]
    fn executes_tasks_in_order_for_same_source() {
        let (stdout, n, _) = run_worker(&["puts one", "puts two"], InterpPolicy::Retain);
        assert_eq!(n, 2);
        assert_eq!(stdout, "one\ntwo\n");
    }

    #[test]
    fn retain_keeps_python_state() {
        let (stdout, _, inits) = run_worker(
            &[
                "puts [python {x = 10} {x}]",
                "puts [python {x = x + 1} {x}]",
            ],
            InterpPolicy::Retain,
        );
        assert_eq!(stdout, "10\n11\n");
        assert_eq!(inits, 1, "retained interpreter initializes once");
    }

    #[test]
    fn reinitialize_isolates_state() {
        let (stdout, _, inits) = run_worker(
            &["puts [python {x = 10} {x}]", "puts [catch {python {} {x}}]"],
            InterpPolicy::Reinitialize,
        );
        assert_eq!(stdout, "10\n1\n", "second task must not see x");
        assert_eq!(inits, 2, "one init per task under Reinitialize");
    }

    #[test]
    fn worker_rejects_rules() {
        let (stdout, _, _) = run_worker(
            &["puts [catch {turbine::rule {} {noop} control} msg]; puts $msg"],
            InterpPolicy::Retain,
        );
        assert!(stdout.contains("1"));
        assert!(stdout.contains("only run on an engine"));
    }

    #[test]
    fn task_errors_are_contained() {
        // A task that always errors must not kill the worker: it is
        // reported failed, retried to the server's budget, quarantined —
        // and a healthy task put afterwards still runs.
        let layout = Layout::new(3, 1);
        let out = World::run(3, move |comm| {
            let rank = comm.rank();
            if layout.is_server(rank) {
                let stats = adlb::serve(comm, layout, adlb::ServerConfig::default());
                return Some((stats.tasks_retried, stats.tasks_quarantined, 0));
            }
            if rank == 0 {
                let mut client = AdlbClient::new(comm, layout);
                client.put(adlb::WORK_TYPE_WORK, 9, Some(1), b"error kaboom".to_vec());
                client.put(adlb::WORK_TYPE_WORK, 0, Some(1), b"puts healthy".to_vec());
                client.finish();
                return None;
            }
            let client = AdlbClient::new(comm, layout);
            let ctx = Ctx::new(client, false, InterpPolicy::Retain);
            let mut interp = Interp::new();
            let buf = interp.capture_output();
            commands::register(&mut interp, ctx.clone());
            let mut stream = crate::run::OutputStreamer::new(buf.clone());
            let n = super::worker_loop(&mut interp, &ctx, &mut stream)
                .expect("contained loop never errs");
            let failed = ctx.borrow().tasks_failed;
            assert_eq!(buf.borrow().as_str(), "healthy\n");
            Some((failed, n, 1))
        });
        // Default RetryPolicy: max_retries = 3, so the poison task fails
        // once fresh + 3 retries before quarantine.
        let (failed, executed, _) = out[1].unwrap();
        assert_eq!(failed, 4);
        assert_eq!(executed, 1);
        let (retried, quarantined, _) = out[2].unwrap();
        assert_eq!(retried, 3);
        assert_eq!(quarantined, 1);
    }

    #[test]
    fn failed_task_forces_interpreter_reset() {
        // Python state set by a task must not survive a later failed task
        // even under the Retain policy.
        let (stdout, _, _) = run_worker(
            &[
                "puts [python {x = 5} {x}]",
                "error boom",
                "puts [catch {python {} {x}}]",
            ],
            InterpPolicy::Retain,
        );
        assert_eq!(stdout, "5\n1\n", "x must be gone after the failed task");
    }
}
