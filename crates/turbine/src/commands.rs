//! The `turbine::*` Tcl command set.
//!
//! These commands are the boundary between Turbine code (Tcl, shipped
//! through ADLB as text) and the runtime. They cover data creation,
//! stores/retrieves with automatic type conversion (§III.A), containers,
//! rules and task spawning, the embedded `python`/`r` interpreters
//! (§III.C), and blob support (§III.B).

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use adlb::AdlbClient;
use blobutils::{Blob, BlobHandle, BlobRegistry, SharedRegistry};
use pythonish::Python;
use rish::R;
use tclish::{Exception, Interp};

use crate::engine::{ActionKind, Dispatch, EngineState};
use crate::types::{self, InterpPolicy, TurbineType};

/// Shared per-rank runtime state reachable from Tcl commands.
pub struct Ctx {
    /// The ADLB client for this rank.
    pub client: AdlbClient,
    /// Engine dataflow state (unused on workers, but present so control
    /// fragments behave identically wherever they run).
    pub engine: EngineState,
    /// Whether this rank is an engine (rules allowed).
    pub is_engine: bool,
    /// §III.C interpreter state policy.
    pub policy: InterpPolicy,
    /// Lazily initialized embedded Python interpreter.
    pub python: Option<Python>,
    /// Lazily initialized embedded R interpreter.
    pub r: Option<R>,
    /// Blob registry backing `blobutils_*` and blob TDs.
    pub blobs: SharedRegistry,
    /// Program arguments (the paper's Swift/K `argv` interface).
    pub args: std::collections::HashMap<String, String>,
    /// Leaf tasks executed on this rank.
    pub tasks_executed: u64,
    /// Leaf tasks that failed and were reported to the server (contained
    /// failures; this rank survived them).
    pub tasks_failed: u64,
    /// Python/R interpreter (re)initializations performed.
    pub interp_inits: u64,
}

/// Shared handle stored in the Tcl interpreter context.
pub type SharedCtx = Rc<RefCell<Ctx>>;

impl Ctx {
    /// Build the per-rank context.
    pub fn new(client: AdlbClient, is_engine: bool, policy: InterpPolicy) -> SharedCtx {
        Rc::new(RefCell::new(Ctx {
            client,
            engine: EngineState::new(),
            is_engine,
            policy,
            python: None,
            r: None,
            blobs: Rc::new(RefCell::new(BlobRegistry::new())),
            args: std::collections::HashMap::new(),
            tasks_executed: 0,
            tasks_failed: 0,
            interp_inits: 0,
        }))
    }

    /// Perform a dispatch decision from the engine state.
    pub fn perform(&mut self, d: Dispatch) {
        if let Dispatch::Put(wt, prio, target, action) = d {
            self.client.put(wt, prio, target, action.into_bytes());
        }
    }
}

fn ex(e: impl std::fmt::Display) -> Exception {
    Exception::error(e.to_string())
}

fn parse_id(s: &str) -> Result<u64, Exception> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| ex(format!("bad turbine datum id \"{s}\"")))
}

fn parse_id_list(s: &str) -> Result<Vec<u64>, Exception> {
    tclish::parse_list(s)
        .map_err(ex)?
        .iter()
        .map(|e| parse_id(e))
        .collect()
}

fn need(argv: &[String], min: usize, max: usize, usage: &str) -> Result<(), Exception> {
    if argv.len() < min || argv.len() > max {
        return Err(ex(format!("wrong # args: should be \"{usage}\"")));
    }
    Ok(())
}

/// Register every `turbine::*` command plus the blobutils command set.
pub fn register(interp: &mut Interp, ctx: SharedCtx) {
    let blobs = ctx.borrow().blobs.clone();
    blobutils::register_blob_commands(interp, blobs);
    interp.context_insert::<SharedCtx>(ctx.clone());

    macro_rules! cmd {
        ($name:expr, $f:expr) => {{
            let ctx = ctx.clone();
            interp.register($name, move |interp, argv| $f(interp, &ctx, argv));
        }};
    }

    cmd!("turbine::rank", |_i, ctx: &SharedCtx, argv: &[String]| {
        need(argv, 1, 1, "turbine::rank")?;
        Ok(ctx.borrow_mut().client.rank().to_string())
    });
    cmd!(
        "turbine::engines",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 1, 1, "turbine::engines")?;
            // Engines = clients serving control work; recorded by run.rs in
            // the interpreter as ::turbine::n_engines. Fallback: 1.
            let _ = ctx;
            Ok(String::new())
        }
    );
    cmd!("turbine::unique", |_i, ctx: &SharedCtx, argv: &[String]| {
        need(argv, 1, 1, "turbine::unique")?;
        Ok(ctx.borrow_mut().client.alloc_id().to_string())
    });
    cmd!("turbine::create", |_i, ctx: &SharedCtx, argv: &[String]| {
        need(argv, 3, 3, "turbine::create id type")?;
        let id = parse_id(&argv[1])?;
        let ty = TurbineType::from_name(&argv[2])
            .ok_or_else(|| ex(format!("unknown turbine type \"{}\"", argv[2])))?;
        ctx.borrow_mut().client.create(id, ty.tag()).map_err(ex)?;
        Ok(String::new())
    });

    // -- scalar stores ---------------------------------------------------
    cmd!(
        "turbine::store_void",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::store_void id")?;
            let id = parse_id(&argv[1])?;
            ctx.borrow_mut().client.store(id, Vec::new()).map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::store_integer",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::store_integer id value")?;
            let id = parse_id(&argv[1])?;
            let v: i64 = argv[2]
                .trim()
                .parse()
                .map_err(|_| ex(format!("store_integer: \"{}\" is not an integer", argv[2])))?;
            ctx.borrow_mut()
                .client
                .store(id, types::encode_integer(v).to_vec())
                .map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::store_float",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::store_float id value")?;
            let id = parse_id(&argv[1])?;
            let v: f64 = argv[2]
                .trim()
                .parse()
                .map_err(|_| ex(format!("store_float: \"{}\" is not a float", argv[2])))?;
            ctx.borrow_mut()
                .client
                .store(id, types::encode_float(v).to_vec())
                .map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::store_string",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::store_string id value")?;
            let id = parse_id(&argv[1])?;
            ctx.borrow_mut()
                .client
                .store(id, argv[2].clone().into_bytes())
                .map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::store_blob",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::store_blob id blobHandle")?;
            let id = parse_id(&argv[1])?;
            let h = BlobHandle::parse(&argv[2]).map_err(ex)?;
            let bytes = {
                let c = ctx.borrow();
                let blobs = c.blobs.clone();
                let b = blobs.borrow();
                b.get(h).map_err(ex)?.as_bytes().to_vec()
            };
            ctx.borrow_mut().client.store(id, bytes).map_err(ex)?;
            Ok(String::new())
        }
    );

    // -- scalar retrieves --------------------------------------------------
    fn fetch_closed(ctx: &SharedCtx, id: u64) -> Result<bytes::Bytes, Exception> {
        ctx.borrow_mut()
            .client
            .retrieve(id)
            .map_err(ex)?
            .ok_or_else(|| ex(format!("retrieve of open datum <{id}> (dataflow bug)")))
    }
    cmd!(
        "turbine::retrieve_integer",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::retrieve_integer id")?;
            let b = fetch_closed(ctx, parse_id(&argv[1])?)?;
            types::decode_integer(&b).map(|v| v.to_string()).map_err(ex)
        }
    );
    cmd!(
        "turbine::retrieve_float",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::retrieve_float id")?;
            let b = fetch_closed(ctx, parse_id(&argv[1])?)?;
            types::decode_float(&b)
                .map(tclish::format_double)
                .map_err(ex)
        }
    );
    cmd!(
        "turbine::retrieve_string",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::retrieve_string id")?;
            let b = fetch_closed(ctx, parse_id(&argv[1])?)?;
            types::decode_string(&b).map_err(ex)
        }
    );
    cmd!(
        "turbine::retrieve_blob",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::retrieve_blob id")?;
            let b = fetch_closed(ctx, parse_id(&argv[1])?)?;
            let c = ctx.borrow();
            let h = c.blobs.borrow_mut().insert(Blob::from_bytes(b.to_vec()));
            Ok(h.to_token())
        }
    );
    cmd!("turbine::closed", |_i, ctx: &SharedCtx, argv: &[String]| {
        need(argv, 2, 2, "turbine::closed id")?;
        let id = parse_id(&argv[1])?;
        Ok((ctx.borrow_mut().client.exists(id).map_err(ex)? as i64).to_string())
    });

    // -- containers --------------------------------------------------------
    cmd!(
        "turbine::container_insert",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 4, 4, "turbine::container_insert id subscript value")?;
            let id = parse_id(&argv[1])?;
            ctx.borrow_mut()
                .client
                .insert(id, &argv[2], argv[3].clone().into_bytes())
                .map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::container_lookup",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::container_lookup id subscript")?;
            let id = parse_id(&argv[1])?;
            let v = ctx.borrow_mut().client.lookup(id, &argv[2]).map_err(ex)?;
            match v {
                Some(b) => types::decode_string(&b).map_err(ex),
                None => Err(ex(format!("container <{id}> has no member [{}]", argv[2]))),
            }
        }
    );
    cmd!(
        "turbine::container_keys",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::container_keys id")?;
            let id = parse_id(&argv[1])?;
            let pairs = ctx.borrow_mut().client.enumerate(id).map_err(ex)?;
            let keys: Vec<String> = pairs.into_iter().map(|(k, _)| k).collect();
            Ok(tclish::format_list(&keys))
        }
    );
    cmd!(
        "turbine::container_values",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::container_values id")?;
            let id = parse_id(&argv[1])?;
            let pairs = ctx.borrow_mut().client.enumerate(id).map_err(ex)?;
            let vals: Result<Vec<String>, Exception> = pairs
                .into_iter()
                .map(|(_, v)| types::decode_string(&v).map_err(ex))
                .collect();
            Ok(tclish::format_list(&vals?))
        }
    );
    cmd!(
        "turbine::container_size",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::container_size id")?;
            let id = parse_id(&argv[1])?;
            Ok(ctx
                .borrow_mut()
                .client
                .enumerate(id)
                .map_err(ex)?
                .len()
                .to_string())
        }
    );
    cmd!(
        "turbine::write_refcount_incr",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 3, 3, "turbine::write_refcount_incr id delta")?;
            let id = parse_id(&argv[1])?;
            let delta: i64 = argv[2]
                .trim()
                .parse()
                .map_err(|_| ex("write_refcount_incr: bad delta"))?;
            ctx.borrow_mut()
                .client
                .incr_writers(id, delta)
                .map_err(ex)?;
            Ok(String::new())
        }
    );
    cmd!(
        "turbine::container_close",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::container_close id")?;
            let id = parse_id(&argv[1])?;
            // Closing = dropping the creating scope's writer slot.
            ctx.borrow_mut().client.incr_writers(id, -1).map_err(ex)?;
            Ok(String::new())
        }
    );

    // -- rules & spawning ----------------------------------------------------
    cmd!("turbine::rule", |_i, ctx: &SharedCtx, argv: &[String]| {
        // turbine::rule inputs action ?type? ?priority? ?target?
        need(
            argv,
            3,
            6,
            "turbine::rule inputs action ?type? ?priority? ?target?",
        )?;
        let inputs = parse_id_list(&argv[1])?;
        let action = argv[2].clone();
        let kind = match argv.get(3).map(String::as_str).unwrap_or("control") {
            "control" => ActionKind::LocalControl,
            "spawn" => ActionKind::DistributedControl,
            "work" => ActionKind::Work,
            other => return Err(ex(format!("unknown rule type \"{other}\""))),
        };
        let priority: i32 = argv
            .get(4)
            .map(|s| s.trim().parse())
            .transpose()
            .map_err(|_| ex("rule: bad priority"))?
            .unwrap_or(0);
        let target = match argv.get(5).map(String::as_str) {
            None | Some("") | Some("-1") => None,
            Some(s) => Some(
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| ex("rule: bad target rank"))?,
            ),
        };
        let mut c = ctx.borrow_mut();
        if !c.is_engine {
            return Err(ex("turbine::rule may only run on an engine"));
        }
        // Work out which inputs are still open, subscribing as needed.
        let my_rank = c.client.rank();
        let mut unclosed: HashSet<u64> = HashSet::new();
        for id in inputs {
            if c.engine.known_closed(id) {
                continue;
            }
            if c.engine.is_waiting_on(id) {
                unclosed.insert(id);
                continue;
            }
            match c.client.subscribe(id, my_rank) {
                Ok(true) => {
                    // Already closed at the server; remember it (and fire
                    // anything else that was waiting, defensively).
                    for d in c.engine.fire(id) {
                        c.perform(d);
                    }
                }
                Ok(false) => {
                    unclosed.insert(id);
                }
                Err(e) => return Err(ex(e)),
            }
        }
        let d = c.engine.add_rule(unclosed, action, kind, priority, target);
        c.perform(d);
        Ok(String::new())
    });
    cmd!("turbine::spawn", |_i, ctx: &SharedCtx, argv: &[String]| {
        // turbine::spawn control|work priority action — immediate put.
        need(argv, 4, 4, "turbine::spawn type priority action")?;
        let wt = match argv[1].as_str() {
            "control" => adlb::WORK_TYPE_CONTROL,
            "work" => adlb::WORK_TYPE_WORK,
            other => return Err(ex(format!("unknown spawn type \"{other}\""))),
        };
        let priority: i32 = argv[2]
            .trim()
            .parse()
            .map_err(|_| ex("spawn: bad priority"))?;
        ctx.borrow_mut()
            .client
            .put(wt, priority, None, argv[3].clone().into_bytes());
        Ok(String::new())
    });

    // -- embedded interpreters (§III.C) ---------------------------------------
    cmd!("python", |interp: &mut Interp,
                    ctx: &SharedCtx,
                    argv: &[String]| {
        need(argv, 3, 3, "python code expression")?;
        let (result, output) = {
            let mut c = ctx.borrow_mut();
            if c.python.is_none() {
                c.python = Some(Python::new());
                c.interp_inits += 1;
            }
            // Just initialized above when absent; written without unwrap
            // so a future refactor degrades to a task error, not a rank
            // panic.
            let Some(py) = c.python.as_mut() else {
                return Err(ex("python interpreter unavailable"));
            };
            let result = py
                .run(&argv[1], &argv[2])
                .map_err(|e| ex(format!("python: {e}")))?;
            (result, py.take_output())
        };
        if !output.is_empty() {
            interp.write_output(&output);
        }
        Ok(result)
    });
    cmd!("r", |interp: &mut Interp,
               ctx: &SharedCtx,
               argv: &[String]| {
        need(argv, 3, 3, "r code expression")?;
        let (result, output) = {
            let mut c = ctx.borrow_mut();
            if c.r.is_none() {
                c.r = Some(R::new());
                c.interp_inits += 1;
            }
            // Same containment as the python command above.
            let Some(r) = c.r.as_mut() else {
                return Err(ex("R interpreter unavailable"));
            };
            let result = r
                .run(&argv[1], &argv[2])
                .map_err(|e| ex(format!("R: {e}")))?;
            (result, r.take_output())
        };
        if !output.is_empty() {
            interp.write_output(&output);
        }
        Ok(result)
    });

    cmd!("turbine::argv", |_i, ctx: &SharedCtx, argv: &[String]| {
        need(argv, 2, 3, "turbine::argv key ?default?")?;
        let c = ctx.borrow();
        match c.args.get(&argv[1]) {
            Some(v) => Ok(v.clone()),
            None => match argv.get(2) {
                Some(d) => Ok(d.clone()),
                None => Err(ex(format!("missing program argument --{}", argv[1]))),
            },
        }
    });
    cmd!(
        "turbine::argv_exists",
        |_i, ctx: &SharedCtx, argv: &[String]| {
            need(argv, 2, 2, "turbine::argv_exists key")?;
            Ok((ctx.borrow().args.contains_key(&argv[1]) as i64).to_string())
        }
    );
    cmd!("turbine::log", |interp: &mut Interp,
                          _ctx: &SharedCtx,
                          argv: &[String]| {
        let _ = interp;
        let _ = argv;
        Ok(String::new())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use adlb::Layout;
    use mpisim::World;

    /// Single client + single server world running Tcl against the
    /// command set.
    fn run_tcl(script: &'static str) -> Result<String, tclish::TclError> {
        let layout = Layout::new(2, 1);
        let out = World::run(2, move |comm| {
            if layout.is_server(comm.rank()) {
                adlb::serve(comm, layout, adlb::ServerConfig::default());
                return None;
            }
            let client = AdlbClient::new(comm, layout);
            let ctx = Ctx::new(client, true, InterpPolicy::Retain);
            let mut interp = Interp::new();
            register(&mut interp, ctx.clone());
            let result = interp.eval(script);
            // Drain any locally queued control actions so rules execute.
            loop {
                let action = ctx.borrow_mut().engine.ready.pop_front();
                match action {
                    Some(a) => {
                        if let Err(e) = interp.eval(&a) {
                            ctx.borrow_mut().client.finish();
                            return Some(Err(e));
                        }
                    }
                    None => break,
                }
            }
            ctx.borrow_mut().client.finish();
            Some(result)
        });
        out.into_iter().flatten().next().unwrap()
    }

    #[test]
    fn create_store_retrieve_integer() {
        let out = run_tcl(
            "set id [turbine::unique]\n\
             turbine::create $id integer\n\
             turbine::store_integer $id 42\n\
             turbine::retrieve_integer $id",
        )
        .unwrap();
        assert_eq!(out, "42");
    }

    #[test]
    fn float_and_string_round_trip() {
        let out = run_tcl(
            "set f [turbine::unique]; turbine::create $f float\n\
             turbine::store_float $f 2.5\n\
             set s [turbine::unique]; turbine::create $s string\n\
             turbine::store_string $s \"hi [turbine::retrieve_float $f]\"\n\
             turbine::retrieve_string $s",
        )
        .unwrap();
        assert_eq!(out, "hi 2.5");
    }

    #[test]
    fn retrieve_open_datum_is_dataflow_error() {
        let err = run_tcl(
            "set id [turbine::unique]; turbine::create $id integer\n\
             turbine::retrieve_integer $id",
        )
        .unwrap_err();
        assert!(err.message.contains("open datum"));
    }

    #[test]
    fn containers_via_tcl() {
        let out = run_tcl(
            "set c [turbine::unique]; turbine::create $c container\n\
             turbine::container_insert $c 0 alpha\n\
             turbine::container_insert $c 1 beta\n\
             turbine::container_close $c\n\
             list [turbine::container_size $c] [turbine::container_values $c]",
        )
        .unwrap();
        assert_eq!(out, "2 {alpha beta}");
    }

    #[test]
    fn rule_with_closed_inputs_fires_immediately() {
        let out = run_tcl(
            "set x [turbine::unique]; turbine::create $x integer\n\
             turbine::store_integer $x 5\n\
             set y [turbine::unique]; turbine::create $y integer\n\
             turbine::rule [list $x] \"turbine::store_integer $y [turbine::retrieve_integer $x]\" control\n\
             set y",
        )
        .unwrap();
        // The rule ran in the drain loop; y now holds 5.
        let _ = out;
    }

    #[test]
    fn blob_td_round_trip() {
        let out = run_tcl(
            "set b [blobutils_create_floats {1.5 2.5 3.0}]\n\
             set td [turbine::unique]; turbine::create $td blob\n\
             turbine::store_blob $td $b\n\
             set b2 [turbine::retrieve_blob $td]\n\
             blobutils_sum_floats $b2",
        )
        .unwrap();
        assert_eq!(out, "7.0");
    }

    #[test]
    fn python_command_marshal() {
        let out = run_tcl("python {x = 3\ny = 4} {x * y + 30}").unwrap();
        assert_eq!(out, "42");
    }

    #[test]
    fn r_command_marshal() {
        let out = run_tcl("r {v <- c(1, 2, 3)} {sum(v * 2)}").unwrap();
        assert_eq!(out, "12");
    }

    #[test]
    fn python_state_retained_across_calls() {
        let out = run_tcl("python {acc = 1} {acc}; python {acc = acc + 10} {acc}").unwrap();
        assert_eq!(out, "11");
    }

    #[test]
    fn python_errors_become_tcl_errors() {
        let err = run_tcl("python {} {1 / 0}").unwrap_err();
        assert!(err.message.contains("ZeroDivisionError"));
    }
}
