//! The engine: data-dependent rules and the control loop.
//!
//! An engine "carries out Swift logic, creating leaf tasks for execution"
//! (§II.B). Concretely: Turbine code calls `turbine::rule`, naming input
//! futures and an action; the engine subscribes to the unclosed inputs,
//! and when ADLB delivers the close notifications the action either runs
//! locally (control) or is put to ADLB for a worker (work).

use std::collections::{HashMap, HashSet, VecDeque};

use mpisim::{trace, Rank};

/// Dispatch class of a rule's action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// Evaluate on this engine when ready.
    LocalControl,
    /// Put to ADLB as a distributable control task.
    DistributedControl,
    /// Put to ADLB as a worker (leaf) task.
    Work,
}

/// A not-yet-fireable rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Input futures still open.
    pub pending: HashSet<u64>,
    /// Tcl fragment to run when all inputs close.
    pub action: String,
    pub kind: ActionKind,
    pub priority: i32,
    pub target: Option<Rank>,
    /// Creation time (trace clock, µs; 0 untraced) — the `rule_fire`
    /// span covers the dataflow wait from creation to firing.
    pub created_us: u64,
}

/// Per-engine dataflow state.
#[derive(Default)]
pub struct EngineState {
    rules: HashMap<u64, Rule>,
    /// td id → rules waiting on it.
    waiting: HashMap<u64, Vec<u64>>,
    /// td ids this engine knows to be closed.
    closed_cache: HashSet<u64>,
    /// Actions ready to evaluate locally.
    pub ready: VecDeque<String>,
    next_rule_id: u64,
    /// Rules whose inputs were all closed at creation or that later fired.
    pub rules_fired: u64,
    /// Rules ever created.
    pub rules_created: u64,
}

/// What the caller must do with a newly created or fired rule's action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dispatch {
    /// Nothing to do yet: the rule is waiting on inputs.
    Deferred,
    /// Action was queued for local evaluation.
    QueuedLocal,
    /// Action must be put to ADLB with `(work_type, priority, target)`.
    Put(u32, i32, Option<Rank>, String),
}

impl EngineState {
    /// New empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules currently waiting.
    pub fn rules_waiting(&self) -> usize {
        self.rules.len()
    }

    /// Whether this engine already knows `id` is closed.
    pub fn known_closed(&self, id: u64) -> bool {
        self.closed_cache.contains(&id)
    }

    /// Whether this engine already subscribed to `id` (has rules waiting).
    pub fn is_waiting_on(&self, id: u64) -> bool {
        self.waiting.contains_key(&id)
    }

    /// Record a rule. `unclosed` must be the subset of inputs that were
    /// not closed at creation time (the caller consulted
    /// [`EngineState::known_closed`] and the data store). Returns how to
    /// dispatch the action.
    pub fn add_rule(
        &mut self,
        unclosed: HashSet<u64>,
        action: String,
        kind: ActionKind,
        priority: i32,
        target: Option<Rank>,
    ) -> Dispatch {
        self.rules_created += 1;
        if unclosed.is_empty() {
            self.rules_fired += 1;
            // An already-satisfied rule fires with zero dataflow wait;
            // recording it keeps rule_fire spans == rules_fired.
            trace::record_instant(trace::KIND_RULE_FIRE, self.rules_created);
            return self.dispatch(action, kind, priority, target);
        }
        let rule_id = self.next_rule_id;
        self.next_rule_id += 1;
        for id in &unclosed {
            self.waiting.entry(*id).or_default().push(rule_id);
        }
        self.rules.insert(
            rule_id,
            Rule {
                pending: unclosed,
                action,
                kind,
                priority,
                target,
                created_us: trace::now_us(),
            },
        );
        Dispatch::Deferred
    }

    fn dispatch(
        &mut self,
        action: String,
        kind: ActionKind,
        priority: i32,
        target: Option<Rank>,
    ) -> Dispatch {
        match kind {
            ActionKind::LocalControl => {
                self.ready.push_back(action);
                Dispatch::QueuedLocal
            }
            ActionKind::DistributedControl => {
                Dispatch::Put(adlb::WORK_TYPE_CONTROL, priority, target, action)
            }
            ActionKind::Work => Dispatch::Put(adlb::WORK_TYPE_WORK, priority, target, action),
        }
    }

    /// Process a close notification for `id`: fire every rule whose last
    /// input this was. Returns the puts the caller must perform.
    pub fn fire(&mut self, id: u64) -> Vec<Dispatch> {
        self.closed_cache.insert(id);
        let Some(rule_ids) = self.waiting.remove(&id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for rid in rule_ids {
            // Take the rule out and re-insert if it still waits: one
            // lookup, and a waiting-list entry whose rule is gone (an
            // internal inconsistency that previously panicked the
            // engine) degrades to skipping the stale entry.
            let Some(mut rule) = self.rules.remove(&rid) else {
                continue;
            };
            rule.pending.remove(&id);
            if rule.pending.is_empty() {
                self.rules_fired += 1;
                trace::record_since(trace::KIND_RULE_FIRE, rid, rule.created_us);
                let d = self.dispatch(rule.action, rule.kind, rule.priority, rule.target);
                if !matches!(d, Dispatch::QueuedLocal) {
                    out.push(d);
                }
            } else {
                self.rules.insert(rid, rule);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> HashSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn immediate_rule_dispatches() {
        let mut e = EngineState::new();
        let d = e.add_rule(ids(&[]), "go".into(), ActionKind::LocalControl, 0, None);
        assert_eq!(d, Dispatch::QueuedLocal);
        assert_eq!(e.ready.pop_front().unwrap(), "go");
        assert_eq!(e.rules_fired, 1);
    }

    #[test]
    fn immediate_work_rule_puts() {
        let mut e = EngineState::new();
        let d = e.add_rule(ids(&[]), "task".into(), ActionKind::Work, 5, Some(3));
        assert_eq!(
            d,
            Dispatch::Put(adlb::WORK_TYPE_WORK, 5, Some(3), "task".into())
        );
    }

    #[test]
    fn rule_fires_when_last_input_closes() {
        let mut e = EngineState::new();
        let d = e.add_rule(ids(&[1, 2]), "go".into(), ActionKind::LocalControl, 0, None);
        assert_eq!(d, Dispatch::Deferred);
        assert!(e.fire(1).is_empty());
        assert!(e.ready.is_empty());
        assert!(e.fire(2).is_empty()); // local → ready, not Put
        assert_eq!(e.ready.pop_front().unwrap(), "go");
        assert_eq!(e.rules_waiting(), 0);
    }

    #[test]
    fn multiple_rules_on_one_input() {
        let mut e = EngineState::new();
        e.add_rule(ids(&[7]), "a".into(), ActionKind::LocalControl, 0, None);
        e.add_rule(ids(&[7]), "b".into(), ActionKind::Work, 1, None);
        let puts = e.fire(7);
        assert_eq!(puts.len(), 1, "work action returned as Put");
        assert_eq!(e.ready.len(), 1, "control action queued locally");
        assert_eq!(e.rules_fired, 2);
    }

    #[test]
    fn closed_cache_remembered() {
        let mut e = EngineState::new();
        e.fire(9);
        assert!(e.known_closed(9));
        assert!(!e.known_closed(10));
    }

    #[test]
    fn duplicate_input_in_rule_is_single_wait() {
        let mut e = EngineState::new();
        // HashSet input: {5} even if the Swift expression mentioned x twice.
        e.add_rule(ids(&[5, 5]), "go".into(), ActionKind::LocalControl, 0, None);
        e.fire(5);
        assert_eq!(e.ready.len(), 1);
    }

    #[test]
    fn fire_on_unwaited_id_is_noop() {
        let mut e = EngineState::new();
        assert!(e.fire(1234).is_empty());
    }
}
