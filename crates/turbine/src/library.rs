//! The Turbine runtime library — pure Tcl, like the real system's
//! `lib/*.tcl`.
//!
//! STC-generated code calls these `swt:*` procs for arithmetic, string
//! operations, printf, conversions, and loop splitting. Each builtin has
//! two halves: a *rule half* run on the engine (creates the dataflow
//! dependency) and a *body half* run when the inputs are closed. This is
//! exactly the paper's observation that "the ease of exposing simple Tcl
//! snippets to Swift allowed for the rapid development of Swift builtins
//! such as printf(), strcat(), etc." (§III.A).

/// The library source. Evaluated on every engine and worker before any
/// program code; provided as the in-memory "static package" `turbine`
/// (§IV: no small-file storms at startup).
pub const TURBINE_LIB: &str = r##"
package provide turbine 1.0

# ---- integer arithmetic ------------------------------------------------
proc swt:ibinop {op o a b} {
    turbine::rule [list $a $b] "swt:ibinop_body $op $o $a $b" control
}
proc swt:ibinop_body {op o a b} {
    set x [turbine::retrieve_integer $a]
    set y [turbine::retrieve_integer $b]
    turbine::store_integer $o [expr "$x $op $y"]
}

# ---- float arithmetic ----------------------------------------------------
proc swt:fbinop {op o a b} {
    turbine::rule [list $a $b] "swt:fbinop_body $op $o $a $b" control
}
proc swt:fbinop_body {op o a b} {
    set x [turbine::retrieve_float $a]
    set y [turbine::retrieve_float $b]
    turbine::store_float $o [expr "$x $op $y"]
}

# ---- comparisons (result is an integer 0/1) ------------------------------
proc swt:icmp {op o a b} {
    turbine::rule [list $a $b] "swt:icmp_body $op $o $a $b" control
}
proc swt:icmp_body {op o a b} {
    set x [turbine::retrieve_integer $a]
    set y [turbine::retrieve_integer $b]
    turbine::store_integer $o [expr "$x $op $y"]
}
proc swt:fcmp {op o a b} {
    turbine::rule [list $a $b] "swt:fcmp_body $op $o $a $b" control
}
proc swt:fcmp_body {op o a b} {
    set x [turbine::retrieve_float $a]
    set y [turbine::retrieve_float $b]
    turbine::store_integer $o [expr "$x $op $y"]
}
proc swt:scmp {op o a b} {
    turbine::rule [list $a $b] "swt:scmp_body $op $o $a $b" control
}
proc swt:scmp_body {op o a b} {
    set x [turbine::retrieve_string $a]
    set y [turbine::retrieve_string $b]
    if {$op == "=="} {
        turbine::store_integer $o [string equal $x $y]
    } else {
        turbine::store_integer $o [expr {![string equal $x $y]}]
    }
}

# ---- logical ops on integer(bool) TDs -------------------------------------
proc swt:not {o a} {
    turbine::rule [list $a] "swt:not_body $o $a" control
}
proc swt:not_body {o a} {
    turbine::store_integer $o [expr {![turbine::retrieve_integer $a]}]
}
proc swt:neg_int {o a} {
    turbine::rule [list $a] "swt:neg_int_body $o $a" control
}
proc swt:neg_int_body {o a} {
    turbine::store_integer $o [expr {- [turbine::retrieve_integer $a]}]
}
proc swt:neg_float {o a} {
    turbine::rule [list $a] "swt:neg_float_body $o $a" control
}
proc swt:neg_float_body {o a} {
    turbine::store_float $o [expr {- [turbine::retrieve_float $a]}]
}

# ---- float math builtins ----------------------------------------------------
proc swt:fmath {fn o a} {
    turbine::rule [list $a] "swt:fmath_body $fn $o $a" control
}
proc swt:fmath_body {fn o a} {
    set x [turbine::retrieve_float $a]
    turbine::store_float $o [expr "${fn}($x)"]
}

proc swt:fmath2 {fn o a b} {
    turbine::rule [list $a $b] "swt:fmath2_body $fn $o $a $b" control
}
proc swt:fmath2_body {fn o a b} {
    set x [turbine::retrieve_float $a]
    set y [turbine::retrieve_float $b]
    turbine::store_float $o [expr "${fn}($x, $y)"]
}
proc swt:iminmax {which o a b} {
    turbine::rule [list $a $b] "swt:iminmax_body $which $o $a $b" control
}
proc swt:iminmax_body {which o a b} {
    set x [turbine::retrieve_integer $a]
    set y [turbine::retrieve_integer $b]
    turbine::store_integer $o [expr "${which}($x, $y)"]
}
proc swt:iabs {o a} {
    turbine::rule [list $a] "swt:iabs_body $o $a" control
}
proc swt:iabs_body {o a} {
    turbine::store_integer $o [expr {abs([turbine::retrieve_integer $a])}]
}

# ---- conversions -----------------------------------------------------------
proc swt:itof {o a} {
    turbine::rule [list $a] "swt:itof_body $o $a" control
}
proc swt:itof_body {o a} {
    turbine::store_float $o [expr {double([turbine::retrieve_integer $a])}]
}
proc swt:ftoi {o a} {
    turbine::rule [list $a] "swt:ftoi_body $o $a" control
}
proc swt:ftoi_body {o a} {
    turbine::store_integer $o [expr {int([turbine::retrieve_float $a])}]
}
proc swt:toint {o a} {
    turbine::rule [list $a] "swt:toint_body $o $a" control
}
proc swt:toint_body {o a} {
    set s [string trim [turbine::retrieve_string $a]]
    turbine::store_integer $o $s
}
proc swt:tofloat {o a} {
    turbine::rule [list $a] "swt:tofloat_body $o $a" control
}
proc swt:tofloat_body {o a} {
    set s [string trim [turbine::retrieve_string $a]]
    turbine::store_float $o $s
}
proc swt:fromint {o a} {
    turbine::rule [list $a] "swt:fromint_body $o $a" control
}
proc swt:fromint_body {o a} {
    turbine::store_string $o [turbine::retrieve_integer $a]
}
proc swt:fromfloat {o a} {
    turbine::rule [list $a] "swt:fromfloat_body $o $a" control
}
proc swt:fromfloat_body {o a} {
    turbine::store_string $o [turbine::retrieve_float $a]
}

# ---- strings -----------------------------------------------------------------
proc swt:strcat {o args} {
    turbine::rule $args "swt:strcat_body $o $args" control
}
proc swt:strcat_body {o args} {
    set out ""
    foreach td $args {
        append out [turbine::retrieve_string $td]
    }
    turbine::store_string $o $out
}
proc swt:strlen {o a} {
    turbine::rule [list $a] "swt:strlen_body $o $a" control
}
proc swt:strlen_body {o a} {
    turbine::store_integer $o [string length [turbine::retrieve_string $a]]
}

# ---- generic value retrieval (for printf/trace argument lists) -----------------
proc swt:retrieve_typed {ty td} {
    switch $ty {
        integer { return [turbine::retrieve_integer $td] }
        float   { return [turbine::retrieve_float $td] }
        string  { return [turbine::retrieve_string $td] }
        void    { return "" }
        default { error "swt:retrieve_typed: bad type $ty" }
    }
}

# ---- printf / trace / assert ----------------------------------------------------
# printf runs as a WORK task: output happens on a worker, as leaf output
# does in real runs.
proc swt:printf {fmt types args} {
    # Build the action as a proper list so arbitrary format strings
    # (braces, quotes, spaces) survive the ship-and-reparse round trip.
    turbine::rule $args [concat [list swt:printf_body $fmt $types] $args] work
}
proc swt:printf_body {fmt types args} {
    set vals {}
    foreach td $args ty $types {
        lappend vals [swt:retrieve_typed $ty $td]
    }
    puts [format $fmt {*}$vals]
}
# trace runs on the engine (control) for low-latency debugging.
proc swt:trace {types args} {
    turbine::rule $args [concat [list swt:trace_body $types] $args] control
}
proc swt:trace_body {types args} {
    set vals {}
    foreach td $args ty $types {
        lappend vals [swt:retrieve_typed $ty $td]
    }
    puts "trace: [join $vals ,]"
}
proc swt:assert {cond msg} {
    turbine::rule [list $cond $msg] "swt:assert_body $cond $msg" control
}
proc swt:assert_body {cond msg} {
    if {![turbine::retrieve_integer $cond]} {
        error "assertion failed: [turbine::retrieve_string $msg]"
    }
}

# ---- python / r / shell leaves (§III.C) --------------------------------------------
# o, code, expr are string TDs; evaluation happens in the worker's
# embedded interpreter.
proc swt:python {o code sexpr} {
    turbine::rule [list $code $sexpr] "swt:python_body $o $code $sexpr" work
}
proc swt:python_body {o code sexpr} {
    turbine::store_string $o \
        [python [turbine::retrieve_string $code] [turbine::retrieve_string $sexpr]]
}
proc swt:r {o code sexpr} {
    turbine::rule [list $code $sexpr] "swt:r_body $o $code $sexpr" work
}
proc swt:r_body {o code sexpr} {
    turbine::store_string $o \
        [r [turbine::retrieve_string $code] [turbine::retrieve_string $sexpr]]
}
# sh: run a shell command line, capture stdout (the "rich shell interface").
proc swt:sh {o cmd} {
    turbine::rule [list $cmd] "swt:sh_body $o $cmd" work
}
proc swt:sh_body {o cmd} {
    turbine::store_string $o [exec sh -c [turbine::retrieve_string $cmd]]
}

# ---- ranges & foreach ------------------------------------------------------------
# Distributed range loop: split [start..end] into chunks, each a control
# task callable on any engine. The body proc receives the iteration value,
# the 0-based index, and the captured TD ids. `containers` are arrays the
# body writes: each chunk holds a writer slot until it completes.
proc swt:range_foreach {bodyproc captured containers start end chunk} {
    if {$end < $start} { return }
    if {$chunk == "auto"} {
        set n [expr {$end - $start + 1}]
        set engines $turbine::n_engines
        set chunk [expr {$n / (4 * $engines)}]
        if {$chunk < 1} { set chunk 1 }
    }
    set i $start
    while {$i <= $end} {
        set hi [expr {$i + $chunk - 1}]
        if {$hi > $end} { set hi $end }
        foreach c $containers { turbine::write_refcount_incr $c 1 }
        turbine::spawn control 0 \
            "swt:range_chunk $bodyproc [list $captured] [list $containers] $i $hi $start"
        set i [expr {$hi + 1}]
    }
}
proc swt:range_chunk {bodyproc captured containers lo hi start} {
    for {set i $lo} {$i <= $hi} {incr i} {
        $bodyproc $i [expr {$i - $start}] {*}$captured
    }
    foreach c $containers { turbine::write_refcount_incr $c -1 }
}
# Deferred launch: the bounds are futures; once closed, split the loop and
# release the caller's per-container reservation.
proc swt:range_foreach_deferred {bodyproc captured containers st et} {
    turbine::rule [list $st $et] \
        "swt:range_foreach_deferred_body $bodyproc [list $captured] [list $containers] $st $et" control
}
proc swt:range_foreach_deferred_body {bodyproc captured containers st et} {
    set s [turbine::retrieve_integer $st]
    set e [turbine::retrieve_integer $et]
    swt:range_foreach $bodyproc $captured $containers $s $e auto
    foreach c $containers { turbine::write_refcount_incr $c -1 }
}

# Array foreach: runs when the container closes; the body proc receives
# (value, subscript, captured ids). Releases the caller's reservations.
proc swt:array_foreach_go {bodyproc captured containers c} {
    foreach k [turbine::container_keys $c] {
        $bodyproc [turbine::container_lookup $c $k] $k {*}$captured
    }
    foreach w $containers { turbine::write_refcount_incr $w -1 }
}

# Container foreach (rule half): wait for the container, then run the body
# per member on this engine. bodyproc gets (subscript, value, captured...).
proc swt:container_foreach {bodyproc captured c} {
    turbine::rule [list $c] "swt:container_foreach_body $bodyproc [list $captured] $c" control
}
proc swt:container_foreach_body {bodyproc captured c} {
    foreach k [turbine::container_keys $c] {
        $bodyproc $k [turbine::container_lookup $c $k] {*}$captured
    }
}

# Store a computed TD value into a container slot once the TD closes, and
# drop the writer slot that was reserved for this insertion.
proc swt:container_deferred_insert {c key td ty} {
    turbine::rule [list $td] "swt:container_deferred_insert_body $c $key $td $ty" control
}
proc swt:container_deferred_insert_body {c key td ty} {
    turbine::container_insert $c $key [swt:retrieve_typed $ty $td]
    turbine::write_refcount_incr $c -1
}

# A[kt] = vt with both subscript and value as futures: wait for the
# subscript, then chain the deferred insert on the value. The caller
# reserved one writer slot, which deferred_insert releases.
proc swt:cinsert_when {c kt vt ty} {
    turbine::rule [list $kt] "swt:cinsert_when_body $c $kt $vt $ty" control
}
proc swt:cinsert_when_body {c kt vt ty} {
    swt:container_deferred_insert $c [turbine::retrieve_integer $kt] $vt $ty
}

# x = A[kt]: wait for the whole container and the subscript, then look the
# member up and store it (conservative: member-level waits would be finer).
proc swt:clookup {ty o c kt} {
    turbine::rule [list $c $kt] "swt:clookup_body $ty $o $c $kt" control
}
proc swt:clookup_body {ty o c kt} {
    set k [turbine::retrieve_integer $kt]
    set v [turbine::container_lookup $c $k]
    switch $ty {
        integer { turbine::store_integer $o $v }
        float   { turbine::store_float $o $v }
        string  { turbine::store_string $o $v }
        default { error "swt:clookup: bad type $ty" }
    }
}

# n = size(A)
proc swt:csize {o c} {
    turbine::rule [list $c] "swt:csize_body $o $c" control
}
proc swt:csize_body {o c} {
    turbine::store_integer $o [turbine::container_size $c]
}

# o = i (copy between same-typed futures)
proc swt:copy {ty o i} {
    turbine::rule [list $i] "swt:copy_body $ty $o $i" control
}
proc swt:copy_body {ty o i} {
    switch $ty {
        integer { turbine::store_integer $o [turbine::retrieve_integer $i] }
        float   { turbine::store_float $o [turbine::retrieve_float $i] }
        string  { turbine::store_string $o [turbine::retrieve_string $i] }
        void    { turbine::store_void $o }
        default { error "swt:copy: bad type $ty" }
    }
}

# ---- conditionals ------------------------------------------------------------------
# if on a future: when cond (integer td) closes, run then_proc or
# else_proc (pre-bound with captured ids by the caller).
proc swt:if {cond then_action else_action} {
    turbine::rule [list $cond] "swt:if_body $cond {$then_action} {$else_action}" control
}
proc swt:if_body {cond then_action else_action} {
    if {[turbine::retrieve_integer $cond]} {
        eval $then_action
    } else {
        eval $else_action
    }
}
"##;

#[cfg(test)]
mod tests {
    use adlb::{AdlbClient, Layout};
    use mpisim::World;
    use tclish::Interp;

    use crate::commands::{self, Ctx};
    use crate::types::InterpPolicy;

    /// Evaluate a script on a 1-engine/1-server world with the library
    /// loaded, draining local control actions until quiescent, and return
    /// (result, captured stdout).
    fn run_with_lib(script: &'static str) -> (String, String) {
        let layout = Layout::new(2, 1);
        let out = World::run(2, move |comm| {
            if layout.is_server(comm.rank()) {
                adlb::serve(comm, layout, adlb::ServerConfig::default());
                return None;
            }
            let client = AdlbClient::new(comm, layout);
            let ctx = Ctx::new(client, true, InterpPolicy::Retain);
            let mut interp = Interp::new();
            let buf = interp.capture_output();
            commands::register(&mut interp, ctx.clone());
            interp.eval(super::TURBINE_LIB).unwrap();
            let result = interp.eval(script).unwrap();
            // Mini engine loop: drain local control actions, then pump
            // ADLB close notifications until no rules remain.
            loop {
                loop {
                    let action = ctx.borrow_mut().engine.ready.pop_front();
                    match action {
                        Some(a) => {
                            interp.eval(&a).unwrap();
                        }
                        None => break,
                    }
                }
                if ctx.borrow().engine.rules_waiting() == 0 {
                    break;
                }
                let task = ctx
                    .borrow_mut()
                    .client
                    .get(&[adlb::WORK_TYPE_NOTIFY, adlb::WORK_TYPE_CONTROL]);
                match task {
                    Some(t) if t.work_type == adlb::WORK_TYPE_NOTIFY => {
                        let id = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                        let ds = ctx.borrow_mut().engine.fire(id);
                        let mut c = ctx.borrow_mut();
                        for d in ds {
                            c.perform(d);
                        }
                    }
                    Some(t) => {
                        let code = String::from_utf8(t.payload.to_vec()).unwrap();
                        interp.eval(&code).unwrap();
                    }
                    None => break,
                }
            }
            ctx.borrow_mut().client.finish();
            let stdout = buf.borrow().clone();
            Some((result, stdout))
        });
        out.into_iter().flatten().next().unwrap()
    }

    fn new_td(interp_script: &mut String, var: &str, ty: &str) {
        interp_script.push_str(&format!(
            "set {var} [turbine::unique]; turbine::create ${var} {ty}\n"
        ));
    }

    #[test]
    fn integer_arithmetic_through_rules() {
        let mut s = String::new();
        new_td(&mut s, "a", "integer");
        new_td(&mut s, "b", "integer");
        new_td(&mut s, "c", "integer");
        s.push_str(
            "swt:ibinop + $c $a $b\n\
             turbine::store_integer $a 19\n\
             turbine::store_integer $b 23\n",
        );
        // After draining, c must hold 42; check by retrieving in a second
        // phase. We lean on run_with_lib returning after the drain.
        let script = format!("{s}\nset c");
        let (c_id, _) = run_with_lib(Box::leak(script.into_boxed_str()));
        // We only got the id back; re-running to retrieve isn't possible
        // here, so instead verify via printf in other tests.
        assert!(!c_id.is_empty());
    }

    #[test]
    fn printf_formats_on_close() {
        // Single client acts as engine; printf is a WORK rule, which a
        // pure-engine world cannot execute... so spawn it as control by
        // testing the body directly after storing inputs.
        let script = r#"
            set x [turbine::unique]; turbine::create $x integer
            turbine::store_integer $x 7
            swt:printf_body {x = %d} {integer} $x
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "x = 7\n");
    }

    #[test]
    fn chained_arithmetic_rules_cascade() {
        let script = r#"
            set a [turbine::unique]; turbine::create $a integer
            set b [turbine::unique]; turbine::create $b integer
            set c [turbine::unique]; turbine::create $c integer
            # c = a + a; d = c * b — d fires only after c.
            set d [turbine::unique]; turbine::create $d integer
            swt:ibinop + $c $a $a
            swt:ibinop * $d $c $b
            turbine::store_integer $a 3
            turbine::store_integer $b 5
            # Give dataflow a way to print the result once d closes.
            turbine::rule [list $d] "swt:trace_body {integer} $d" control
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "trace: 30\n");
    }

    #[test]
    fn strcat_and_strlen() {
        let script = r#"
            set a [turbine::unique]; turbine::create $a string
            set b [turbine::unique]; turbine::create $b string
            set c [turbine::unique]; turbine::create $c string
            set n [turbine::unique]; turbine::create $n integer
            swt:strcat $c $a $b
            swt:strlen $n $c
            turbine::store_string $a "data"
            turbine::store_string $b "flow"
            turbine::rule [list $c $n] "swt:trace_body {string integer} $c $n" control
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "trace: dataflow,8\n");
    }

    #[test]
    fn conversions() {
        let script = r#"
            set i [turbine::unique]; turbine::create $i integer
            set f [turbine::unique]; turbine::create $f float
            set s [turbine::unique]; turbine::create $s string
            swt:itof $f $i
            swt:fromfloat $s $f
            turbine::store_integer $i 4
            turbine::rule [list $s] "swt:trace_body {string} $s" control
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "trace: 4.0\n");
    }

    #[test]
    fn float_math() {
        let script = r#"
            set x [turbine::unique]; turbine::create $x float
            set y [turbine::unique]; turbine::create $y float
            swt:fmath sqrt $y $x
            turbine::store_float $x 81.0
            turbine::rule [list $y] "swt:trace_body {float} $y" control
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "trace: 9.0\n");
    }

    #[test]
    fn if_on_future() {
        let script = r#"
            set cond [turbine::unique]; turbine::create $cond integer
            swt:if $cond {puts then-branch} {puts else-branch}
            turbine::store_integer $cond 0
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "else-branch\n");
    }

    #[test]
    fn container_foreach_and_deferred_insert() {
        let script = r#"
            set c [turbine::unique]; turbine::create $c container
            set t [turbine::unique]; turbine::create $t integer
            # Reserve a writer slot for the deferred insert, then release
            # the creating scope's slot.
            turbine::write_refcount_incr $c 1
            swt:container_deferred_insert $c 5 $t integer
            turbine::container_close $c
            proc show_member {k v} { puts "member $k = $v" }
            swt:container_foreach show_member {} $c
            turbine::store_integer $t 99
        "#;
        let (_, stdout) = run_with_lib(script);
        assert_eq!(stdout, "member 5 = 99\n");
    }

    #[test]
    fn assert_failure_is_error() {
        let layout = Layout::new(2, 1);
        let out = World::run(2, move |comm| {
            if layout.is_server(comm.rank()) {
                adlb::serve(comm, layout, adlb::ServerConfig::default());
                return None;
            }
            let client = AdlbClient::new(comm, layout);
            let ctx = Ctx::new(client, true, InterpPolicy::Retain);
            let mut interp = Interp::new();
            commands::register(&mut interp, ctx.clone());
            interp.eval(super::TURBINE_LIB).unwrap();
            interp
                .eval(
                    "set c [turbine::unique]; turbine::create $c integer\n\
                     set m [turbine::unique]; turbine::create $m string\n\
                     turbine::store_integer $c 0\n\
                     turbine::store_string $m boom\n\
                     swt:assert $c $m",
                )
                .unwrap();
            let mut failed = false;
            loop {
                loop {
                    let action = ctx.borrow_mut().engine.ready.pop_front();
                    match action {
                        Some(a) => {
                            if let Err(e) = interp.eval(&a) {
                                assert!(e.message.contains("assertion failed: boom"));
                                failed = true;
                            }
                        }
                        None => break,
                    }
                }
                if ctx.borrow().engine.rules_waiting() == 0 {
                    break;
                }
                let task = ctx.borrow_mut().client.get(&[adlb::WORK_TYPE_NOTIFY]);
                match task {
                    Some(t) => {
                        let id = u64::from_le_bytes(t.payload[..8].try_into().unwrap());
                        let ds = ctx.borrow_mut().engine.fire(id);
                        let mut c = ctx.borrow_mut();
                        for d in ds {
                            c.perform(d);
                        }
                    }
                    None => break,
                }
            }
            ctx.borrow_mut().client.finish();
            Some(failed)
        });
        assert_eq!(out.into_iter().flatten().next(), Some(true));
    }
}
