//! Run results and error types.

use std::time::Duration;

use mpisim::{trace, LatencyStats, RankTrace};
use turbine::{RankOutput, Role};

/// Why a run could not produce a result.
#[derive(Debug)]
pub enum SwiftTError {
    /// The machine configuration is unsatisfiable (replication beyond
    /// the server count, no workers, ...). Rejected before any rank
    /// starts; the CLI maps this to exit code 2.
    Config(String),
    /// The Swift source did not compile.
    Compile(stc::CompileError),
    /// A rank failed during execution (Tcl error, dataflow violation,
    /// double assignment, ...).
    Runtime(String),
}

impl std::fmt::Display for SwiftTError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwiftTError::Config(m) => write!(f, "configuration error: {m}"),
            SwiftTError::Compile(e) => write!(f, "{e}"),
            SwiftTError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for SwiftTError {}

impl From<stc::CompileError> for SwiftTError {
    fn from(e: stc::CompileError) -> Self {
        SwiftTError::Compile(e)
    }
}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// All `printf`/`puts`/embedded-interpreter output, concatenated in
    /// rank order (within a rank, output is in execution order).
    pub stdout: String,
    /// Per-rank details for the ranks that survived (killed ranks produce
    /// no output record).
    pub outputs: Vec<RankOutput>,
    /// Wall-clock duration of the whole world.
    pub elapsed: Duration,
    /// Point-to-point messages the run sent (from `mpisim`).
    pub messages: u64,
    /// Payload bytes the run sent.
    pub bytes: u64,
    /// Ranks killed by the configured fault plan, in rank order. Empty
    /// when no faults were injected (or none fired).
    pub killed_ranks: Vec<usize>,
    /// Killed ranks whose streamed output is known to be incomplete: the
    /// rank died with locally buffered output that never reached the
    /// server tier, so its contribution to `stdout` is a prefix.
    pub truncated_streams: Vec<usize>,
    /// The role each rank played, indexed by rank (killed ranks
    /// included — unlike `outputs`, which only covers survivors).
    pub roles: Vec<Role>,
    /// Per-rank lifecycle traces (empty unless the run had
    /// [`tracing`](crate::Runtime::tracing) enabled). Killed ranks'
    /// partial traces are included.
    pub traces: Vec<RankTrace>,
    /// Latency percentiles distilled from `traces`; `None` when tracing
    /// was off.
    pub latency: Option<LatencyReport>,
    /// Per-tenant reports (multi-tenant runs only; empty otherwise),
    /// ordered by tenant id.
    pub tenants: Vec<TenantReport>,
}

/// One tenant's slice of a multi-tenant run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant id (also its engine's rank).
    pub id: u32,
    /// Human-readable program name.
    pub name: String,
    /// Fair-share weight the servers scheduled it under.
    pub weight: u32,
    /// Everything this tenant's program printed, engine first, then each
    /// worker's per-tenant stream in rank order.
    pub stdout: String,
    /// Admission/scheduling accounting merged across servers.
    pub stats: adlb::TenantStats,
    /// This tenant's fraction of all contended untargeted deliveries —
    /// the quantity weighted fair queuing controls. `None` when the run
    /// had no contended deliveries at all.
    pub share_of_delivered: Option<f64>,
    /// Task latency percentiles for this tenant's tasks (requires
    /// [`tracing`](crate::Runtime::tracing)).
    pub latency: Option<LatencyStats>,
    /// The program's contained failure, if it had one. A broken tenant
    /// never fails the run; it fails here.
    pub error: Option<String>,
}

/// Latency percentiles over one traced run. Each member is `None` when
/// the run recorded no spans of that kind (e.g. no failovers happened).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyReport {
    /// Task latency: server accepted the task → done/failed ack released
    /// its lease. Covers queue wait, delivery, and evaluation.
    pub task_latency: Option<LatencyStats>,
    /// Queue wait: server accepted the task → handed it to a worker.
    pub queue_wait: Option<LatencyStats>,
    /// Worker leaf-task evaluation time (successful tasks).
    pub eval_time: Option<LatencyStats>,
    /// Failover recovery window: server death confirmed → replication
    /// factor restored by re-replication.
    pub failover_recovery: Option<LatencyStats>,
    /// Checkpoint flush: WAL batch (or forced segment) written to the
    /// parallel file system. Only recorded with `--checkpoint` on.
    pub checkpoint_flush: Option<LatencyStats>,
    /// Shard restore from a durable checkpoint: segment read + WAL tail
    /// replay, during failover or `--resume` startup.
    pub pfs_restore: Option<LatencyStats>,
}

impl LatencyReport {
    /// Distill percentiles from merged per-rank traces.
    pub fn from_traces(traces: &[RankTrace]) -> LatencyReport {
        let stats = |kind| LatencyStats::from_durations(trace::durations_of(traces, kind));
        LatencyReport {
            task_latency: stats(trace::KIND_TASK_LATENCY),
            queue_wait: stats(trace::KIND_TASK_QUEUE),
            eval_time: stats(trace::KIND_TASK_EVAL),
            failover_recovery: stats(trace::KIND_FAILOVER_RECOVERY),
            checkpoint_flush: stats(trace::KIND_CKPT_FLUSH),
            pfs_restore: stats(trace::KIND_CKPT_RESTORE),
        }
    }
}

/// Task-latency durations for one tenant, filtered from the merged
/// traces. The server tags each task-latency span's correlation id with
/// `tenant + 1` in the high 32 bits (0 there means an untagged span from
/// a single-tenant run), so per-tenant percentiles fall out of the same
/// trace stream the global report uses.
pub fn tenant_task_durations(traces: &[RankTrace], tenant: u32) -> Vec<u64> {
    traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| e.kind == trace::KIND_TASK_LATENCY && (e.id >> 32) as u32 == tenant + 1)
        .map(|e| e.end_us - e.start_us)
        .collect()
}

impl RunResult {
    /// The report for tenant `id`, if this was a multi-tenant run.
    pub fn tenant(&self, id: u32) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == id)
    }

    /// Total leaf tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.outputs.iter().map(|o| o.tasks_executed).sum()
    }

    /// Total rules fired across all engines.
    pub fn total_rules_fired(&self) -> u64 {
        self.outputs.iter().map(|o| o.rules_fired).sum()
    }

    /// Total Python/R interpreter initializations.
    pub fn total_interp_inits(&self) -> u64 {
        self.outputs.iter().map(|o| o.interp_inits).sum()
    }

    /// Total leaf tasks that failed (contained eval errors) across all
    /// workers. Each retry of a task counts as another failure.
    pub fn total_tasks_failed(&self) -> u64 {
        self.outputs.iter().map(|o| o.tasks_failed).sum()
    }

    /// Number of workers that executed at least one task.
    pub fn busy_workers(&self) -> usize {
        self.outputs
            .iter()
            .filter(|o| o.role == Role::Worker && o.tasks_executed > 0)
            .count()
    }

    /// Aggregate server statistics via [`adlb::ServerStats::merge`]:
    /// counters sum element-wise, while `r_restore_micros` — a wall-clock
    /// window, not a volume — takes the max across servers. (A previous
    /// hand-maintained field list here summed the window and silently
    /// dropped newly added fields.)
    pub fn server_totals(&self) -> adlb::ServerStats {
        let mut total = adlb::ServerStats::default();
        for s in self.outputs.iter().filter_map(|o| o.server_stats.as_ref()) {
            total.merge(s);
        }
        total
    }

    /// Write this run's merged trace as Chrome trace-event JSON (load
    /// with `chrome://tracing` or <https://ui.perfetto.dev>). Rank
    /// timelines are labeled with their role. Writes an empty trace when
    /// tracing was disabled.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let roles: Vec<String> = self
            .roles
            .iter()
            .enumerate()
            .map(|(rank, role)| format!("rank {rank} ({role:?})").to_lowercase())
            .collect();
        trace::write_chrome_trace(path, &self.traces, &roles)
    }
}
