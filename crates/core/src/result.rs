//! Run results and error types.

use std::time::Duration;

use turbine::{RankOutput, Role};

/// Why a run could not produce a result.
#[derive(Debug)]
pub enum SwiftTError {
    /// The Swift source did not compile.
    Compile(stc::CompileError),
    /// A rank failed during execution (Tcl error, dataflow violation,
    /// double assignment, ...).
    Runtime(String),
}

impl std::fmt::Display for SwiftTError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwiftTError::Compile(e) => write!(f, "{e}"),
            SwiftTError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for SwiftTError {}

impl From<stc::CompileError> for SwiftTError {
    fn from(e: stc::CompileError) -> Self {
        SwiftTError::Compile(e)
    }
}

/// The outcome of a successful run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// All `printf`/`puts`/embedded-interpreter output, concatenated in
    /// rank order (within a rank, output is in execution order).
    pub stdout: String,
    /// Per-rank details for the ranks that survived (killed ranks produce
    /// no output record).
    pub outputs: Vec<RankOutput>,
    /// Wall-clock duration of the whole world.
    pub elapsed: Duration,
    /// Point-to-point messages the run sent (from `mpisim`).
    pub messages: u64,
    /// Payload bytes the run sent.
    pub bytes: u64,
    /// Ranks killed by the configured fault plan, in rank order. Empty
    /// when no faults were injected (or none fired).
    pub killed_ranks: Vec<usize>,
    /// Killed ranks whose streamed output is known to be incomplete: the
    /// rank died with locally buffered output that never reached the
    /// server tier, so its contribution to `stdout` is a prefix.
    pub truncated_streams: Vec<usize>,
}

impl RunResult {
    /// Total leaf tasks executed across all workers.
    pub fn total_tasks(&self) -> u64 {
        self.outputs.iter().map(|o| o.tasks_executed).sum()
    }

    /// Total rules fired across all engines.
    pub fn total_rules_fired(&self) -> u64 {
        self.outputs.iter().map(|o| o.rules_fired).sum()
    }

    /// Total Python/R interpreter initializations.
    pub fn total_interp_inits(&self) -> u64 {
        self.outputs.iter().map(|o| o.interp_inits).sum()
    }

    /// Total leaf tasks that failed (contained eval errors) across all
    /// workers. Each retry of a task counts as another failure.
    pub fn total_tasks_failed(&self) -> u64 {
        self.outputs.iter().map(|o| o.tasks_failed).sum()
    }

    /// Number of workers that executed at least one task.
    pub fn busy_workers(&self) -> usize {
        self.outputs
            .iter()
            .filter(|o| o.role == Role::Worker && o.tasks_executed > 0)
            .count()
    }

    /// Aggregate server statistics (element-wise sum over servers).
    pub fn server_totals(&self) -> adlb::ServerStats {
        let mut total = adlb::ServerStats::default();
        for o in &self.outputs {
            if let Some(s) = o.server_stats {
                total.tasks_accepted += s.tasks_accepted;
                total.tasks_delivered += s.tasks_delivered;
                total.steals_attempted += s.steals_attempted;
                total.steals_successful += s.steals_successful;
                total.tasks_stolen += s.tasks_stolen;
                total.tasks_donated += s.tasks_donated;
                total.tasks_requeued += s.tasks_requeued;
                total.tasks_retried += s.tasks_retried;
                total.tasks_quarantined += s.tasks_quarantined;
                total.protocol_errors += s.protocol_errors;
                total.ranks_failed += s.ranks_failed;
                total.data_ops += s.data_ops;
                total.notifications += s.notifications;
                total.failovers += s.failovers;
                total.repl_ops += s.repl_ops;
                total.repl_syncs += s.repl_syncs;
                total.repl_sync_bytes += s.repl_sync_bytes;
                total.r_restore_micros += s.r_restore_micros;
            }
        }
        total
    }
}
